//! Crash-safe persistence for adaptive resource views.
//!
//! The `ns_monitor` of the paper is a system-wide daemon: when it
//! restarts, every container's view would collapse back to the static
//! lower bounds until dynamic adjustment re-converges. This crate keeps
//! that from happening. A [`Journal`] records view state as a
//! **versioned, checksummed, append-only byte log**: periodic compacted
//! [checkpoints](Journal::checkpoint) carrying the full registry
//! snapshot, with per-container [deltas](Journal::append_delta) and
//! [removals](Journal::append_remove) appended in between. On restart,
//! [`restore`] replays the log back into a [`Snapshot`].
//!
//! # Wire format
//!
//! ```text
//! header  := magic:u32le ("AVRJ") | version:u32le
//! record  := len:u32le | body:[u8; len] | crc32:u32le
//! body    := kind:u8 | payload
//! ```
//!
//! The CRC32 (IEEE, reflected, polynomial `0xEDB88320`) covers the
//! length prefix *and* the body, so a torn length word is caught too.
//!
//! # Crash tolerance
//!
//! A journal may be cut at **any byte offset** (torn tail after a
//! crash) or contain flipped bits. [`restore`] never panics: it decodes
//! records until the first frame that is truncated or fails its
//! checksum, drops everything from that frame on, and reports how many
//! trailing records were discarded. The result is always
//! *prefix-consistent* — the state after applying some prefix of the
//! records that were written.
//!
//! # Storage faults and the fsync model
//!
//! The byte file underneath a [`Journal`] or [`lease::LeaseFile`] is a
//! pluggable [`store::Store`]: appends, syncs, and truncations return
//! `io::Result`-shaped errors, and only bytes covered by a successful
//! `sync` survive a crash (the unsynced tail is lost, exactly like an
//! un-fsynced file). [`store::MemStore`] keeps the historical
//! infallible behaviour; [`store::FaultyStore`] injects seeded torn
//! appends, write errors, disk-full windows, bit rot, and sync stalls
//! so every consumer's durability degradation path is testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use store::{FaultyStore, MemStore, Store, StoreError, StoreFaultStats, StoreFaults};

/// File magic: `b"AVRJ"` as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"AVRJ");
/// Current journal format version.
pub const VERSION: u32 = 1;
/// Upper bound on a single record body (corrupt length words must not
/// cause huge allocations during restore).
pub const MAX_RECORD: usize = 1 << 20;

const KIND_CHECKPOINT: u8 = 1;
const KIND_DELTA: u8 = 2;
const KIND_REMOVE: u8 = 3;

/// One decoded journal record. The journal's own [`restore`] folds
/// records into a snapshot; replication streams ship them raw so a
/// standby can fold them into a *live* index instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A full compacted snapshot (replaces all prior state).
    Checkpoint(Snapshot),
    /// One container's refreshed view at `tick`.
    Delta {
        /// The refreshed state.
        state: ViewState,
        /// Journal-clock tick of the refresh.
        tick: u64,
    },
    /// A container removal.
    Remove(u32),
}

/// Encode one record in the journal's CRC-framed record format
/// (`len | body | crc32`, no file header). The bytes are exactly what
/// [`Journal`] appends, so a replication stream and the journal cannot
/// drift in format.
pub fn encode_record(r: &Record) -> Vec<u8> {
    let body = match r {
        Record::Checkpoint(snap) => checkpoint_body(snap),
        Record::Delta { state, tick } => delta_body(state, *tick),
        Record::Remove(id) => remove_body(*id),
    };
    let mut out = Vec::with_capacity(body.len() + 8);
    frame_record_into(&mut out, &body);
    out
}

/// What a [`decode_records`] scan recovered from a bare record stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordScan {
    /// Records decoded in order, up to the first bad frame.
    pub records: Vec<Record>,
    /// 1 if the stream ended in a torn or corrupt frame (everything
    /// from that frame on is dropped), else 0.
    pub truncated: u64,
}

/// Decode a bare stream of CRC-framed records (no file header), as
/// carried by a replication frame. Stops at the first torn or corrupt
/// frame and reports it; never panics, never allocates past
/// [`MAX_RECORD`] per frame, for any input bytes.
pub fn decode_records(bytes: &[u8]) -> RecordScan {
    let mut scan = RecordScan::default();
    let mut c = Cursor { bytes, pos: 0 };
    while c.pos < bytes.len() {
        let Some(record) = read_record(&mut c) else {
            scan.truncated = 1;
            break;
        };
        let mut rc = Cursor {
            bytes: record,
            pos: 0,
        };
        let decoded = match rc.u8() {
            Some(KIND_CHECKPOINT) => decode_checkpoint(&mut rc).map(Record::Checkpoint),
            Some(KIND_DELTA) => rc
                .u64()
                .and_then(|tick| decode_state(&mut rc).map(|state| Record::Delta { state, tick })),
            Some(KIND_REMOVE) => rc.u32().map(Record::Remove),
            _ => None,
        };
        match decoded {
            Some(r) => scan.records.push(r),
            None => {
                scan.truncated = 1;
                break;
            }
        }
    }
    scan
}

fn checkpoint_body(snap: &Snapshot) -> Vec<u8> {
    let mut body = Vec::with_capacity(13 + snap.entries.len() * 28);
    body.push(KIND_CHECKPOINT);
    body.extend_from_slice(&snap.tick.to_le_bytes());
    body.extend_from_slice(&(snap.entries.len() as u32).to_le_bytes());
    for e in &snap.entries {
        encode_state(&mut body, e);
    }
    body
}

fn delta_body(state: &ViewState, tick: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(37);
    body.push(KIND_DELTA);
    body.extend_from_slice(&tick.to_le_bytes());
    encode_state(&mut body, state);
    body
}

fn remove_body(id: u32) -> Vec<u8> {
    let mut body = Vec::with_capacity(5);
    body.push(KIND_REMOVE);
    body.extend_from_slice(&id.to_le_bytes());
    body
}

fn frame_record_into(buf: &mut Vec<u8>, body: &[u8]) {
    let len = (body.len() as u32).to_le_bytes();
    let mut crc_input = Vec::with_capacity(4 + body.len());
    crc_input.extend_from_slice(&len);
    crc_input.extend_from_slice(body);
    let crc = crc32::checksum(&crc_input);
    buf.extend_from_slice(&len);
    buf.extend_from_slice(body);
    buf.extend_from_slice(&crc.to_le_bytes());
}

pub mod crc32 {
    //! Table-driven IEEE CRC32 (the zlib/ethernet polynomial),
    //! hand-rolled because the CI containers build fully offline.

    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }

    const TABLE: [u32; 256] = table();

    /// CRC32 of `bytes` (IEEE, init `0xFFFF_FFFF`, final xor).
    pub fn checksum(bytes: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in bytes {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[cfg(test)]
    mod tests {
        use super::checksum;

        #[test]
        fn known_vectors() {
            // Standard check value for the IEEE polynomial.
            assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
            assert_eq!(checksum(b""), 0);
            assert_eq!(checksum(b"a"), 0xE8B7_BE43);
        }

        #[test]
        fn sensitive_to_single_bit_flips() {
            let base = checksum(b"resource view");
            let mut data = b"resource view".to_vec();
            for i in 0..data.len() * 8 {
                data[i / 8] ^= 1 << (i % 8);
                assert_ne!(checksum(&data), base, "flip at bit {i} undetected");
                data[i / 8] ^= 1 << (i % 8);
            }
        }
    }
}

pub mod store {
    //! Pluggable storage backends for journals and lease files.
    //!
    //! [`Store`] models one append-only byte file with an explicit
    //! **fsync watermark**: [`Store::append`] extends the live file,
    //! but only bytes covered by a successful [`Store::sync`] survive
    //! [`Store::crash`]. Two implementations ship:
    //!
    //! - [`MemStore`] — the infallible owned buffer the simulation
    //!   always used; callers group-commit with one `sync` per tick.
    //! - [`FaultyStore`] — a seeded wrapper driven by [`StoreFaults`]:
    //!   torn (short) appends, outright write errors, disk-full
    //!   windows, bit rot on already-written bytes, and sync stalls
    //!   that freeze the durable watermark. Deterministic per seed, so
    //!   chaos campaigns replay bit-identically.

    use std::fmt;

    /// Why a store operation failed. `Copy + Eq` (unlike
    /// `std::io::Error`) so campaign outcomes stay comparable in
    /// replay-determinism asserts; [`StoreError::io_kind`] maps each
    /// variant onto the matching `std::io::ErrorKind`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum StoreError {
        /// The write failed outright; the file is unchanged.
        WriteFailed,
        /// The device is out of space; the file is unchanged.
        NoSpace,
        /// The append was torn: a strict prefix of the new bytes
        /// reached the file before the error.
        TornWrite,
        /// `sync` could not flush; the durable watermark did not move.
        SyncStalled,
    }

    impl StoreError {
        /// The `std::io::ErrorKind` this failure would surface as.
        pub fn io_kind(self) -> std::io::ErrorKind {
            match self {
                // `ErrorKind::StorageFull` would be the natural match
                // for `NoSpace` but is newer than our MSRV.
                StoreError::WriteFailed | StoreError::NoSpace => std::io::ErrorKind::Other,
                StoreError::TornWrite => std::io::ErrorKind::WriteZero,
                StoreError::SyncStalled => std::io::ErrorKind::TimedOut,
            }
        }
    }

    impl fmt::Display for StoreError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                StoreError::WriteFailed => write!(f, "store write failed"),
                StoreError::NoSpace => write!(f, "store device full"),
                StoreError::TornWrite => write!(f, "store append torn short"),
                StoreError::SyncStalled => write!(f, "store sync stalled"),
            }
        }
    }

    impl std::error::Error for StoreError {}

    impl From<StoreError> for std::io::Error {
        fn from(e: StoreError) -> std::io::Error {
            std::io::Error::new(e.io_kind(), e)
        }
    }

    /// One append-only byte file with an fsync watermark.
    pub trait Store: fmt::Debug + Send {
        /// Append bytes to the end of the file. On
        /// [`StoreError::TornWrite`] a strict prefix of `bytes` has
        /// reached the file; on any other error the file is unchanged.
        fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError>;

        /// The live file contents — what a reader of the open file
        /// sees, synced or not.
        fn read(&self) -> &[u8];

        /// Flush: advance the durable watermark to the current length.
        fn sync(&mut self) -> Result<(), StoreError>;

        /// Shrink the file to `len` bytes (no-op past the end); the
        /// watermark is clamped down with it.
        fn truncate(&mut self, len: usize) -> Result<(), StoreError>;

        /// Bytes guaranteed to survive a crash (the synced prefix).
        fn synced_len(&self) -> usize;

        /// The synced prefix itself — what [`Store::crash`] would keep.
        fn durable(&self) -> &[u8] {
            let end = self.synced_len().min(self.read().len());
            &self.read()[..end]
        }

        /// Atomically replace the whole file (write-temp-then-rename):
        /// either every byte lands synced or the old contents survive
        /// untouched. Lease files use this so a failed renewal cannot
        /// half-destroy the lease everyone else must still read.
        fn replace(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
            self.truncate(0)?;
            self.append(bytes)?;
            self.sync()
        }

        /// Crash the process: the unsynced tail is lost and the file
        /// is reopened at the durable watermark.
        fn crash(&mut self);

        /// Advance the fault clock (no-op for real stores); window
        /// axes like disk-full are expressed in these ticks.
        fn set_tick(&mut self, _tick: u64) {}

        /// Injected-fault counters (all zero for non-faulty stores).
        fn fault_stats(&self) -> StoreFaultStats {
            StoreFaultStats::default()
        }
    }

    /// The infallible in-memory store.
    #[derive(Debug, Clone, Default)]
    pub struct MemStore {
        buf: Vec<u8>,
        synced: usize,
    }

    impl MemStore {
        /// An empty store.
        pub fn new() -> MemStore {
            MemStore::default()
        }

        /// A store rehydrated from bytes (all of them durable, as a
        /// reopened file's contents would be).
        pub fn from_bytes(buf: Vec<u8>) -> MemStore {
            let synced = buf.len();
            MemStore { buf, synced }
        }
    }

    impl Store for MemStore {
        fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
            self.buf.extend_from_slice(bytes);
            Ok(())
        }

        fn read(&self) -> &[u8] {
            &self.buf
        }

        fn sync(&mut self) -> Result<(), StoreError> {
            self.synced = self.buf.len();
            Ok(())
        }

        fn truncate(&mut self, len: usize) -> Result<(), StoreError> {
            self.buf.truncate(len);
            self.synced = self.synced.min(self.buf.len());
            Ok(())
        }

        fn synced_len(&self) -> usize {
            self.synced
        }

        fn crash(&mut self) {
            self.buf.truncate(self.synced);
        }
    }

    /// Fault axes for a [`FaultyStore`]. Probabilities fire per
    /// operation from the store's seeded RNG; windows are half-open
    /// `[at, at + len)` ranges of the tick clock fed through
    /// [`Store::set_tick`]. Mirrors the `store_*` axes of
    /// `arv_sim_core::FaultConfig` so campaign plans translate 1:1.
    #[derive(Debug, Clone, Copy, Default, PartialEq)]
    pub struct StoreFaults {
        /// Probability an append is torn short (a strict prefix lands).
        pub torn_prob: f64,
        /// Probability an append fails outright, writing nothing.
        pub write_err_prob: f64,
        /// Window during which the device is out of space.
        pub full_at: Option<(u64, u64)>,
        /// Probability an append flips one bit somewhere in the
        /// already-written file (latent media decay surfacing).
        pub bit_rot_prob: f64,
        /// Window during which `sync` stalls (watermark frozen).
        pub sync_stall_at: Option<(u64, u64)>,
    }

    /// Counters of faults a [`FaultyStore`] actually injected.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct StoreFaultStats {
        /// Appends torn short.
        pub torn_appends: u64,
        /// Appends refused with a write error.
        pub write_errors: u64,
        /// Appends refused inside a disk-full window.
        pub no_space_errors: u64,
        /// Bits flipped in already-written bytes.
        pub rotted_bits: u64,
        /// Syncs refused inside a stall window.
        pub sync_stalls: u64,
    }

    impl StoreFaultStats {
        /// Total injected faults across all axes.
        pub fn total(&self) -> u64 {
            self.torn_appends
                + self.write_errors
                + self.no_space_errors
                + self.rotted_bits
                + self.sync_stalls
        }
    }

    fn in_window(w: Option<(u64, u64)>, tick: u64) -> bool {
        w.is_some_and(|(at, len)| tick >= at && tick < at.saturating_add(len))
    }

    /// A seeded fault-injection store: [`MemStore`] semantics plus the
    /// [`StoreFaults`] axes. Its RNG is self-contained (splitmix64) so
    /// this crate stays dependency-free and a given seed replays the
    /// exact same fault sequence.
    #[derive(Debug, Clone)]
    pub struct FaultyStore {
        inner: MemStore,
        rng: u64,
        faults: StoreFaults,
        tick: u64,
        stats: StoreFaultStats,
    }

    impl FaultyStore {
        /// A faulty store over an empty file.
        pub fn new(seed: u64, faults: StoreFaults) -> FaultyStore {
            FaultyStore {
                inner: MemStore::new(),
                rng: seed,
                faults,
                tick: 0,
                stats: StoreFaultStats::default(),
            }
        }

        /// The faults injected so far.
        pub fn stats(&self) -> StoreFaultStats {
            self.stats
        }

        fn next_u64(&mut self) -> u64 {
            self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        fn hit(&mut self, prob: f64) -> bool {
            prob > 0.0 && self.unit() < prob
        }

        /// The append-failure gate shared by `append` and `replace`:
        /// which error (if any) this operation draws, before any bytes
        /// move. Torn length is drawn by the caller because only plain
        /// appends leave a prefix behind.
        fn append_gate(&mut self) -> Result<(), StoreError> {
            if in_window(self.faults.full_at, self.tick) {
                self.stats.no_space_errors += 1;
                return Err(StoreError::NoSpace);
            }
            if self.hit(self.faults.write_err_prob) {
                self.stats.write_errors += 1;
                return Err(StoreError::WriteFailed);
            }
            Ok(())
        }

        fn maybe_rot(&mut self) {
            if self.hit(self.faults.bit_rot_prob) && !self.inner.buf.is_empty() {
                let idx = (self.next_u64() % self.inner.buf.len() as u64) as usize;
                let bit = (self.next_u64() % 8) as u8;
                self.inner.buf[idx] ^= 1 << bit;
                self.stats.rotted_bits += 1;
            }
        }
    }

    impl Store for FaultyStore {
        fn append(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
            self.append_gate()?;
            if self.hit(self.faults.torn_prob) && bytes.len() > 1 {
                let keep = 1 + (self.next_u64() % (bytes.len() as u64 - 1)) as usize;
                self.inner.buf.extend_from_slice(&bytes[..keep]);
                self.stats.torn_appends += 1;
                return Err(StoreError::TornWrite);
            }
            self.maybe_rot();
            self.inner.buf.extend_from_slice(bytes);
            Ok(())
        }

        fn read(&self) -> &[u8] {
            self.inner.read()
        }

        fn sync(&mut self) -> Result<(), StoreError> {
            if in_window(self.faults.sync_stall_at, self.tick) {
                self.stats.sync_stalls += 1;
                return Err(StoreError::SyncStalled);
            }
            self.inner.sync()
        }

        fn truncate(&mut self, len: usize) -> Result<(), StoreError> {
            // Shrinking a file needs no new blocks: never fails here.
            self.inner.truncate(len)
        }

        fn synced_len(&self) -> usize {
            self.inner.synced_len()
        }

        fn replace(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
            // Write-temp-then-rename: the fault axes hit the temp-file
            // write, so any failure (even a torn one) leaves the old
            // contents untouched; success lands fully synced.
            self.append_gate()?;
            if self.hit(self.faults.torn_prob) {
                self.stats.torn_appends += 1;
                return Err(StoreError::TornWrite);
            }
            if in_window(self.faults.sync_stall_at, self.tick) {
                self.stats.sync_stalls += 1;
                return Err(StoreError::SyncStalled);
            }
            self.inner.buf.clear();
            self.inner.buf.extend_from_slice(bytes);
            self.inner.synced = self.inner.buf.len();
            self.maybe_rot();
            Ok(())
        }

        fn crash(&mut self) {
            self.inner.crash();
        }

        fn set_tick(&mut self, tick: u64) {
            self.tick = tick;
        }

        fn fault_stats(&self) -> StoreFaultStats {
            self.stats
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mem_store_sync_watermark() {
            let mut s = MemStore::new();
            s.append(b"abcd").expect("mem append");
            assert_eq!(s.synced_len(), 0);
            s.sync().expect("mem sync");
            s.append(b"efgh").expect("mem append");
            assert_eq!(s.read(), b"abcdefgh");
            assert_eq!(s.durable(), b"abcd");
            s.crash();
            assert_eq!(s.read(), b"abcd", "unsynced tail lost");
        }

        #[test]
        fn truncate_clamps_watermark() {
            let mut s = MemStore::new();
            s.append(b"abcdef").expect("append");
            s.sync().expect("sync");
            s.truncate(2).expect("truncate");
            assert_eq!(s.synced_len(), 2);
            s.truncate(100).expect("truncate past end is a no-op");
            assert_eq!(s.read(), b"ab");
        }

        #[test]
        fn faulty_store_is_deterministic_per_seed() {
            let run = |seed: u64| {
                let mut s = FaultyStore::new(
                    seed,
                    StoreFaults {
                        torn_prob: 0.3,
                        write_err_prob: 0.2,
                        bit_rot_prob: 0.1,
                        ..StoreFaults::default()
                    },
                );
                let mut outcomes = Vec::new();
                for i in 0..64u8 {
                    outcomes.push(s.append(&[i; 16]).err());
                }
                let _ = s.sync();
                (outcomes, s.read().to_vec(), s.stats())
            };
            assert_eq!(run(7), run(7));
            assert_ne!(run(7).0, run(8).0, "different seeds draw differently");
        }

        #[test]
        fn torn_append_leaves_strict_prefix() {
            let mut s = FaultyStore::new(
                3,
                StoreFaults {
                    torn_prob: 1.0,
                    ..StoreFaults::default()
                },
            );
            let err = s.append(&[9u8; 32]).expect_err("always torn");
            assert_eq!(err, StoreError::TornWrite);
            assert!(!s.read().is_empty() && s.read().len() < 32);
            assert_eq!(s.stats().torn_appends, 1);
        }

        #[test]
        fn windows_are_half_open() {
            let faults = StoreFaults {
                full_at: Some((4, 2)),
                sync_stall_at: Some((4, 2)),
                ..StoreFaults::default()
            };
            let mut s = FaultyStore::new(1, faults);
            for tick in 0..8u64 {
                s.set_tick(tick);
                let want_fault = (4..6).contains(&tick);
                assert_eq!(s.append(b"x").is_err(), want_fault, "append at {tick}");
                assert_eq!(s.sync().is_err(), want_fault, "sync at {tick}");
            }
            assert_eq!(s.stats().no_space_errors, 2);
            assert_eq!(s.stats().sync_stalls, 2);
        }

        #[test]
        fn replace_is_atomic_under_faults() {
            let mut s = FaultyStore::new(
                11,
                StoreFaults {
                    torn_prob: 0.5,
                    write_err_prob: 0.2,
                    ..StoreFaults::default()
                },
            );
            let mut current: Vec<u8> = Vec::new();
            for i in 0..64u8 {
                let next = vec![i; 24];
                match s.replace(&next) {
                    Ok(()) => current = next,
                    Err(_) => {} // old contents must survive untouched
                }
                assert_eq!(s.read(), &current[..], "replace half-applied at {i}");
                assert_eq!(s.durable(), &current[..], "replace left unsynced bytes");
            }
            assert!(s.stats().total() >= 1, "faults must actually fire");
        }
    }
}

/// The persisted view state of one container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewState {
    /// Cgroup id of the container.
    pub id: u32,
    /// Effective CPU count the dynamic loop had converged to.
    pub e_cpu: u32,
    /// Effective memory limit, bytes.
    pub e_mem: u64,
    /// Available (free-as-seen) memory, bytes.
    pub e_avail: u64,
    /// Update-timer tick of the last view refresh.
    pub last_tick: u64,
}

/// A full registry snapshot at one point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Update-timer tick the snapshot was taken at.
    pub tick: u64,
    /// Per-container states, kept sorted by container id.
    pub entries: Vec<ViewState>,
}

impl Snapshot {
    /// A snapshot taken at `tick` with no containers.
    pub fn at(tick: u64) -> Snapshot {
        Snapshot {
            tick,
            entries: Vec::new(),
        }
    }

    /// Look up a container's persisted state.
    pub fn get(&self, id: u32) -> Option<&ViewState> {
        self.entries
            .binary_search_by_key(&id, |e| e.id)
            .ok()
            .map(|i| &self.entries[i])
    }

    fn upsert(&mut self, state: ViewState) {
        match self.entries.binary_search_by_key(&state.id, |e| e.id) {
            Ok(i) => self.entries[i] = state,
            Err(i) => self.entries.insert(i, state),
        }
    }

    fn remove(&mut self, id: u32) {
        if let Ok(i) = self.entries.binary_search_by_key(&id, |e| e.id) {
            self.entries.remove(i);
        }
    }
}

/// What a [`restore`] recovered from a journal's bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Last-good snapshot with all decodable deltas applied, or `None`
    /// if no complete checkpoint survived.
    pub snapshot: Option<Snapshot>,
    /// Records dropped because they were torn or failed their CRC
    /// (everything from the first bad frame to the end of the buffer
    /// counts as one truncation event plus the bad frame itself).
    pub truncated_records: u64,
    /// Deltas applied on top of the checkpoint.
    pub applied_deltas: u64,
    /// Removals applied on top of the checkpoint.
    pub applied_removes: u64,
}

/// An append-only, checksummed journal of view-state changes.
///
/// The backing file is a pluggable [`Store`]: the default
/// [`Journal::new`] sits on an infallible [`MemStore`] (the
/// simulation's stand-in for the daemon's state file), while
/// [`Journal::with_store`] accepts any store — including a seeded
/// [`FaultyStore`] — so every append or checkpoint can fail with an
/// `io::Result`-shaped [`StoreError`]. [`Journal::checkpoint`]
/// *compacts*: it rewrites the file as `header + one checkpoint
/// record`, so the journal's size is bounded by checkpoint cadence
/// rather than uptime. Appends are group-committed: callers
/// [`sync`](Journal::sync) once per tick, and only synced bytes
/// ([`durable_bytes`](Journal::durable_bytes)) survive a crash.
#[derive(Debug)]
pub struct Journal {
    store: Box<dyn Store>,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// An empty journal on an infallible in-memory store.
    pub fn new() -> Journal {
        Journal::with_store(Box::new(MemStore::new())).expect("MemStore never fails")
    }

    /// An empty journal on `store`: the file is reset to the format
    /// header. Fails if the store refuses the header write — the
    /// journal is unusable until the caller retries on a healthy
    /// store.
    pub fn with_store(mut store: Box<dyn Store>) -> Result<Journal, StoreError> {
        store.truncate(0)?;
        let mut hdr = Vec::with_capacity(8);
        hdr.extend_from_slice(&MAGIC.to_le_bytes());
        hdr.extend_from_slice(&VERSION.to_le_bytes());
        store.append(&hdr)?;
        store.sync()?;
        Ok(Journal { store })
    }

    /// The live journal bytes (header + records), synced or not.
    pub fn as_bytes(&self) -> &[u8] {
        self.store.read()
    }

    /// The bytes that would survive a crash: the synced prefix.
    pub fn durable_bytes(&self) -> &[u8] {
        self.store.durable()
    }

    /// Consume the journal, returning its live bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.store.read().to_vec()
    }

    /// Size of the live journal in bytes.
    pub fn len(&self) -> usize {
        self.store.read().len()
    }

    /// Whether the journal holds only the header (or less).
    pub fn is_empty(&self) -> bool {
        self.store.read().len() <= 8
    }

    /// Write a compacted checkpoint: the file is reset to the header
    /// plus this single snapshot record, discarding older history, and
    /// synced through to the medium.
    pub fn checkpoint(&mut self, snap: &Snapshot) -> Result<(), StoreError> {
        self.store.truncate(8)?;
        let mut buf = Vec::new();
        frame_record_into(&mut buf, &checkpoint_body(snap));
        self.store.append(&buf)?;
        self.store.sync()
    }

    /// Append one container's refreshed view (unsynced until the next
    /// [`sync`](Journal::sync) or checkpoint).
    pub fn append_delta(&mut self, state: &ViewState, tick: u64) -> Result<(), StoreError> {
        let mut buf = Vec::new();
        frame_record_into(&mut buf, &delta_body(state, tick));
        self.store.append(&buf)
    }

    /// Append a container removal (unsynced until the next
    /// [`sync`](Journal::sync) or checkpoint).
    pub fn append_remove(&mut self, id: u32) -> Result<(), StoreError> {
        let mut buf = Vec::new();
        frame_record_into(&mut buf, &remove_body(id));
        self.store.append(&buf)
    }

    /// Group-commit: advance the durable watermark over every append
    /// so far.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.store.sync()
    }

    /// Crash the owning process: the unsynced tail is lost, exactly as
    /// an un-fsynced file would lose it.
    pub fn crash(&mut self) {
        self.store.crash();
    }

    /// Advance the store's fault clock (no-op for plain stores).
    pub fn set_tick(&mut self, tick: u64) {
        self.store.set_tick(tick);
    }

    /// Fault counters of the backing store (zero for plain stores).
    pub fn store_fault_stats(&self) -> StoreFaultStats {
        self.store.fault_stats()
    }
}

fn encode_state(out: &mut Vec<u8>, e: &ViewState) {
    out.extend_from_slice(&e.id.to_le_bytes());
    out.extend_from_slice(&e.e_cpu.to_le_bytes());
    out.extend_from_slice(&e.e_mem.to_le_bytes());
    out.extend_from_slice(&e.e_avail.to_le_bytes());
    out.extend_from_slice(&e.last_tick.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }
}

fn decode_state(c: &mut Cursor<'_>) -> Option<ViewState> {
    Some(ViewState {
        id: c.u32()?,
        e_cpu: c.u32()?,
        e_mem: c.u64()?,
        e_avail: c.u64()?,
        last_tick: c.u64()?,
    })
}

/// Rebuild the last-good view state from journal bytes.
///
/// Tolerates arbitrary truncation and bit corruption: decoding stops at
/// the first frame whose length is torn or whose CRC fails, and the
/// surviving prefix is replayed — checkpoint first, then deltas and
/// removals in order. Never panics, never allocates past
/// [`MAX_RECORD`] per frame.
pub fn restore(bytes: &[u8]) -> RestoreReport {
    let mut report = RestoreReport::default();
    let mut c = Cursor { bytes, pos: 0 };
    let (magic, version) = match (c.u32(), c.u32()) {
        (Some(m), Some(v)) => (m, v),
        _ => {
            report.truncated_records = 1;
            return report;
        }
    };
    if magic != MAGIC || version != VERSION {
        report.truncated_records = 1;
        return report;
    }
    let mut snap: Option<Snapshot> = None;
    loop {
        let frame_start = c.pos;
        if frame_start == bytes.len() {
            break; // clean end
        }
        let Some(record) = read_record(&mut c) else {
            // Torn or corrupt tail: drop this frame and everything
            // after it. One counter bump per discarded tail.
            report.truncated_records += 1;
            break;
        };
        let mut rc = Cursor {
            bytes: record,
            pos: 0,
        };
        match rc.u8() {
            Some(KIND_CHECKPOINT) => {
                if let Some(s) = decode_checkpoint(&mut rc) {
                    snap = Some(s);
                    report.applied_deltas = 0;
                    report.applied_removes = 0;
                } else {
                    report.truncated_records += 1;
                    break;
                }
            }
            Some(KIND_DELTA) => {
                let decoded = rc
                    .u64()
                    .and_then(|tick| decode_state(&mut rc).map(|state| (tick, state)));
                match (decoded, &mut snap) {
                    (Some((tick, state)), Some(s)) => {
                        s.upsert(state);
                        s.tick = s.tick.max(tick);
                        report.applied_deltas += 1;
                    }
                    (Some(_), None) => {} // delta with no base: ignore
                    (None, _) => {
                        report.truncated_records += 1;
                        break;
                    }
                }
            }
            Some(KIND_REMOVE) => match (rc.u32(), &mut snap) {
                (Some(id), Some(s)) => {
                    s.remove(id);
                    report.applied_removes += 1;
                }
                (Some(_), None) => {}
                (None, _) => {
                    report.truncated_records += 1;
                    break;
                }
            },
            _ => {
                // Unknown kind — a later format or corruption the CRC
                // happened to miss. Stop here; the prefix is still good.
                report.truncated_records += 1;
                break;
            }
        }
    }
    report.snapshot = snap;
    report
}

fn read_record<'a>(c: &mut Cursor<'a>) -> Option<&'a [u8]> {
    let start = c.pos;
    let len = c.u32()? as usize;
    if len > MAX_RECORD {
        return None;
    }
    let body = c.take(len)?;
    let crc = c.u32()?;
    let covered = &c.bytes[start..start + 4 + len];
    if crc32::checksum(covered) != crc {
        return None;
    }
    Some(body)
}

fn decode_checkpoint(rc: &mut Cursor<'_>) -> Option<Snapshot> {
    let tick = rc.u64()?;
    let count = rc.u32()? as usize;
    if count > MAX_RECORD / 28 {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(decode_state(rc)?);
    }
    entries.sort_by_key(|e: &ViewState| e.id);
    Some(Snapshot { tick, entries })
}

pub mod lease {
    //! A file-backed controller lease with monotone epochs.
    //!
    //! Fleet controllers elect a leader through a single small state
    //! file (here: an owned byte buffer, same as [`Journal`](super::Journal)'s
    //! store — the simulation's stand-in for a shared disk or config
    //! volume). The rules are deliberately minimal:
    //!
    //! - **Grant.** An empty or unreadable lease is granted to the first
    //!   caller at **epoch 1**.
    //! - **Renew.** The current holder may renew before expiry; the
    //!   epoch does **not** change.
    //! - **Takeover.** Any caller may acquire after expiry; the epoch is
    //!   **bumped by one**. A bumped epoch is the promotion signal — the
    //!   cluster fences everything stamped with a lower epoch.
    //! - **Refuse.** An unexpired lease held by someone else is never
    //!   reassigned.
    //!
    //! Time is the caller's deterministic tick clock, not wall time, so
    //! seeded campaigns replay bit-identically.
    //!
    //! A lease write is **atomic-or-nothing** ([`Store::replace`]): a
    //! renewal the store refuses leaves the old lease intact for every
    //! other contender to read, and the refused holder must treat the
    //! lease as *not held* — stepping down before its TTL rather than
    //! serving on a renewal nobody else can observe.
    //!
    //! ```text
    //! lease := magic:u32le ("AVRL") | epoch:u64le | holder:u32le
    //!          | expires:u64le | crc32:u32le
    //! ```
    //!
    //! The CRC covers everything before it; a torn or corrupt lease
    //! reads as *absent* (first caller re-grants at `epoch + 1` is not
    //! possible from garbage, so a corrupt file restarts at epoch 1 —
    //! acceptable because fencing only requires epochs be monotone
    //! *while the file is intact*, and peripheries additionally track
    //! the highest epoch they have ever seen).

    use super::crc32;
    use super::store::{MemStore, Store, StoreError, StoreFaultStats};
    use std::fmt;

    /// File magic: `b"AVRL"` as a little-endian `u32`.
    pub const LEASE_MAGIC: u32 = u32::from_le_bytes(*b"AVRL");
    /// Encoded lease size in bytes.
    pub const LEASE_BYTES: usize = 28;

    /// One decoded lease: who leads, at what epoch, until when.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Lease {
        /// Monotone controller epoch; bumped on every takeover.
        pub epoch: u64,
        /// Holder id (a controller's stable identity).
        pub holder: u32,
        /// Tick after which the lease may be taken over.
        pub expires: u64,
    }

    impl Lease {
        /// Encode to the CRC-protected on-disk form.
        pub fn encode(&self) -> Vec<u8> {
            let mut out = Vec::with_capacity(LEASE_BYTES);
            out.extend_from_slice(&LEASE_MAGIC.to_le_bytes());
            out.extend_from_slice(&self.epoch.to_le_bytes());
            out.extend_from_slice(&self.holder.to_le_bytes());
            out.extend_from_slice(&self.expires.to_le_bytes());
            let crc = crc32::checksum(&out);
            out.extend_from_slice(&crc.to_le_bytes());
            out
        }

        /// Decode; `None` for anything torn, corrupt, or foreign.
        pub fn decode(bytes: &[u8]) -> Option<Lease> {
            if bytes.len() != LEASE_BYTES {
                return None;
            }
            let body = &bytes[..LEASE_BYTES - 4];
            let crc = u32::from_le_bytes(bytes[LEASE_BYTES - 4..].try_into().ok()?);
            if crc32::checksum(body) != crc {
                return None;
            }
            if u32::from_le_bytes(body[0..4].try_into().ok()?) != LEASE_MAGIC {
                return None;
            }
            Some(Lease {
                epoch: u64::from_le_bytes(body[4..12].try_into().ok()?),
                holder: u32::from_le_bytes(body[12..16].try_into().ok()?),
                expires: u64::from_le_bytes(body[16..24].try_into().ok()?),
            })
        }
    }

    /// Why a lease could not be acquired, renewed, or kept.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum LeaseError {
        /// Another holder's unexpired lease blocks us; the blocking
        /// lease rides along so the caller can log who and until when.
        Held(Lease),
        /// Strict renewal found no unexpired lease of ours — it lapsed
        /// (the last intact lease, if any, rides along). Continuity is
        /// broken: the caller must step down and re-contend through
        /// [`LeaseFile::try_acquire`]'s takeover path.
        Expired(Option<Lease>),
        /// The store refused to persist the new lease. The old lease
        /// (if any) is still on disk, so the caller must treat the
        /// lease as *not held*: nobody else can read the renewal that
        /// failed.
        Store(StoreError),
    }

    impl fmt::Display for LeaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                LeaseError::Held(l) => write!(
                    f,
                    "lease held by {} at epoch {} until tick {}",
                    l.holder, l.epoch, l.expires
                ),
                LeaseError::Expired(Some(l)) => {
                    write!(
                        f,
                        "our lease at epoch {} expired at tick {}",
                        l.epoch, l.expires
                    )
                }
                LeaseError::Expired(None) => write!(f, "no intact lease to renew"),
                LeaseError::Store(e) => write!(f, "lease store: {e}"),
            }
        }
    }

    impl std::error::Error for LeaseError {}

    /// The store-backed lease file controllers contend on.
    #[derive(Debug)]
    pub struct LeaseFile {
        store: Box<dyn Store>,
    }

    impl Default for LeaseFile {
        fn default() -> Self {
            LeaseFile::new()
        }
    }

    impl LeaseFile {
        /// An empty (never-granted) lease file on an infallible
        /// in-memory store.
        pub fn new() -> LeaseFile {
            LeaseFile {
                store: Box::new(MemStore::new()),
            }
        }

        /// Rehydrate from bytes (e.g. after a warm restart).
        pub fn from_bytes(buf: Vec<u8>) -> LeaseFile {
            LeaseFile {
                store: Box::new(MemStore::from_bytes(buf)),
            }
        }

        /// A lease file on `store` — e.g. a seeded
        /// [`FaultyStore`](super::store::FaultyStore) whose refusals
        /// must step a primary down.
        pub fn with_store(store: Box<dyn Store>) -> LeaseFile {
            LeaseFile { store }
        }

        /// The raw store bytes, exactly as "on disk".
        pub fn as_bytes(&self) -> &[u8] {
            self.store.read()
        }

        /// Advance the store's fault clock (no-op for plain stores).
        pub fn set_tick(&mut self, tick: u64) {
            self.store.set_tick(tick);
        }

        /// Fault counters of the backing store (zero for plain stores).
        pub fn store_fault_stats(&self) -> StoreFaultStats {
            self.store.fault_stats()
        }

        /// The current lease, if the store holds an intact one.
        pub fn current(&self) -> Option<Lease> {
            Lease::decode(self.store.read())
        }

        /// Try to acquire or renew the lease for `holder` at tick
        /// `now`, extending it to `now + ttl`. Returns the held lease
        /// on success (grant, renew, or takeover per the module
        /// rules); errs with [`LeaseError::Held`] if another holder's
        /// unexpired lease blocks us, or [`LeaseError::Store`] if the
        /// new lease could not be persisted (the old lease survives on
        /// disk and the caller holds nothing).
        pub fn try_acquire(
            &mut self,
            holder: u32,
            now: u64,
            ttl: u64,
        ) -> Result<Lease, LeaseError> {
            let next = match self.current() {
                None => Lease {
                    epoch: 1,
                    holder,
                    expires: now.saturating_add(ttl),
                },
                Some(cur) if cur.holder == holder && now <= cur.expires => Lease {
                    epoch: cur.epoch,
                    holder,
                    expires: now.saturating_add(ttl),
                },
                Some(cur) if now > cur.expires => Lease {
                    epoch: cur.epoch.saturating_add(1),
                    holder,
                    expires: now.saturating_add(ttl),
                },
                Some(cur) => return Err(LeaseError::Held(cur)),
            };
            self.store
                .replace(&next.encode())
                .map_err(LeaseError::Store)?;
            Ok(next)
        }

        /// Strict renewal for a holder that believes it leads: extends
        /// our own unexpired lease without ever taking over. A lapsed
        /// or foreign lease is an error — a primary that slept through
        /// its TTL must step down and re-contend via
        /// [`try_acquire`](LeaseFile::try_acquire) instead of silently
        /// re-granting itself a bumped epoch.
        pub fn renew(&mut self, holder: u32, now: u64, ttl: u64) -> Result<Lease, LeaseError> {
            match self.current() {
                Some(cur) if cur.holder == holder && now <= cur.expires => {
                    let next = Lease {
                        epoch: cur.epoch,
                        holder,
                        expires: now.saturating_add(ttl),
                    };
                    self.store
                        .replace(&next.encode())
                        .map_err(LeaseError::Store)?;
                    Ok(next)
                }
                Some(cur) if cur.holder != holder && now <= cur.expires => {
                    Err(LeaseError::Held(cur))
                }
                cur => Err(LeaseError::Expired(cur)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(id: u32, cpu: u32, tick: u64) -> ViewState {
        ViewState {
            id,
            e_cpu: cpu,
            e_mem: 1 << 30,
            e_avail: 1 << 29,
            last_tick: tick,
        }
    }

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        let snap = Snapshot {
            tick: 10,
            entries: vec![state(1, 4, 10), state(2, 8, 10)],
        };
        j.checkpoint(&snap).expect("mem store");
        j.append_delta(&state(1, 6, 12), 12).expect("mem store");
        j.append_delta(&state(3, 2, 13), 13).expect("mem store");
        j.append_remove(2).expect("mem store");
        j
    }

    #[test]
    fn round_trip_replays_checkpoint_and_deltas() {
        let j = sample_journal();
        let r = restore(j.as_bytes());
        assert_eq!(r.truncated_records, 0);
        assert_eq!(r.applied_deltas, 2);
        assert_eq!(r.applied_removes, 1);
        let s = r.snapshot.expect("checkpoint survived");
        assert_eq!(s.tick, 13);
        assert_eq!(s.entries.len(), 2);
        assert_eq!(s.get(1).unwrap().e_cpu, 6);
        assert_eq!(s.get(3).unwrap().e_cpu, 2);
        assert!(s.get(2).is_none(), "removed container stays removed");
    }

    #[test]
    fn checkpoint_compacts_the_buffer() {
        let mut j = sample_journal();
        let grown = j.len();
        let r = restore(j.as_bytes());
        j.checkpoint(r.snapshot.as_ref().unwrap())
            .expect("mem store");
        assert!(j.len() < grown, "compaction shrank the journal");
        let r2 = restore(j.as_bytes());
        assert_eq!(r2.snapshot, r.snapshot);
        assert_eq!(r2.applied_deltas, 0);
    }

    #[test]
    fn empty_journal_restores_to_nothing() {
        let j = Journal::new();
        assert!(j.is_empty());
        let r = restore(j.as_bytes());
        assert_eq!(r.snapshot, None);
        assert_eq!(r.truncated_records, 0);
    }

    #[test]
    fn torn_tail_is_dropped_without_panic() {
        let j = sample_journal();
        let full = restore(j.as_bytes());
        let bytes = j.as_bytes();
        // Cut mid-way through the final record: the prefix still
        // replays, and exactly one truncation event is reported.
        let cut = bytes.len() - 3;
        let r = restore(&bytes[..cut]);
        assert_eq!(r.truncated_records, 1);
        let s = r.snapshot.expect("checkpoint still intact");
        assert!(s.get(2).is_some(), "remove record was the torn one");
        assert_eq!(
            s.get(1),
            full.snapshot.as_ref().unwrap().get(1),
            "earlier delta survived"
        );
    }

    #[test]
    fn corrupt_byte_stops_replay_at_bad_frame() {
        let j = sample_journal();
        let mut bytes = j.as_bytes().to_vec();
        // Flip a byte inside the second record's body (after header +
        // first record). Find it structurally: header is 8 bytes, first
        // record is 4 + len + 4.
        let len0 = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let second = 8 + 4 + len0 + 4;
        bytes[second + 6] ^= 0x40;
        let r = restore(&bytes);
        assert_eq!(r.truncated_records, 1);
        let s = r.snapshot.expect("checkpoint before the flip is good");
        assert_eq!(s.get(1).unwrap().e_cpu, 4, "delta after flip not applied");
    }

    #[test]
    fn wrong_magic_or_version_restores_to_nothing() {
        let mut j = Journal::new().into_bytes();
        j[0] ^= 0xFF;
        assert_eq!(restore(&j).snapshot, None);
        let mut j2 = Journal::new().into_bytes();
        j2[4] = 9;
        assert_eq!(restore(&j2).snapshot, None);
        assert_eq!(restore(b"").snapshot, None);
        assert_eq!(restore(b"AV").snapshot, None);
    }

    #[test]
    fn huge_length_word_does_not_allocate() {
        let mut j = Journal::new().into_bytes();
        j.extend_from_slice(&u32::MAX.to_le_bytes());
        j.extend_from_slice(&[0; 16]);
        let r = restore(&j);
        assert_eq!(r.truncated_records, 1);
        assert_eq!(r.snapshot, None);
    }

    #[test]
    fn deltas_without_checkpoint_are_ignored() {
        let mut j = Journal::new();
        j.append_delta(&state(9, 3, 1), 1).expect("mem store");
        j.append_remove(9).expect("mem store");
        let r = restore(j.as_bytes());
        assert_eq!(r.snapshot, None);
        assert_eq!(r.truncated_records, 0);
    }

    mod journal_props {
        use super::*;
        use proptest::prelude::*;

        // Build a journal from a scripted sequence of operations, and
        // also compute the expected snapshot after the first `k`
        // operations, for prefix-consistency checks.
        fn build(ops: &[(u8, u32, u32, u64)]) -> (Journal, Vec<Snapshot>) {
            let mut j = Journal::new();
            let mut s = Snapshot::at(0);
            j.checkpoint(&s).expect("mem store");
            let mut states = vec![s.clone()];
            for (i, &(kind, id, cpu, mem)) in ops.iter().enumerate() {
                let tick = i as u64 + 1;
                match kind % 3 {
                    0 => {
                        let st = ViewState {
                            id,
                            e_cpu: cpu,
                            e_mem: mem,
                            e_avail: mem / 2,
                            last_tick: tick,
                        };
                        j.append_delta(&st, tick).expect("mem store");
                        s.upsert(st);
                        s.tick = s.tick.max(tick);
                    }
                    1 => {
                        j.append_remove(id).expect("mem store");
                        s.remove(id);
                    }
                    _ => {
                        j.checkpoint(&s).expect("mem store");
                        // Compaction discards history: earlier prefixes
                        // are no longer representable, reset the script.
                        states.clear();
                    }
                }
                states.push(s.clone());
            }
            (j, states)
        }

        proptest! {
            // The tentpole property: checkpoint → append deltas →
            // crash at an arbitrary byte offset → restore always
            // yields a prefix-consistent state and never panics.
            #[test]
            fn truncation_at_any_offset_is_prefix_consistent(
                ops in prop::collection::vec(
                    (0u8..3, 1u32..6, 1u32..32, 1u64..1_000_000), 0..12),
                cut_frac in 0.0f64..1.0,
            ) {
                let (j, states) = build(&ops);
                let bytes = j.as_bytes();
                let cut = (bytes.len() as f64 * cut_frac) as usize;
                let r = restore(&bytes[..cut.min(bytes.len())]);
                if let Some(s) = &r.snapshot {
                    prop_assert!(
                        states.iter().any(|want| want == s),
                        "restored state matches no operation prefix: {s:?}"
                    );
                }
                // Full journal always restores losslessly.
                let full = restore(bytes);
                prop_assert_eq!(full.truncated_records, 0);
                prop_assert_eq!(full.snapshot.as_ref(), states.last());
            }

            #[test]
            fn corruption_never_panics_and_prefix_is_consistent(
                ops in prop::collection::vec(
                    (0u8..3, 1u32..6, 1u32..32, 1u64..1_000_000), 1..10),
                flip in prop::collection::vec((0usize..4096, 0u8..8), 1..4),
            ) {
                let (j, states) = build(&ops);
                let mut bytes = j.as_bytes().to_vec();
                for &(pos, bit) in &flip {
                    let idx = pos % bytes.len();
                    bytes[idx] ^= 1 << bit;
                }
                let r = restore(&bytes); // must not panic
                if let Some(s) = &r.snapshot {
                    // A flip the CRC catches truncates the replay; the
                    // surviving state must still be some prefix (flips
                    // the CRC misses are ~2^-32 and would fail here).
                    prop_assert!(
                        states.iter().any(|want| want == s),
                        "corrupted restore matches no prefix: {s:?}"
                    );
                }
            }

            #[test]
            fn journal_bytes_are_deterministic(
                ops in prop::collection::vec(
                    (0u8..3, 1u32..6, 1u32..32, 1u64..1_000_000), 0..10),
            ) {
                let (a, _) = build(&ops);
                let (b, _) = build(&ops);
                prop_assert_eq!(a.as_bytes(), b.as_bytes());
            }
        }
    }

    mod records {
        use super::*;

        #[test]
        fn record_stream_roundtrips() {
            let mut snap = Snapshot::at(9);
            snap.entries.push(state(1, 4, 9));
            let records = vec![
                Record::Checkpoint(snap),
                Record::Delta {
                    state: state(2, 8, 10),
                    tick: 10,
                },
                Record::Remove(1),
            ];
            let mut stream = Vec::new();
            for r in &records {
                stream.extend_from_slice(&encode_record(r));
            }
            let scan = decode_records(&stream);
            assert_eq!(scan.records, records);
            assert_eq!(scan.truncated, 0);
        }

        #[test]
        fn record_bytes_match_journal_bytes() {
            // The replication stream must be byte-identical to what the
            // journal would append for the same operations.
            let mut j = Journal::new();
            j.append_delta(&state(3, 2, 7), 7).expect("mem store");
            j.append_remove(3).expect("mem store");
            let mut stream = Vec::new();
            stream.extend_from_slice(&encode_record(&Record::Delta {
                state: state(3, 2, 7),
                tick: 7,
            }));
            stream.extend_from_slice(&encode_record(&Record::Remove(3)));
            assert_eq!(&j.as_bytes()[8..], &stream[..]);
        }

        #[test]
        fn truncated_stream_keeps_prefix() {
            let mut stream = Vec::new();
            stream.extend_from_slice(&encode_record(&Record::Remove(1)));
            stream.extend_from_slice(&encode_record(&Record::Remove(2)));
            let cut = stream.len() - 3;
            let scan = decode_records(&stream[..cut]);
            assert_eq!(scan.records, vec![Record::Remove(1)]);
            assert_eq!(scan.truncated, 1);
        }

        #[test]
        fn corrupt_stream_never_panics() {
            let mut stream = Vec::new();
            stream.extend_from_slice(&encode_record(&Record::Remove(7)));
            for i in 0..stream.len() {
                let mut bad = stream.clone();
                bad[i] ^= 0xFF;
                let _ = decode_records(&bad); // must not panic
            }
            // Absurd length word: bounded allocation, no panic.
            let huge = [0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3];
            assert_eq!(decode_records(&huge).truncated, 1);
        }
    }

    mod lease_rules {
        use super::super::lease::{Lease, LeaseError, LeaseFile, LEASE_BYTES};
        use super::super::store::{FaultyStore, StoreFaults};

        #[test]
        fn grant_renew_takeover() {
            let mut f = LeaseFile::new();
            // Grant: first caller gets epoch 1.
            let l1 = f.try_acquire(10, 0, 5).expect("grant");
            assert_eq!((l1.epoch, l1.holder, l1.expires), (1, 10, 5));
            // Refuse: someone else while unexpired, naming the blocker.
            assert_eq!(f.try_acquire(20, 3, 5), Err(LeaseError::Held(l1)));
            // Renew: same holder keeps the epoch, extends expiry.
            let l2 = f.try_acquire(10, 4, 5).expect("renew");
            assert_eq!((l2.epoch, l2.expires), (1, 9));
            // Takeover: after expiry anyone acquires at epoch + 1.
            let l3 = f.try_acquire(20, 10, 5).expect("takeover");
            assert_eq!((l3.epoch, l3.holder, l3.expires), (2, 20, 15));
        }

        #[test]
        fn strict_renew_never_takes_over() {
            let mut f = LeaseFile::new();
            let l1 = f.try_acquire(10, 0, 5).expect("grant");
            // In-TTL renewal extends without an epoch bump.
            let l2 = f.renew(10, 4, 5).expect("renew");
            assert_eq!((l2.epoch, l2.expires), (1, 9));
            // A foreign unexpired lease is Held…
            assert_eq!(f.renew(20, 5, 5), Err(LeaseError::Held(l2)));
            // …and a lapsed one is Expired, never a takeover: the
            // sleeping primary steps down instead of re-granting
            // itself.
            assert_eq!(f.renew(10, 20, 5), Err(LeaseError::Expired(Some(l2))));
            assert_eq!(f.current(), Some(l2), "failed renew mutates nothing");
            assert_eq!(
                LeaseFile::new().renew(1, 0, 5),
                Err(LeaseError::Expired(None))
            );
            let _ = l1;
        }

        #[test]
        fn expired_holder_retake_bumps_epoch() {
            let mut f = LeaseFile::new();
            f.try_acquire(10, 0, 5).expect("grant");
            // The old holder coming back after expiry is a takeover
            // too: it must not resume its old epoch silently.
            let l = f.try_acquire(10, 6, 5).expect("retake");
            assert_eq!(l.epoch, 2);
        }

        #[test]
        fn store_refusal_keeps_old_lease_readable() {
            // A lease on a device that goes full mid-campaign: the
            // renewal errs, but the *old* lease survives intact so
            // other contenders still read a consistent file and the
            // refused holder's step-down cannot split the brain.
            let store = FaultyStore::new(
                5,
                StoreFaults {
                    full_at: Some((10, 100)),
                    ..StoreFaults::default()
                },
            );
            let mut f = LeaseFile::with_store(Box::new(store));
            f.set_tick(0);
            let granted = f.try_acquire(10, 0, 5).expect("grant before window");
            f.set_tick(10);
            match f.renew(10, 3, 5) {
                Err(LeaseError::Store(_)) => {}
                other => panic!("expected store error, got {other:?}"),
            }
            assert_eq!(f.current(), Some(granted), "old lease still on disk");
            assert!(f.store_fault_stats().no_space_errors >= 1);
            // Takeover by another holder is equally refused while the
            // device is full — nobody holds a lease they can't persist.
            match f.try_acquire(20, 9, 5) {
                Err(LeaseError::Store(_)) => {}
                other => panic!("expected store error, got {other:?}"),
            }
        }

        #[test]
        fn corrupt_lease_reads_absent() {
            let mut f = LeaseFile::new();
            f.try_acquire(10, 0, 5).expect("grant");
            let good = f.as_bytes().to_vec();
            assert_eq!(good.len(), LEASE_BYTES);
            assert!(Lease::decode(&good).is_some());
            for i in 0..good.len() {
                let mut bad = good.clone();
                bad[i] ^= 0x10;
                assert_eq!(Lease::decode(&bad), None, "flip at {i} must fail CRC");
            }
            assert_eq!(Lease::decode(&good[..LEASE_BYTES - 1]), None);
            // A corrupt store behaves as never-granted.
            let mut torn = LeaseFile::from_bytes(vec![0xAB; 11]);
            assert_eq!(torn.current(), None);
            let l = torn.try_acquire(30, 0, 5).expect("regrant");
            assert_eq!(l.epoch, 1);
        }

        #[test]
        fn roundtrip_survives_rehydrate() {
            let mut f = LeaseFile::new();
            f.try_acquire(10, 0, 5).expect("grant");
            let f2 = LeaseFile::from_bytes(f.as_bytes().to_vec());
            assert_eq!(f2.current(), f.current());
        }
    }

    mod checkpoint_fault_props {
        use super::*;
        use crate::store::{FaultyStore, StoreFaults};
        use proptest::prelude::*;

        proptest! {
            // Satellite invariant: arbitrary interleavings of store
            // faults during checkpoints and appends never break
            // prefix-consistency, and a restore of the *durable* bytes
            // never reports more records than were synced.
            #[test]
            fn faulty_checkpoints_restore_prefix_consistent(
                seed in 0u64..1024,
                ops in prop::collection::vec(
                    (0u8..3, 1u32..6, 1u32..32), 1..24),
                torn in 0.0f64..0.4,
                werr in 0.0f64..0.3,
                full_at in prop::option::of((0u64..16, 1u64..8)),
                stall_at in prop::option::of((0u64..16, 1u64..8)),
            ) {
                let faults = StoreFaults {
                    torn_prob: torn,
                    write_err_prob: werr,
                    full_at,
                    sync_stall_at: stall_at,
                    // No bit rot here: it can strike *synced* bytes,
                    // which is a detection property (CRC) rather than
                    // the synced-prefix property under test.
                    ..StoreFaults::default()
                };
                let journal = Journal::with_store(
                    Box::new(FaultyStore::new(seed, faults)));
                let Ok(mut j) = journal else {
                    return; // header refused: no journal, nothing to check
                };
                // Reachable states: the snapshot after every prefix of
                // *successfully written* records — restore must land on
                // one of these. `written_ok` counts full records in the
                // live file since the last compaction; `synced_upper`
                // is the watermarked bound a restore may never exceed.
                let mut s = Snapshot::at(0);
                let mut reachable: Vec<Snapshot> = Vec::new();
                let mut written_ok = 0u64;
                let mut synced_upper = 0u64;
                for (i, &(kind, id, cpu)) in ops.iter().enumerate() {
                    let tick = i as u64 + 1;
                    j.set_tick(tick);
                    match kind % 3 {
                        0 => {
                            let st = ViewState {
                                id,
                                e_cpu: cpu,
                                e_mem: 1 << 20,
                                e_avail: 1 << 19,
                                last_tick: tick,
                            };
                            if j.append_delta(&st, tick).is_ok() {
                                s.upsert(st);
                                s.tick = s.tick.max(tick);
                                written_ok += 1;
                                reachable.push(s.clone());
                            }
                        }
                        1 => {
                            if j.append_remove(id).is_ok() {
                                s.remove(id);
                                written_ok += 1;
                                reachable.push(s.clone());
                            }
                        }
                        _ => match j.checkpoint(&s) {
                            Ok(()) => {
                                // Compaction synced: one durable record.
                                written_ok = 1;
                                synced_upper = 1;
                                reachable.push(s.clone());
                            }
                            Err(StoreError::SyncStalled) => {
                                // Record written, not yet watermarked;
                                // compaction clamped the mark to the
                                // header, so nothing is durable until a
                                // later sync lands.
                                written_ok = 1;
                                synced_upper = 0;
                                reachable.push(s.clone());
                            }
                            Err(_) => {
                                // Compaction destroyed the old file and
                                // the new record never fully landed.
                                written_ok = 0;
                                synced_upper = 0;
                            }
                        },
                    }
                    if j.sync().is_ok() {
                        synced_upper = written_ok;
                    }
                }

                j.crash();
                let r = restore(j.durable_bytes());
                let restored_records = if r.snapshot.is_some() {
                    1 + r.applied_deltas + r.applied_removes
                } else {
                    0
                };
                // Never more durable records than the watermark covers.
                prop_assert!(
                    restored_records <= synced_upper,
                    "restore reports {restored_records} records, only \
                     {synced_upper} were synced"
                );
                if let Some(got) = &r.snapshot {
                    prop_assert!(
                        reachable.iter().any(|want| {
                            want.entries == got.entries
                        }),
                        "restored state matches no reachable prefix: {got:?}"
                    );
                }
            }

            // Same storm, restoring the *live* bytes (no crash): still
            // prefix-consistent, still panic-free — torn appends leave
            // partial frames that restore must absorb as truncation.
            #[test]
            fn faulty_live_bytes_never_panic_restore(
                seed in 0u64..512,
                ops in prop::collection::vec((0u8..3, 1u32..6, 1u32..32), 1..16),
            ) {
                let faults = StoreFaults {
                    torn_prob: 0.35,
                    write_err_prob: 0.15,
                    bit_rot_prob: 0.1,
                    ..StoreFaults::default()
                };
                let journal = Journal::with_store(
                    Box::new(FaultyStore::new(seed, faults)));
                let Ok(mut j) = journal else { return };
                for (i, &(kind, id, cpu)) in ops.iter().enumerate() {
                    let tick = i as u64 + 1;
                    let st = ViewState {
                        id,
                        e_cpu: cpu,
                        e_mem: 4096,
                        e_avail: 1024,
                        last_tick: tick,
                    };
                    let _ = match kind % 3 {
                        0 => j.append_delta(&st, tick),
                        1 => j.append_remove(id),
                        _ => j.checkpoint(&Snapshot::at(tick)),
                    };
                }
                let _ = restore(j.as_bytes()); // must not panic
                let _ = restore(j.durable_bytes()); // must not panic
            }

            // A journal on a faulty store with the same seed is
            // bit-identical across runs: fault injection replays.
            #[test]
            fn faulty_journal_is_deterministic(
                seed in 0u64..512,
                ops in prop::collection::vec((0u8..3, 1u32..6, 1u32..32), 0..12),
            ) {
                let build = || {
                    let faults = StoreFaults {
                        torn_prob: 0.3,
                        write_err_prob: 0.2,
                        bit_rot_prob: 0.1,
                        ..StoreFaults::default()
                    };
                    let j = Journal::with_store(
                        Box::new(FaultyStore::new(seed, faults)));
                    let Ok(mut j) = j else { return Vec::new() };
                    for (i, &(kind, id, cpu)) in ops.iter().enumerate() {
                        let tick = i as u64 + 1;
                        let st = ViewState {
                            id,
                            e_cpu: cpu,
                            e_mem: 4096,
                            e_avail: 1024,
                            last_tick: tick,
                        };
                        let _ = match kind % 3 {
                            0 => j.append_delta(&st, tick),
                            1 => j.append_remove(id),
                            _ => j.checkpoint(&Snapshot::at(tick)),
                        };
                        let _ = j.sync();
                    }
                    j.as_bytes().to_vec()
                };
                prop_assert_eq!(build(), build());
            }
        }
    }
}
