//! Crash-safe persistence for adaptive resource views.
//!
//! The `ns_monitor` of the paper is a system-wide daemon: when it
//! restarts, every container's view would collapse back to the static
//! lower bounds until dynamic adjustment re-converges. This crate keeps
//! that from happening. A [`Journal`] records view state as a
//! **versioned, checksummed, append-only byte log**: periodic compacted
//! [checkpoints](Journal::checkpoint) carrying the full registry
//! snapshot, with per-container [deltas](Journal::append_delta) and
//! [removals](Journal::append_remove) appended in between. On restart,
//! [`restore`] replays the log back into a [`Snapshot`].
//!
//! # Wire format
//!
//! ```text
//! header  := magic:u32le ("AVRJ") | version:u32le
//! record  := len:u32le | body:[u8; len] | crc32:u32le
//! body    := kind:u8 | payload
//! ```
//!
//! The CRC32 (IEEE, reflected, polynomial `0xEDB88320`) covers the
//! length prefix *and* the body, so a torn length word is caught too.
//!
//! # Crash tolerance
//!
//! A journal may be cut at **any byte offset** (torn tail after a
//! crash) or contain flipped bits. [`restore`] never panics: it decodes
//! records until the first frame that is truncated or fails its
//! checksum, drops everything from that frame on, and reports how many
//! trailing records were discarded. The result is always
//! *prefix-consistent* — the state after applying some prefix of the
//! records that were written.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// File magic: `b"AVRJ"` as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"AVRJ");
/// Current journal format version.
pub const VERSION: u32 = 1;
/// Upper bound on a single record body (corrupt length words must not
/// cause huge allocations during restore).
pub const MAX_RECORD: usize = 1 << 20;

const KIND_CHECKPOINT: u8 = 1;
const KIND_DELTA: u8 = 2;
const KIND_REMOVE: u8 = 3;

pub mod crc32 {
    //! Table-driven IEEE CRC32 (the zlib/ethernet polynomial),
    //! hand-rolled because the CI containers build fully offline.

    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }

    const TABLE: [u32; 256] = table();

    /// CRC32 of `bytes` (IEEE, init `0xFFFF_FFFF`, final xor).
    pub fn checksum(bytes: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in bytes {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[cfg(test)]
    mod tests {
        use super::checksum;

        #[test]
        fn known_vectors() {
            // Standard check value for the IEEE polynomial.
            assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
            assert_eq!(checksum(b""), 0);
            assert_eq!(checksum(b"a"), 0xE8B7_BE43);
        }

        #[test]
        fn sensitive_to_single_bit_flips() {
            let base = checksum(b"resource view");
            let mut data = b"resource view".to_vec();
            for i in 0..data.len() * 8 {
                data[i / 8] ^= 1 << (i % 8);
                assert_ne!(checksum(&data), base, "flip at bit {i} undetected");
                data[i / 8] ^= 1 << (i % 8);
            }
        }
    }
}

/// The persisted view state of one container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewState {
    /// Cgroup id of the container.
    pub id: u32,
    /// Effective CPU count the dynamic loop had converged to.
    pub e_cpu: u32,
    /// Effective memory limit, bytes.
    pub e_mem: u64,
    /// Available (free-as-seen) memory, bytes.
    pub e_avail: u64,
    /// Update-timer tick of the last view refresh.
    pub last_tick: u64,
}

/// A full registry snapshot at one point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Update-timer tick the snapshot was taken at.
    pub tick: u64,
    /// Per-container states, kept sorted by container id.
    pub entries: Vec<ViewState>,
}

impl Snapshot {
    /// A snapshot taken at `tick` with no containers.
    pub fn at(tick: u64) -> Snapshot {
        Snapshot {
            tick,
            entries: Vec::new(),
        }
    }

    /// Look up a container's persisted state.
    pub fn get(&self, id: u32) -> Option<&ViewState> {
        self.entries
            .binary_search_by_key(&id, |e| e.id)
            .ok()
            .map(|i| &self.entries[i])
    }

    fn upsert(&mut self, state: ViewState) {
        match self.entries.binary_search_by_key(&state.id, |e| e.id) {
            Ok(i) => self.entries[i] = state,
            Err(i) => self.entries.insert(i, state),
        }
    }

    fn remove(&mut self, id: u32) {
        if let Ok(i) = self.entries.binary_search_by_key(&id, |e| e.id) {
            self.entries.remove(i);
        }
    }
}

/// What a [`restore`] recovered from a journal's bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Last-good snapshot with all decodable deltas applied, or `None`
    /// if no complete checkpoint survived.
    pub snapshot: Option<Snapshot>,
    /// Records dropped because they were torn or failed their CRC
    /// (everything from the first bad frame to the end of the buffer
    /// counts as one truncation event plus the bad frame itself).
    pub truncated_records: u64,
    /// Deltas applied on top of the checkpoint.
    pub applied_deltas: u64,
    /// Removals applied on top of the checkpoint.
    pub applied_removes: u64,
}

/// An append-only, checksummed journal of view-state changes.
///
/// The backing store is an owned byte buffer: the simulation treats it
/// as the daemon's on-disk state file, and crash injection simply
/// truncates or corrupts the bytes. [`Journal::checkpoint`] *compacts*:
/// it rewrites the buffer as `header + one checkpoint record`, so the
/// journal's size is bounded by checkpoint cadence rather than uptime.
#[derive(Debug, Clone)]
pub struct Journal {
    buf: Vec<u8>,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// An empty journal holding only the format header.
    pub fn new() -> Journal {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        Journal { buf }
    }

    /// The raw journal bytes (header + records).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the journal, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Size of the journal in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the journal holds only the header.
    pub fn is_empty(&self) -> bool {
        self.buf.len() <= 8
    }

    /// Write a compacted checkpoint: the buffer is reset to the header
    /// plus this single snapshot record, discarding older history.
    pub fn checkpoint(&mut self, snap: &Snapshot) {
        self.buf.truncate(8);
        let mut body = Vec::with_capacity(13 + snap.entries.len() * 28);
        body.push(KIND_CHECKPOINT);
        body.extend_from_slice(&snap.tick.to_le_bytes());
        body.extend_from_slice(&(snap.entries.len() as u32).to_le_bytes());
        for e in &snap.entries {
            encode_state(&mut body, e);
        }
        self.push_record(&body);
    }

    /// Append one container's refreshed view.
    pub fn append_delta(&mut self, state: &ViewState, tick: u64) {
        let mut body = Vec::with_capacity(37);
        body.push(KIND_DELTA);
        body.extend_from_slice(&tick.to_le_bytes());
        encode_state(&mut body, state);
        self.push_record(&body);
    }

    /// Append a container removal.
    pub fn append_remove(&mut self, id: u32) {
        let mut body = Vec::with_capacity(5);
        body.push(KIND_REMOVE);
        body.extend_from_slice(&id.to_le_bytes());
        self.push_record(&body);
    }

    fn push_record(&mut self, body: &[u8]) {
        let len = (body.len() as u32).to_le_bytes();
        let mut crc_input = Vec::with_capacity(4 + body.len());
        crc_input.extend_from_slice(&len);
        crc_input.extend_from_slice(body);
        let crc = crc32::checksum(&crc_input);
        self.buf.extend_from_slice(&len);
        self.buf.extend_from_slice(body);
        self.buf.extend_from_slice(&crc.to_le_bytes());
    }
}

fn encode_state(out: &mut Vec<u8>, e: &ViewState) {
    out.extend_from_slice(&e.id.to_le_bytes());
    out.extend_from_slice(&e.e_cpu.to_le_bytes());
    out.extend_from_slice(&e.e_mem.to_le_bytes());
    out.extend_from_slice(&e.e_avail.to_le_bytes());
    out.extend_from_slice(&e.last_tick.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }
}

fn decode_state(c: &mut Cursor<'_>) -> Option<ViewState> {
    Some(ViewState {
        id: c.u32()?,
        e_cpu: c.u32()?,
        e_mem: c.u64()?,
        e_avail: c.u64()?,
        last_tick: c.u64()?,
    })
}

/// Rebuild the last-good view state from journal bytes.
///
/// Tolerates arbitrary truncation and bit corruption: decoding stops at
/// the first frame whose length is torn or whose CRC fails, and the
/// surviving prefix is replayed — checkpoint first, then deltas and
/// removals in order. Never panics, never allocates past
/// [`MAX_RECORD`] per frame.
pub fn restore(bytes: &[u8]) -> RestoreReport {
    let mut report = RestoreReport::default();
    let mut c = Cursor { bytes, pos: 0 };
    let (magic, version) = match (c.u32(), c.u32()) {
        (Some(m), Some(v)) => (m, v),
        _ => {
            report.truncated_records = 1;
            return report;
        }
    };
    if magic != MAGIC || version != VERSION {
        report.truncated_records = 1;
        return report;
    }
    let mut snap: Option<Snapshot> = None;
    loop {
        let frame_start = c.pos;
        if frame_start == bytes.len() {
            break; // clean end
        }
        let Some(record) = read_record(&mut c) else {
            // Torn or corrupt tail: drop this frame and everything
            // after it. One counter bump per discarded tail.
            report.truncated_records += 1;
            break;
        };
        let mut rc = Cursor {
            bytes: record,
            pos: 0,
        };
        match rc.u8() {
            Some(KIND_CHECKPOINT) => {
                if let Some(s) = decode_checkpoint(&mut rc) {
                    snap = Some(s);
                    report.applied_deltas = 0;
                    report.applied_removes = 0;
                } else {
                    report.truncated_records += 1;
                    break;
                }
            }
            Some(KIND_DELTA) => {
                let decoded = rc
                    .u64()
                    .and_then(|tick| decode_state(&mut rc).map(|state| (tick, state)));
                match (decoded, &mut snap) {
                    (Some((tick, state)), Some(s)) => {
                        s.upsert(state);
                        s.tick = s.tick.max(tick);
                        report.applied_deltas += 1;
                    }
                    (Some(_), None) => {} // delta with no base: ignore
                    (None, _) => {
                        report.truncated_records += 1;
                        break;
                    }
                }
            }
            Some(KIND_REMOVE) => match (rc.u32(), &mut snap) {
                (Some(id), Some(s)) => {
                    s.remove(id);
                    report.applied_removes += 1;
                }
                (Some(_), None) => {}
                (None, _) => {
                    report.truncated_records += 1;
                    break;
                }
            },
            _ => {
                // Unknown kind — a later format or corruption the CRC
                // happened to miss. Stop here; the prefix is still good.
                report.truncated_records += 1;
                break;
            }
        }
    }
    report.snapshot = snap;
    report
}

fn read_record<'a>(c: &mut Cursor<'a>) -> Option<&'a [u8]> {
    let start = c.pos;
    let len = c.u32()? as usize;
    if len > MAX_RECORD {
        return None;
    }
    let body = c.take(len)?;
    let crc = c.u32()?;
    let covered = &c.bytes[start..start + 4 + len];
    if crc32::checksum(covered) != crc {
        return None;
    }
    Some(body)
}

fn decode_checkpoint(rc: &mut Cursor<'_>) -> Option<Snapshot> {
    let tick = rc.u64()?;
    let count = rc.u32()? as usize;
    if count > MAX_RECORD / 28 {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(decode_state(rc)?);
    }
    entries.sort_by_key(|e: &ViewState| e.id);
    Some(Snapshot { tick, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(id: u32, cpu: u32, tick: u64) -> ViewState {
        ViewState {
            id,
            e_cpu: cpu,
            e_mem: 1 << 30,
            e_avail: 1 << 29,
            last_tick: tick,
        }
    }

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        let snap = Snapshot {
            tick: 10,
            entries: vec![state(1, 4, 10), state(2, 8, 10)],
        };
        j.checkpoint(&snap);
        j.append_delta(&state(1, 6, 12), 12);
        j.append_delta(&state(3, 2, 13), 13);
        j.append_remove(2);
        j
    }

    #[test]
    fn round_trip_replays_checkpoint_and_deltas() {
        let j = sample_journal();
        let r = restore(j.as_bytes());
        assert_eq!(r.truncated_records, 0);
        assert_eq!(r.applied_deltas, 2);
        assert_eq!(r.applied_removes, 1);
        let s = r.snapshot.expect("checkpoint survived");
        assert_eq!(s.tick, 13);
        assert_eq!(s.entries.len(), 2);
        assert_eq!(s.get(1).unwrap().e_cpu, 6);
        assert_eq!(s.get(3).unwrap().e_cpu, 2);
        assert!(s.get(2).is_none(), "removed container stays removed");
    }

    #[test]
    fn checkpoint_compacts_the_buffer() {
        let mut j = sample_journal();
        let grown = j.len();
        let r = restore(j.as_bytes());
        j.checkpoint(r.snapshot.as_ref().unwrap());
        assert!(j.len() < grown, "compaction shrank the journal");
        let r2 = restore(j.as_bytes());
        assert_eq!(r2.snapshot, r.snapshot);
        assert_eq!(r2.applied_deltas, 0);
    }

    #[test]
    fn empty_journal_restores_to_nothing() {
        let j = Journal::new();
        assert!(j.is_empty());
        let r = restore(j.as_bytes());
        assert_eq!(r.snapshot, None);
        assert_eq!(r.truncated_records, 0);
    }

    #[test]
    fn torn_tail_is_dropped_without_panic() {
        let j = sample_journal();
        let full = restore(j.as_bytes());
        let bytes = j.as_bytes();
        // Cut mid-way through the final record: the prefix still
        // replays, and exactly one truncation event is reported.
        let cut = bytes.len() - 3;
        let r = restore(&bytes[..cut]);
        assert_eq!(r.truncated_records, 1);
        let s = r.snapshot.expect("checkpoint still intact");
        assert!(s.get(2).is_some(), "remove record was the torn one");
        assert_eq!(
            s.get(1),
            full.snapshot.as_ref().unwrap().get(1),
            "earlier delta survived"
        );
    }

    #[test]
    fn corrupt_byte_stops_replay_at_bad_frame() {
        let j = sample_journal();
        let mut bytes = j.as_bytes().to_vec();
        // Flip a byte inside the second record's body (after header +
        // first record). Find it structurally: header is 8 bytes, first
        // record is 4 + len + 4.
        let len0 = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let second = 8 + 4 + len0 + 4;
        bytes[second + 6] ^= 0x40;
        let r = restore(&bytes);
        assert_eq!(r.truncated_records, 1);
        let s = r.snapshot.expect("checkpoint before the flip is good");
        assert_eq!(s.get(1).unwrap().e_cpu, 4, "delta after flip not applied");
    }

    #[test]
    fn wrong_magic_or_version_restores_to_nothing() {
        let mut j = Journal::new().into_bytes();
        j[0] ^= 0xFF;
        assert_eq!(restore(&j).snapshot, None);
        let mut j2 = Journal::new().into_bytes();
        j2[4] = 9;
        assert_eq!(restore(&j2).snapshot, None);
        assert_eq!(restore(b"").snapshot, None);
        assert_eq!(restore(b"AV").snapshot, None);
    }

    #[test]
    fn huge_length_word_does_not_allocate() {
        let mut j = Journal::new().into_bytes();
        j.extend_from_slice(&u32::MAX.to_le_bytes());
        j.extend_from_slice(&[0; 16]);
        let r = restore(&j);
        assert_eq!(r.truncated_records, 1);
        assert_eq!(r.snapshot, None);
    }

    #[test]
    fn deltas_without_checkpoint_are_ignored() {
        let mut j = Journal::new();
        j.append_delta(&state(9, 3, 1), 1);
        j.append_remove(9);
        let r = restore(j.as_bytes());
        assert_eq!(r.snapshot, None);
        assert_eq!(r.truncated_records, 0);
    }

    mod journal_props {
        use super::*;
        use proptest::prelude::*;

        // Build a journal from a scripted sequence of operations, and
        // also compute the expected snapshot after the first `k`
        // operations, for prefix-consistency checks.
        fn build(ops: &[(u8, u32, u32, u64)]) -> (Journal, Vec<Snapshot>) {
            let mut j = Journal::new();
            let mut s = Snapshot::at(0);
            j.checkpoint(&s);
            let mut states = vec![s.clone()];
            for (i, &(kind, id, cpu, mem)) in ops.iter().enumerate() {
                let tick = i as u64 + 1;
                match kind % 3 {
                    0 => {
                        let st = ViewState {
                            id,
                            e_cpu: cpu,
                            e_mem: mem,
                            e_avail: mem / 2,
                            last_tick: tick,
                        };
                        j.append_delta(&st, tick);
                        s.upsert(st);
                        s.tick = s.tick.max(tick);
                    }
                    1 => {
                        j.append_remove(id);
                        s.remove(id);
                    }
                    _ => {
                        j.checkpoint(&s);
                        // Compaction discards history: earlier prefixes
                        // are no longer representable, reset the script.
                        states.clear();
                    }
                }
                states.push(s.clone());
            }
            (j, states)
        }

        proptest! {
            // The tentpole property: checkpoint → append deltas →
            // crash at an arbitrary byte offset → restore always
            // yields a prefix-consistent state and never panics.
            #[test]
            fn truncation_at_any_offset_is_prefix_consistent(
                ops in prop::collection::vec(
                    (0u8..3, 1u32..6, 1u32..32, 1u64..1_000_000), 0..12),
                cut_frac in 0.0f64..1.0,
            ) {
                let (j, states) = build(&ops);
                let bytes = j.as_bytes();
                let cut = (bytes.len() as f64 * cut_frac) as usize;
                let r = restore(&bytes[..cut.min(bytes.len())]);
                if let Some(s) = &r.snapshot {
                    prop_assert!(
                        states.iter().any(|want| want == s),
                        "restored state matches no operation prefix: {s:?}"
                    );
                }
                // Full journal always restores losslessly.
                let full = restore(bytes);
                prop_assert_eq!(full.truncated_records, 0);
                prop_assert_eq!(full.snapshot.as_ref(), states.last());
            }

            #[test]
            fn corruption_never_panics_and_prefix_is_consistent(
                ops in prop::collection::vec(
                    (0u8..3, 1u32..6, 1u32..32, 1u64..1_000_000), 1..10),
                flip in prop::collection::vec((0usize..4096, 0u8..8), 1..4),
            ) {
                let (j, states) = build(&ops);
                let mut bytes = j.as_bytes().to_vec();
                for &(pos, bit) in &flip {
                    let idx = pos % bytes.len();
                    bytes[idx] ^= 1 << bit;
                }
                let r = restore(&bytes); // must not panic
                if let Some(s) = &r.snapshot {
                    // A flip the CRC catches truncates the replay; the
                    // surviving state must still be some prefix (flips
                    // the CRC misses are ~2^-32 and would fail here).
                    prop_assert!(
                        states.iter().any(|want| want == s),
                        "corrupted restore matches no prefix: {s:?}"
                    );
                }
            }

            #[test]
            fn journal_bytes_are_deterministic(
                ops in prop::collection::vec(
                    (0u8..3, 1u32..6, 1u32..32, 1u64..1_000_000), 0..10),
            ) {
                let (a, _) = build(&ops);
                let (b, _) = build(&ops);
                prop_assert_eq!(a.as_bytes(), b.as_bytes());
            }
        }
    }
}
