//! Crash-safe persistence for adaptive resource views.
//!
//! The `ns_monitor` of the paper is a system-wide daemon: when it
//! restarts, every container's view would collapse back to the static
//! lower bounds until dynamic adjustment re-converges. This crate keeps
//! that from happening. A [`Journal`] records view state as a
//! **versioned, checksummed, append-only byte log**: periodic compacted
//! [checkpoints](Journal::checkpoint) carrying the full registry
//! snapshot, with per-container [deltas](Journal::append_delta) and
//! [removals](Journal::append_remove) appended in between. On restart,
//! [`restore`] replays the log back into a [`Snapshot`].
//!
//! # Wire format
//!
//! ```text
//! header  := magic:u32le ("AVRJ") | version:u32le
//! record  := len:u32le | body:[u8; len] | crc32:u32le
//! body    := kind:u8 | payload
//! ```
//!
//! The CRC32 (IEEE, reflected, polynomial `0xEDB88320`) covers the
//! length prefix *and* the body, so a torn length word is caught too.
//!
//! # Crash tolerance
//!
//! A journal may be cut at **any byte offset** (torn tail after a
//! crash) or contain flipped bits. [`restore`] never panics: it decodes
//! records until the first frame that is truncated or fails its
//! checksum, drops everything from that frame on, and reports how many
//! trailing records were discarded. The result is always
//! *prefix-consistent* — the state after applying some prefix of the
//! records that were written.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// File magic: `b"AVRJ"` as a little-endian `u32`.
pub const MAGIC: u32 = u32::from_le_bytes(*b"AVRJ");
/// Current journal format version.
pub const VERSION: u32 = 1;
/// Upper bound on a single record body (corrupt length words must not
/// cause huge allocations during restore).
pub const MAX_RECORD: usize = 1 << 20;

const KIND_CHECKPOINT: u8 = 1;
const KIND_DELTA: u8 = 2;
const KIND_REMOVE: u8 = 3;

/// One decoded journal record. The journal's own [`restore`] folds
/// records into a snapshot; replication streams ship them raw so a
/// standby can fold them into a *live* index instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A full compacted snapshot (replaces all prior state).
    Checkpoint(Snapshot),
    /// One container's refreshed view at `tick`.
    Delta {
        /// The refreshed state.
        state: ViewState,
        /// Journal-clock tick of the refresh.
        tick: u64,
    },
    /// A container removal.
    Remove(u32),
}

/// Encode one record in the journal's CRC-framed record format
/// (`len | body | crc32`, no file header). The bytes are exactly what
/// [`Journal`] appends, so a replication stream and the journal cannot
/// drift in format.
pub fn encode_record(r: &Record) -> Vec<u8> {
    let body = match r {
        Record::Checkpoint(snap) => checkpoint_body(snap),
        Record::Delta { state, tick } => delta_body(state, *tick),
        Record::Remove(id) => remove_body(*id),
    };
    let mut out = Vec::with_capacity(body.len() + 8);
    frame_record_into(&mut out, &body);
    out
}

/// What a [`decode_records`] scan recovered from a bare record stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordScan {
    /// Records decoded in order, up to the first bad frame.
    pub records: Vec<Record>,
    /// 1 if the stream ended in a torn or corrupt frame (everything
    /// from that frame on is dropped), else 0.
    pub truncated: u64,
}

/// Decode a bare stream of CRC-framed records (no file header), as
/// carried by a replication frame. Stops at the first torn or corrupt
/// frame and reports it; never panics, never allocates past
/// [`MAX_RECORD`] per frame, for any input bytes.
pub fn decode_records(bytes: &[u8]) -> RecordScan {
    let mut scan = RecordScan::default();
    let mut c = Cursor { bytes, pos: 0 };
    while c.pos < bytes.len() {
        let Some(record) = read_record(&mut c) else {
            scan.truncated = 1;
            break;
        };
        let mut rc = Cursor {
            bytes: record,
            pos: 0,
        };
        let decoded = match rc.u8() {
            Some(KIND_CHECKPOINT) => decode_checkpoint(&mut rc).map(Record::Checkpoint),
            Some(KIND_DELTA) => rc
                .u64()
                .and_then(|tick| decode_state(&mut rc).map(|state| Record::Delta { state, tick })),
            Some(KIND_REMOVE) => rc.u32().map(Record::Remove),
            _ => None,
        };
        match decoded {
            Some(r) => scan.records.push(r),
            None => {
                scan.truncated = 1;
                break;
            }
        }
    }
    scan
}

fn checkpoint_body(snap: &Snapshot) -> Vec<u8> {
    let mut body = Vec::with_capacity(13 + snap.entries.len() * 28);
    body.push(KIND_CHECKPOINT);
    body.extend_from_slice(&snap.tick.to_le_bytes());
    body.extend_from_slice(&(snap.entries.len() as u32).to_le_bytes());
    for e in &snap.entries {
        encode_state(&mut body, e);
    }
    body
}

fn delta_body(state: &ViewState, tick: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(37);
    body.push(KIND_DELTA);
    body.extend_from_slice(&tick.to_le_bytes());
    encode_state(&mut body, state);
    body
}

fn remove_body(id: u32) -> Vec<u8> {
    let mut body = Vec::with_capacity(5);
    body.push(KIND_REMOVE);
    body.extend_from_slice(&id.to_le_bytes());
    body
}

fn frame_record_into(buf: &mut Vec<u8>, body: &[u8]) {
    let len = (body.len() as u32).to_le_bytes();
    let mut crc_input = Vec::with_capacity(4 + body.len());
    crc_input.extend_from_slice(&len);
    crc_input.extend_from_slice(body);
    let crc = crc32::checksum(&crc_input);
    buf.extend_from_slice(&len);
    buf.extend_from_slice(body);
    buf.extend_from_slice(&crc.to_le_bytes());
}

pub mod crc32 {
    //! Table-driven IEEE CRC32 (the zlib/ethernet polynomial),
    //! hand-rolled because the CI containers build fully offline.

    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }

    const TABLE: [u32; 256] = table();

    /// CRC32 of `bytes` (IEEE, init `0xFFFF_FFFF`, final xor).
    pub fn checksum(bytes: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in bytes {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[cfg(test)]
    mod tests {
        use super::checksum;

        #[test]
        fn known_vectors() {
            // Standard check value for the IEEE polynomial.
            assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
            assert_eq!(checksum(b""), 0);
            assert_eq!(checksum(b"a"), 0xE8B7_BE43);
        }

        #[test]
        fn sensitive_to_single_bit_flips() {
            let base = checksum(b"resource view");
            let mut data = b"resource view".to_vec();
            for i in 0..data.len() * 8 {
                data[i / 8] ^= 1 << (i % 8);
                assert_ne!(checksum(&data), base, "flip at bit {i} undetected");
                data[i / 8] ^= 1 << (i % 8);
            }
        }
    }
}

/// The persisted view state of one container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewState {
    /// Cgroup id of the container.
    pub id: u32,
    /// Effective CPU count the dynamic loop had converged to.
    pub e_cpu: u32,
    /// Effective memory limit, bytes.
    pub e_mem: u64,
    /// Available (free-as-seen) memory, bytes.
    pub e_avail: u64,
    /// Update-timer tick of the last view refresh.
    pub last_tick: u64,
}

/// A full registry snapshot at one point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Update-timer tick the snapshot was taken at.
    pub tick: u64,
    /// Per-container states, kept sorted by container id.
    pub entries: Vec<ViewState>,
}

impl Snapshot {
    /// A snapshot taken at `tick` with no containers.
    pub fn at(tick: u64) -> Snapshot {
        Snapshot {
            tick,
            entries: Vec::new(),
        }
    }

    /// Look up a container's persisted state.
    pub fn get(&self, id: u32) -> Option<&ViewState> {
        self.entries
            .binary_search_by_key(&id, |e| e.id)
            .ok()
            .map(|i| &self.entries[i])
    }

    fn upsert(&mut self, state: ViewState) {
        match self.entries.binary_search_by_key(&state.id, |e| e.id) {
            Ok(i) => self.entries[i] = state,
            Err(i) => self.entries.insert(i, state),
        }
    }

    fn remove(&mut self, id: u32) {
        if let Ok(i) = self.entries.binary_search_by_key(&id, |e| e.id) {
            self.entries.remove(i);
        }
    }
}

/// What a [`restore`] recovered from a journal's bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Last-good snapshot with all decodable deltas applied, or `None`
    /// if no complete checkpoint survived.
    pub snapshot: Option<Snapshot>,
    /// Records dropped because they were torn or failed their CRC
    /// (everything from the first bad frame to the end of the buffer
    /// counts as one truncation event plus the bad frame itself).
    pub truncated_records: u64,
    /// Deltas applied on top of the checkpoint.
    pub applied_deltas: u64,
    /// Removals applied on top of the checkpoint.
    pub applied_removes: u64,
}

/// An append-only, checksummed journal of view-state changes.
///
/// The backing store is an owned byte buffer: the simulation treats it
/// as the daemon's on-disk state file, and crash injection simply
/// truncates or corrupts the bytes. [`Journal::checkpoint`] *compacts*:
/// it rewrites the buffer as `header + one checkpoint record`, so the
/// journal's size is bounded by checkpoint cadence rather than uptime.
#[derive(Debug, Clone)]
pub struct Journal {
    buf: Vec<u8>,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// An empty journal holding only the format header.
    pub fn new() -> Journal {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        Journal { buf }
    }

    /// The raw journal bytes (header + records).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the journal, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Size of the journal in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the journal holds only the header.
    pub fn is_empty(&self) -> bool {
        self.buf.len() <= 8
    }

    /// Write a compacted checkpoint: the buffer is reset to the header
    /// plus this single snapshot record, discarding older history.
    pub fn checkpoint(&mut self, snap: &Snapshot) {
        self.buf.truncate(8);
        let body = checkpoint_body(snap);
        frame_record_into(&mut self.buf, &body);
    }

    /// Append one container's refreshed view.
    pub fn append_delta(&mut self, state: &ViewState, tick: u64) {
        let body = delta_body(state, tick);
        frame_record_into(&mut self.buf, &body);
    }

    /// Append a container removal.
    pub fn append_remove(&mut self, id: u32) {
        let body = remove_body(id);
        frame_record_into(&mut self.buf, &body);
    }
}

fn encode_state(out: &mut Vec<u8>, e: &ViewState) {
    out.extend_from_slice(&e.id.to_le_bytes());
    out.extend_from_slice(&e.e_cpu.to_le_bytes());
    out.extend_from_slice(&e.e_mem.to_le_bytes());
    out.extend_from_slice(&e.e_avail.to_le_bytes());
    out.extend_from_slice(&e.last_tick.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }
}

fn decode_state(c: &mut Cursor<'_>) -> Option<ViewState> {
    Some(ViewState {
        id: c.u32()?,
        e_cpu: c.u32()?,
        e_mem: c.u64()?,
        e_avail: c.u64()?,
        last_tick: c.u64()?,
    })
}

/// Rebuild the last-good view state from journal bytes.
///
/// Tolerates arbitrary truncation and bit corruption: decoding stops at
/// the first frame whose length is torn or whose CRC fails, and the
/// surviving prefix is replayed — checkpoint first, then deltas and
/// removals in order. Never panics, never allocates past
/// [`MAX_RECORD`] per frame.
pub fn restore(bytes: &[u8]) -> RestoreReport {
    let mut report = RestoreReport::default();
    let mut c = Cursor { bytes, pos: 0 };
    let (magic, version) = match (c.u32(), c.u32()) {
        (Some(m), Some(v)) => (m, v),
        _ => {
            report.truncated_records = 1;
            return report;
        }
    };
    if magic != MAGIC || version != VERSION {
        report.truncated_records = 1;
        return report;
    }
    let mut snap: Option<Snapshot> = None;
    loop {
        let frame_start = c.pos;
        if frame_start == bytes.len() {
            break; // clean end
        }
        let Some(record) = read_record(&mut c) else {
            // Torn or corrupt tail: drop this frame and everything
            // after it. One counter bump per discarded tail.
            report.truncated_records += 1;
            break;
        };
        let mut rc = Cursor {
            bytes: record,
            pos: 0,
        };
        match rc.u8() {
            Some(KIND_CHECKPOINT) => {
                if let Some(s) = decode_checkpoint(&mut rc) {
                    snap = Some(s);
                    report.applied_deltas = 0;
                    report.applied_removes = 0;
                } else {
                    report.truncated_records += 1;
                    break;
                }
            }
            Some(KIND_DELTA) => {
                let decoded = rc
                    .u64()
                    .and_then(|tick| decode_state(&mut rc).map(|state| (tick, state)));
                match (decoded, &mut snap) {
                    (Some((tick, state)), Some(s)) => {
                        s.upsert(state);
                        s.tick = s.tick.max(tick);
                        report.applied_deltas += 1;
                    }
                    (Some(_), None) => {} // delta with no base: ignore
                    (None, _) => {
                        report.truncated_records += 1;
                        break;
                    }
                }
            }
            Some(KIND_REMOVE) => match (rc.u32(), &mut snap) {
                (Some(id), Some(s)) => {
                    s.remove(id);
                    report.applied_removes += 1;
                }
                (Some(_), None) => {}
                (None, _) => {
                    report.truncated_records += 1;
                    break;
                }
            },
            _ => {
                // Unknown kind — a later format or corruption the CRC
                // happened to miss. Stop here; the prefix is still good.
                report.truncated_records += 1;
                break;
            }
        }
    }
    report.snapshot = snap;
    report
}

fn read_record<'a>(c: &mut Cursor<'a>) -> Option<&'a [u8]> {
    let start = c.pos;
    let len = c.u32()? as usize;
    if len > MAX_RECORD {
        return None;
    }
    let body = c.take(len)?;
    let crc = c.u32()?;
    let covered = &c.bytes[start..start + 4 + len];
    if crc32::checksum(covered) != crc {
        return None;
    }
    Some(body)
}

fn decode_checkpoint(rc: &mut Cursor<'_>) -> Option<Snapshot> {
    let tick = rc.u64()?;
    let count = rc.u32()? as usize;
    if count > MAX_RECORD / 28 {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(decode_state(rc)?);
    }
    entries.sort_by_key(|e: &ViewState| e.id);
    Some(Snapshot { tick, entries })
}

pub mod lease {
    //! A file-backed controller lease with monotone epochs.
    //!
    //! Fleet controllers elect a leader through a single small state
    //! file (here: an owned byte buffer, same as [`Journal`](super::Journal)'s
    //! store — the simulation's stand-in for a shared disk or config
    //! volume). The rules are deliberately minimal:
    //!
    //! - **Grant.** An empty or unreadable lease is granted to the first
    //!   caller at **epoch 1**.
    //! - **Renew.** The current holder may renew before expiry; the
    //!   epoch does **not** change.
    //! - **Takeover.** Any caller may acquire after expiry; the epoch is
    //!   **bumped by one**. A bumped epoch is the promotion signal — the
    //!   cluster fences everything stamped with a lower epoch.
    //! - **Refuse.** An unexpired lease held by someone else is never
    //!   reassigned.
    //!
    //! Time is the caller's deterministic tick clock, not wall time, so
    //! seeded campaigns replay bit-identically.
    //!
    //! ```text
    //! lease := magic:u32le ("AVRL") | epoch:u64le | holder:u32le
    //!          | expires:u64le | crc32:u32le
    //! ```
    //!
    //! The CRC covers everything before it; a torn or corrupt lease
    //! reads as *absent* (first caller re-grants at `epoch + 1` is not
    //! possible from garbage, so a corrupt file restarts at epoch 1 —
    //! acceptable because fencing only requires epochs be monotone
    //! *while the file is intact*, and peripheries additionally track
    //! the highest epoch they have ever seen).

    use super::crc32;

    /// File magic: `b"AVRL"` as a little-endian `u32`.
    pub const LEASE_MAGIC: u32 = u32::from_le_bytes(*b"AVRL");
    /// Encoded lease size in bytes.
    pub const LEASE_BYTES: usize = 28;

    /// One decoded lease: who leads, at what epoch, until when.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Lease {
        /// Monotone controller epoch; bumped on every takeover.
        pub epoch: u64,
        /// Holder id (a controller's stable identity).
        pub holder: u32,
        /// Tick after which the lease may be taken over.
        pub expires: u64,
    }

    impl Lease {
        /// Encode to the CRC-protected on-disk form.
        pub fn encode(&self) -> Vec<u8> {
            let mut out = Vec::with_capacity(LEASE_BYTES);
            out.extend_from_slice(&LEASE_MAGIC.to_le_bytes());
            out.extend_from_slice(&self.epoch.to_le_bytes());
            out.extend_from_slice(&self.holder.to_le_bytes());
            out.extend_from_slice(&self.expires.to_le_bytes());
            let crc = crc32::checksum(&out);
            out.extend_from_slice(&crc.to_le_bytes());
            out
        }

        /// Decode; `None` for anything torn, corrupt, or foreign.
        pub fn decode(bytes: &[u8]) -> Option<Lease> {
            if bytes.len() != LEASE_BYTES {
                return None;
            }
            let body = &bytes[..LEASE_BYTES - 4];
            let crc = u32::from_le_bytes(bytes[LEASE_BYTES - 4..].try_into().ok()?);
            if crc32::checksum(body) != crc {
                return None;
            }
            if u32::from_le_bytes(body[0..4].try_into().ok()?) != LEASE_MAGIC {
                return None;
            }
            Some(Lease {
                epoch: u64::from_le_bytes(body[4..12].try_into().ok()?),
                holder: u32::from_le_bytes(body[12..16].try_into().ok()?),
                expires: u64::from_le_bytes(body[16..24].try_into().ok()?),
            })
        }
    }

    /// The byte-backed lease store controllers contend on.
    #[derive(Debug, Clone, Default)]
    pub struct LeaseFile {
        buf: Vec<u8>,
    }

    impl LeaseFile {
        /// An empty (never-granted) lease store.
        pub fn new() -> LeaseFile {
            LeaseFile::default()
        }

        /// Rehydrate from bytes (e.g. after a warm restart).
        pub fn from_bytes(buf: Vec<u8>) -> LeaseFile {
            LeaseFile { buf }
        }

        /// The raw store bytes, exactly as "on disk".
        pub fn as_bytes(&self) -> &[u8] {
            &self.buf
        }

        /// The current lease, if the store holds an intact one.
        pub fn current(&self) -> Option<Lease> {
            Lease::decode(&self.buf)
        }

        /// Try to acquire or renew the lease for `holder` at tick `now`,
        /// extending it to `now + ttl`. Returns the held lease on
        /// success (grant, renew, or takeover per the module rules), or
        /// `None` if another holder's unexpired lease blocks us.
        pub fn try_acquire(&mut self, holder: u32, now: u64, ttl: u64) -> Option<Lease> {
            let next = match self.current() {
                None => Lease {
                    epoch: 1,
                    holder,
                    expires: now.saturating_add(ttl),
                },
                Some(cur) if cur.holder == holder && now <= cur.expires => Lease {
                    epoch: cur.epoch,
                    holder,
                    expires: now.saturating_add(ttl),
                },
                Some(cur) if now > cur.expires => Lease {
                    epoch: cur.epoch.saturating_add(1),
                    holder,
                    expires: now.saturating_add(ttl),
                },
                Some(_) => return None,
            };
            self.buf = next.encode();
            Some(next)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(id: u32, cpu: u32, tick: u64) -> ViewState {
        ViewState {
            id,
            e_cpu: cpu,
            e_mem: 1 << 30,
            e_avail: 1 << 29,
            last_tick: tick,
        }
    }

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        let snap = Snapshot {
            tick: 10,
            entries: vec![state(1, 4, 10), state(2, 8, 10)],
        };
        j.checkpoint(&snap);
        j.append_delta(&state(1, 6, 12), 12);
        j.append_delta(&state(3, 2, 13), 13);
        j.append_remove(2);
        j
    }

    #[test]
    fn round_trip_replays_checkpoint_and_deltas() {
        let j = sample_journal();
        let r = restore(j.as_bytes());
        assert_eq!(r.truncated_records, 0);
        assert_eq!(r.applied_deltas, 2);
        assert_eq!(r.applied_removes, 1);
        let s = r.snapshot.expect("checkpoint survived");
        assert_eq!(s.tick, 13);
        assert_eq!(s.entries.len(), 2);
        assert_eq!(s.get(1).unwrap().e_cpu, 6);
        assert_eq!(s.get(3).unwrap().e_cpu, 2);
        assert!(s.get(2).is_none(), "removed container stays removed");
    }

    #[test]
    fn checkpoint_compacts_the_buffer() {
        let mut j = sample_journal();
        let grown = j.len();
        let r = restore(j.as_bytes());
        j.checkpoint(r.snapshot.as_ref().unwrap());
        assert!(j.len() < grown, "compaction shrank the journal");
        let r2 = restore(j.as_bytes());
        assert_eq!(r2.snapshot, r.snapshot);
        assert_eq!(r2.applied_deltas, 0);
    }

    #[test]
    fn empty_journal_restores_to_nothing() {
        let j = Journal::new();
        assert!(j.is_empty());
        let r = restore(j.as_bytes());
        assert_eq!(r.snapshot, None);
        assert_eq!(r.truncated_records, 0);
    }

    #[test]
    fn torn_tail_is_dropped_without_panic() {
        let j = sample_journal();
        let full = restore(j.as_bytes());
        let bytes = j.as_bytes();
        // Cut mid-way through the final record: the prefix still
        // replays, and exactly one truncation event is reported.
        let cut = bytes.len() - 3;
        let r = restore(&bytes[..cut]);
        assert_eq!(r.truncated_records, 1);
        let s = r.snapshot.expect("checkpoint still intact");
        assert!(s.get(2).is_some(), "remove record was the torn one");
        assert_eq!(
            s.get(1),
            full.snapshot.as_ref().unwrap().get(1),
            "earlier delta survived"
        );
    }

    #[test]
    fn corrupt_byte_stops_replay_at_bad_frame() {
        let j = sample_journal();
        let mut bytes = j.as_bytes().to_vec();
        // Flip a byte inside the second record's body (after header +
        // first record). Find it structurally: header is 8 bytes, first
        // record is 4 + len + 4.
        let len0 = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let second = 8 + 4 + len0 + 4;
        bytes[second + 6] ^= 0x40;
        let r = restore(&bytes);
        assert_eq!(r.truncated_records, 1);
        let s = r.snapshot.expect("checkpoint before the flip is good");
        assert_eq!(s.get(1).unwrap().e_cpu, 4, "delta after flip not applied");
    }

    #[test]
    fn wrong_magic_or_version_restores_to_nothing() {
        let mut j = Journal::new().into_bytes();
        j[0] ^= 0xFF;
        assert_eq!(restore(&j).snapshot, None);
        let mut j2 = Journal::new().into_bytes();
        j2[4] = 9;
        assert_eq!(restore(&j2).snapshot, None);
        assert_eq!(restore(b"").snapshot, None);
        assert_eq!(restore(b"AV").snapshot, None);
    }

    #[test]
    fn huge_length_word_does_not_allocate() {
        let mut j = Journal::new().into_bytes();
        j.extend_from_slice(&u32::MAX.to_le_bytes());
        j.extend_from_slice(&[0; 16]);
        let r = restore(&j);
        assert_eq!(r.truncated_records, 1);
        assert_eq!(r.snapshot, None);
    }

    #[test]
    fn deltas_without_checkpoint_are_ignored() {
        let mut j = Journal::new();
        j.append_delta(&state(9, 3, 1), 1);
        j.append_remove(9);
        let r = restore(j.as_bytes());
        assert_eq!(r.snapshot, None);
        assert_eq!(r.truncated_records, 0);
    }

    mod journal_props {
        use super::*;
        use proptest::prelude::*;

        // Build a journal from a scripted sequence of operations, and
        // also compute the expected snapshot after the first `k`
        // operations, for prefix-consistency checks.
        fn build(ops: &[(u8, u32, u32, u64)]) -> (Journal, Vec<Snapshot>) {
            let mut j = Journal::new();
            let mut s = Snapshot::at(0);
            j.checkpoint(&s);
            let mut states = vec![s.clone()];
            for (i, &(kind, id, cpu, mem)) in ops.iter().enumerate() {
                let tick = i as u64 + 1;
                match kind % 3 {
                    0 => {
                        let st = ViewState {
                            id,
                            e_cpu: cpu,
                            e_mem: mem,
                            e_avail: mem / 2,
                            last_tick: tick,
                        };
                        j.append_delta(&st, tick);
                        s.upsert(st);
                        s.tick = s.tick.max(tick);
                    }
                    1 => {
                        j.append_remove(id);
                        s.remove(id);
                    }
                    _ => {
                        j.checkpoint(&s);
                        // Compaction discards history: earlier prefixes
                        // are no longer representable, reset the script.
                        states.clear();
                    }
                }
                states.push(s.clone());
            }
            (j, states)
        }

        proptest! {
            // The tentpole property: checkpoint → append deltas →
            // crash at an arbitrary byte offset → restore always
            // yields a prefix-consistent state and never panics.
            #[test]
            fn truncation_at_any_offset_is_prefix_consistent(
                ops in prop::collection::vec(
                    (0u8..3, 1u32..6, 1u32..32, 1u64..1_000_000), 0..12),
                cut_frac in 0.0f64..1.0,
            ) {
                let (j, states) = build(&ops);
                let bytes = j.as_bytes();
                let cut = (bytes.len() as f64 * cut_frac) as usize;
                let r = restore(&bytes[..cut.min(bytes.len())]);
                if let Some(s) = &r.snapshot {
                    prop_assert!(
                        states.iter().any(|want| want == s),
                        "restored state matches no operation prefix: {s:?}"
                    );
                }
                // Full journal always restores losslessly.
                let full = restore(bytes);
                prop_assert_eq!(full.truncated_records, 0);
                prop_assert_eq!(full.snapshot.as_ref(), states.last());
            }

            #[test]
            fn corruption_never_panics_and_prefix_is_consistent(
                ops in prop::collection::vec(
                    (0u8..3, 1u32..6, 1u32..32, 1u64..1_000_000), 1..10),
                flip in prop::collection::vec((0usize..4096, 0u8..8), 1..4),
            ) {
                let (j, states) = build(&ops);
                let mut bytes = j.as_bytes().to_vec();
                for &(pos, bit) in &flip {
                    let idx = pos % bytes.len();
                    bytes[idx] ^= 1 << bit;
                }
                let r = restore(&bytes); // must not panic
                if let Some(s) = &r.snapshot {
                    // A flip the CRC catches truncates the replay; the
                    // surviving state must still be some prefix (flips
                    // the CRC misses are ~2^-32 and would fail here).
                    prop_assert!(
                        states.iter().any(|want| want == s),
                        "corrupted restore matches no prefix: {s:?}"
                    );
                }
            }

            #[test]
            fn journal_bytes_are_deterministic(
                ops in prop::collection::vec(
                    (0u8..3, 1u32..6, 1u32..32, 1u64..1_000_000), 0..10),
            ) {
                let (a, _) = build(&ops);
                let (b, _) = build(&ops);
                prop_assert_eq!(a.as_bytes(), b.as_bytes());
            }
        }
    }

    mod records {
        use super::*;

        #[test]
        fn record_stream_roundtrips() {
            let mut snap = Snapshot::at(9);
            snap.entries.push(state(1, 4, 9));
            let records = vec![
                Record::Checkpoint(snap),
                Record::Delta {
                    state: state(2, 8, 10),
                    tick: 10,
                },
                Record::Remove(1),
            ];
            let mut stream = Vec::new();
            for r in &records {
                stream.extend_from_slice(&encode_record(r));
            }
            let scan = decode_records(&stream);
            assert_eq!(scan.records, records);
            assert_eq!(scan.truncated, 0);
        }

        #[test]
        fn record_bytes_match_journal_bytes() {
            // The replication stream must be byte-identical to what the
            // journal would append for the same operations.
            let mut j = Journal::new();
            j.append_delta(&state(3, 2, 7), 7);
            j.append_remove(3);
            let mut stream = Vec::new();
            stream.extend_from_slice(&encode_record(&Record::Delta {
                state: state(3, 2, 7),
                tick: 7,
            }));
            stream.extend_from_slice(&encode_record(&Record::Remove(3)));
            assert_eq!(&j.as_bytes()[8..], &stream[..]);
        }

        #[test]
        fn truncated_stream_keeps_prefix() {
            let mut stream = Vec::new();
            stream.extend_from_slice(&encode_record(&Record::Remove(1)));
            stream.extend_from_slice(&encode_record(&Record::Remove(2)));
            let cut = stream.len() - 3;
            let scan = decode_records(&stream[..cut]);
            assert_eq!(scan.records, vec![Record::Remove(1)]);
            assert_eq!(scan.truncated, 1);
        }

        #[test]
        fn corrupt_stream_never_panics() {
            let mut stream = Vec::new();
            stream.extend_from_slice(&encode_record(&Record::Remove(7)));
            for i in 0..stream.len() {
                let mut bad = stream.clone();
                bad[i] ^= 0xFF;
                let _ = decode_records(&bad); // must not panic
            }
            // Absurd length word: bounded allocation, no panic.
            let huge = [0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3];
            assert_eq!(decode_records(&huge).truncated, 1);
        }
    }

    mod lease_rules {
        use super::super::lease::{Lease, LeaseFile, LEASE_BYTES};

        #[test]
        fn grant_renew_takeover() {
            let mut f = LeaseFile::new();
            // Grant: first caller gets epoch 1.
            let l1 = f.try_acquire(10, 0, 5).expect("grant");
            assert_eq!((l1.epoch, l1.holder, l1.expires), (1, 10, 5));
            // Refuse: someone else while unexpired.
            assert_eq!(f.try_acquire(20, 3, 5), None);
            // Renew: same holder keeps the epoch, extends expiry.
            let l2 = f.try_acquire(10, 4, 5).expect("renew");
            assert_eq!((l2.epoch, l2.expires), (1, 9));
            // Takeover: after expiry anyone acquires at epoch + 1.
            let l3 = f.try_acquire(20, 10, 5).expect("takeover");
            assert_eq!((l3.epoch, l3.holder, l3.expires), (2, 20, 15));
        }

        #[test]
        fn expired_holder_retake_bumps_epoch() {
            let mut f = LeaseFile::new();
            f.try_acquire(10, 0, 5).expect("grant");
            // The old holder coming back after expiry is a takeover
            // too: it must not resume its old epoch silently.
            let l = f.try_acquire(10, 6, 5).expect("retake");
            assert_eq!(l.epoch, 2);
        }

        #[test]
        fn corrupt_lease_reads_absent() {
            let mut f = LeaseFile::new();
            f.try_acquire(10, 0, 5).expect("grant");
            let good = f.as_bytes().to_vec();
            assert_eq!(good.len(), LEASE_BYTES);
            assert!(Lease::decode(&good).is_some());
            for i in 0..good.len() {
                let mut bad = good.clone();
                bad[i] ^= 0x10;
                assert_eq!(Lease::decode(&bad), None, "flip at {i} must fail CRC");
            }
            assert_eq!(Lease::decode(&good[..LEASE_BYTES - 1]), None);
            // A corrupt store behaves as never-granted.
            let mut torn = LeaseFile::from_bytes(vec![0xAB; 11]);
            assert_eq!(torn.current(), None);
            let l = torn.try_acquire(30, 0, 5).expect("regrant");
            assert_eq!(l.epoch, 1);
        }

        #[test]
        fn roundtrip_survives_rehydrate() {
            let mut f = LeaseFile::new();
            f.try_acquire(10, 0, 5).expect("grant");
            let f2 = LeaseFile::from_bytes(f.as_bytes().to_vec());
            assert_eq!(f2.current(), f.current());
        }
    }
}
