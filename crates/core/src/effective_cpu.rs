//! Algorithm 1: the calculation of effective CPU.
//!
//! Effective CPU is exported as a *discrete CPU count* whose aggregate
//! capacity equals the CPU time the container can actually use — the paper
//! argues a few dedicated CPUs beat many shared slices for thread-pool
//! sizing, and a count is what `sysconf(_SC_NPROCESSORS_ONLN)` consumers
//! expect anyway.
//!
//! ```text
//! LOWER_CPU_i = min( l_i/t, |M_i|, ceil(w_i/Σw_j · |P|) )
//! UPPER_CPU_i = min( l_i/t, |M_i| )
//! E_CPU_i initialized to LOWER_CPU_i, then per update period:
//!     if pslack > 0:  E++ when u_i/(E·t) > 95% and E < UPPER
//!     else:           E-- until LOWER
//! ```

use arv_cgroups::hierarchy::{CgroupTree, ROOT};
use arv_cgroups::{CgroupId, CpuController, CpuSet};
use arv_sim_core::SimDuration;
use arv_telemetry::{CpuDecision, DecisionCause};

/// Tunables of Algorithm 1; defaults are the paper's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectiveCpuConfig {
    /// `UTIL_THRSHD`: utilization above which effective CPU grows
    /// ("we empirically set UTIL_THRSHD to 95%").
    pub util_threshold: f64,
    /// Largest per-update change in effective CPU ("changes to effective
    /// CPU are limited to 1 per update to prevent abrupt fluctuations").
    pub max_step: u32,
}

impl Default for EffectiveCpuConfig {
    fn default() -> Self {
        EffectiveCpuConfig {
            util_threshold: 0.95,
            max_step: 1,
        }
    }
}

/// The static `[LOWER_CPU, UPPER_CPU]` bounds of Algorithm 1 (lines 4–5).
///
/// Recomputed by `ns_monitor` on container creation/deletion and cgroup
/// changes; constant otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuBounds {
    /// `LOWER_CPU`: the guaranteed CPU count.
    pub lower: u32,
    /// `UPPER_CPU`: the quota/cpuset cap.
    pub upper: u32,
}

impl CpuBounds {
    /// Compute bounds for one container.
    ///
    /// * `cpu` — its cgroup cpu controller (shares `w_i`, quota `l_i`,
    ///   period, cpuset `M_i`);
    /// * `total_shares` — `Σ w_j` over all containers (including this one);
    /// * `online` — the host's online CPU set `P`.
    ///
    /// Fractional quotas are rounded **up** (a 2.5-CPU quota exports 3
    /// CPUs, matching HotSpot's own ceil of `quota/period`), and both
    /// bounds are clamped to at least one CPU — an application cannot size
    /// a thread pool with zero processors.
    pub fn compute(cpu: &CpuController, total_shares: u64, online: CpuSet) -> CpuBounds {
        let mask = cpu.cpuset.intersection(online).count();
        let quota_cpus = cpu.quota_ratio().map_or(f64::INFINITY, |q| q.max(0.0));
        let upper = (quota_cpus.min(mask as f64)).ceil().max(1.0) as u32;

        let total_shares = total_shares.max(cpu.shares);
        let share_cpus = (cpu.shares as f64 / total_shares as f64 * online.count() as f64).ceil();
        let lower = (share_cpus.min(quota_cpus).min(mask as f64))
            .ceil()
            .max(1.0) as u32;
        CpuBounds {
            lower: lower.min(upper),
            upper,
        }
    }

    /// Compute bounds for a container nested in a cgroup tree
    /// (Kubernetes-style). The guaranteed share composes multiplicatively
    /// along the path — at each level, this subtree's shares over the
    /// sibling total — and the upper bound is the tightest quota/cpuset
    /// cap on the path.
    pub fn compute_in_tree(tree: &CgroupTree, id: CgroupId, online: CpuSet) -> CpuBounds {
        let path_cap = tree.path_cpu_cap(id, online);
        let upper = path_cap.min(f64::from(online.count())).ceil().max(1.0) as u32;

        let mut share_fraction = 1.0;
        let mut cur = id;
        while cur != ROOT {
            let Some(parent) = tree.parent(cur) else {
                break;
            };
            let own = tree.cpu(cur).map_or(1024.0, |c| c.shares as f64);
            let sibling_total: f64 = tree
                .children(parent)
                .iter()
                .map(|c| tree.cpu(*c).map_or(1024.0, |x| x.shares as f64))
                .sum();
            share_fraction *= own / sibling_total.max(own);
            cur = parent;
        }
        let share_cpus = (share_fraction * f64::from(online.count())).ceil();
        let lower = share_cpus.min(path_cap).ceil().max(1.0) as u32;
        CpuBounds {
            lower: lower.min(upper),
            upper,
        }
    }

    /// Clamp `e` into `[lower, upper]`.
    pub fn clamp(&self, e: u32) -> u32 {
        e.clamp(self.lower, self.upper)
    }
}

/// One update period's scheduler observation for a container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSample {
    /// CPU time the container consumed this period (`u_i`).
    pub usage: SimDuration,
    /// Length of the update period (`t`).
    pub period: SimDuration,
    /// Idle host CPU time this period (`pslack`); growth requires
    /// `pslack > 0`.
    pub slack: SimDuration,
}

/// The dynamic effective-CPU state machine (Algorithm 1 lines 6–19).
#[derive(Debug, Clone)]
pub struct EffectiveCpu {
    cfg: EffectiveCpuConfig,
    bounds: CpuBounds,
    value: u32,
}

impl EffectiveCpu {
    /// Initialize at the lower bound (line 6).
    pub fn new(bounds: CpuBounds, cfg: EffectiveCpuConfig) -> EffectiveCpu {
        EffectiveCpu {
            cfg,
            bounds,
            value: bounds.lower,
        }
    }

    /// Current effective CPU count (`E_CPU_i`).
    pub fn value(&self) -> u32 {
        self.value
    }

    /// The current static bounds.
    pub fn bounds(&self) -> CpuBounds {
        self.bounds
    }

    /// Install new static bounds (cgroup change / container churn); the
    /// current value is clamped into the new range.
    pub fn set_bounds(&mut self, bounds: CpuBounds) {
        self.bounds = bounds;
        self.value = bounds.clamp(self.value);
    }

    /// Resume at a journaled value (warm restart). The value is clamped
    /// into the **current** bounds — the reconcile rule for recovery —
    /// and the clamped result is returned.
    pub fn restore_value(&mut self, value: u32) -> u32 {
        self.value = self.bounds.clamp(value);
        self.value
    }

    /// One firing of the update timer. Returns the new value.
    pub fn update(&mut self, sample: CpuSample) -> u32 {
        let capacity = sample.period * u64::from(self.value);
        let utilization = sample.usage.ratio(capacity);
        if !sample.slack.is_zero() {
            if utilization > self.cfg.util_threshold && self.value < self.bounds.upper {
                self.value = (self.value + self.cfg.max_step).min(self.bounds.upper);
            }
        } else if self.value > self.bounds.lower {
            self.value = self
                .value
                .saturating_sub(self.cfg.max_step)
                .max(self.bounds.lower);
        }
        self.value
    }

    /// [`update`](EffectiveCpu::update) with decision provenance: when
    /// the step changed the value, returns the full
    /// [`CpuDecision`] — cause, before/after,
    /// and the utilization/slack inputs that drove Algorithm 1's branch.
    /// Returns `None` when the view was left unchanged.
    pub fn update_explained(&mut self, sample: CpuSample) -> Option<CpuDecision> {
        let before = self.value;
        let capacity = sample.period * u64::from(before);
        let utilization = sample.usage.ratio(capacity);
        let had_slack = !sample.slack.is_zero();
        let after = self.update(sample);
        if after == before {
            return None;
        }
        let cause = if after > before {
            DecisionCause::CpuSaturatedWithSlack
        } else {
            DecisionCause::CpuShrinkNoSlack
        };
        Some(CpuDecision {
            cause,
            before,
            after,
            utilization,
            had_slack,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_cgroups::CpuController;

    const T: SimDuration = SimDuration::from_millis(24);

    fn sample(used_cpus: f64, slack_cpus: f64) -> CpuSample {
        CpuSample {
            usage: T.mul_f64(used_cpus),
            period: T,
            slack: T.mul_f64(slack_cpus),
        }
    }

    #[test]
    fn paper_bounds_five_equal_containers() {
        // §2.2: 5 containers, 20 cores, limit 10 cores, equal shares →
        // share term = ceil(1/5 · 20) = 4; upper = min(10, 20) = 10.
        let online = CpuSet::first_n(20);
        let cpu = CpuController::unlimited(20).with_quota_cpus(10.0);
        let b = CpuBounds::compute(&cpu, 1024 * 5, online);
        assert_eq!(
            b,
            CpuBounds {
                lower: 4,
                upper: 10
            }
        );
    }

    #[test]
    fn bounds_with_cpuset_mask() {
        // Fig. 7 setup: cpuset of 2 CPUs; 10 containers with equal shares
        // on 20 cores → lower = min(2, ceil(2)) = 2, upper = 2.
        let online = CpuSet::first_n(20);
        let cpu = CpuController::unlimited(20).with_cpuset(CpuSet::range(0, 2));
        let b = CpuBounds::compute(&cpu, 1024 * 10, online);
        assert_eq!(b, CpuBounds { lower: 2, upper: 2 });
    }

    #[test]
    fn fractional_quota_rounds_up() {
        let online = CpuSet::first_n(8);
        let cpu = CpuController::unlimited(8).with_quota_cpus(2.5);
        let b = CpuBounds::compute(&cpu, 1024, online);
        assert_eq!(b.upper, 3);
    }

    #[test]
    fn bounds_never_below_one() {
        let online = CpuSet::first_n(8);
        let cpu = CpuController::unlimited(8).with_quota_cpus(0.25);
        let b = CpuBounds::compute(&cpu, 1024 * 100, online);
        assert_eq!(b, CpuBounds { lower: 1, upper: 1 });
    }

    #[test]
    fn no_quota_upper_is_mask() {
        let online = CpuSet::first_n(20);
        let cpu = CpuController::unlimited(20);
        let b = CpuBounds::compute(&cpu, 1024 * 2, online);
        assert_eq!(b.upper, 20);
        assert_eq!(b.lower, 10);
    }

    #[test]
    fn total_shares_defends_against_zero() {
        let online = CpuSet::first_n(4);
        let cpu = CpuController::unlimited(4);
        // total_shares below own shares (stale snapshot) is corrected.
        let b = CpuBounds::compute(&cpu, 0, online);
        assert_eq!(b.lower, 4);
    }

    #[test]
    fn grows_one_per_period_under_slack_and_load() {
        let bounds = CpuBounds {
            lower: 4,
            upper: 10,
        };
        let mut e = EffectiveCpu::new(bounds, EffectiveCpuConfig::default());
        assert_eq!(e.value(), 4);
        // Saturated (util 100%) with host slack: climb 4 → 10, one per tick.
        for expect in [5, 6, 7, 8, 9, 10, 10] {
            let v = e.update(sample(e.value() as f64, 2.0));
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn no_growth_below_threshold() {
        let bounds = CpuBounds {
            lower: 4,
            upper: 10,
        };
        let mut e = EffectiveCpu::new(bounds, EffectiveCpuConfig::default());
        // Using 3.7 of 4 CPUs = 92.5% < 95%: stays put.
        assert_eq!(e.update(sample(3.7, 5.0)), 4);
    }

    #[test]
    fn shrinks_without_slack() {
        let bounds = CpuBounds {
            lower: 4,
            upper: 10,
        };
        let mut e = EffectiveCpu::new(bounds, EffectiveCpuConfig::default());
        for _ in 0..6 {
            e.update(sample(e.value() as f64, 1.0));
        }
        assert_eq!(e.value(), 10);
        // Host saturated: decay one per period back to the lower bound.
        for expect in [9, 8, 7, 6, 5, 4, 4] {
            assert_eq!(e.update(sample(e.value() as f64, 0.0)), expect);
        }
    }

    #[test]
    fn idle_container_does_not_grow() {
        let bounds = CpuBounds { lower: 2, upper: 8 };
        let mut e = EffectiveCpu::new(bounds, EffectiveCpuConfig::default());
        for _ in 0..10 {
            assert_eq!(e.update(sample(0.1, 6.0)), 2);
        }
    }

    #[test]
    fn set_bounds_clamps_current_value() {
        let mut e = EffectiveCpu::new(
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
        );
        for _ in 0..6 {
            e.update(sample(e.value() as f64, 1.0));
        }
        assert_eq!(e.value(), 10);
        e.set_bounds(CpuBounds { lower: 2, upper: 6 });
        assert_eq!(e.value(), 6);
        e.set_bounds(CpuBounds { lower: 7, upper: 9 });
        assert_eq!(e.value(), 7);
    }

    #[test]
    fn custom_threshold_is_honoured() {
        let cfg = EffectiveCpuConfig {
            util_threshold: 0.5,
            max_step: 1,
        };
        let mut e = EffectiveCpu::new(CpuBounds { lower: 1, upper: 4 }, cfg);
        assert_eq!(e.update(sample(0.6, 3.0)), 2);
    }

    #[test]
    fn larger_step_converges_faster_but_respects_bounds() {
        let cfg = EffectiveCpuConfig {
            util_threshold: 0.95,
            max_step: 4,
        };
        let mut e = EffectiveCpu::new(CpuBounds { lower: 2, upper: 7 }, cfg);
        assert_eq!(e.update(sample(2.0, 1.0)), 6);
        assert_eq!(e.update(sample(6.0, 1.0)), 7);
        assert_eq!(e.update(sample(7.0, 0.0)), 3);
        assert_eq!(e.update(sample(3.0, 0.0)), 2);
    }
}

#[cfg(test)]
mod tree_bounds_tests {
    use super::*;
    use arv_cgroups::{CgroupSpec, MemController};

    fn spec(shares: u64, quota: Option<f64>) -> CgroupSpec {
        let mut cpu = CpuController::unlimited(20).with_shares(shares);
        if let Some(q) = quota {
            cpu = cpu.with_quota_cpus(q);
        }
        CgroupSpec::new(cpu, MemController::unlimited())
    }

    #[test]
    fn nested_shares_compose_multiplicatively() {
        // root → kubepods(8192), system(1024 ignored here as sibling);
        // kubepods → podA(2048), podB(1024); podA → c1(1024), c2(1024).
        let mut t = CgroupTree::new();
        let kubepods = t.create(ROOT, spec(8192, None));
        let _system = t.create(ROOT, spec(1024, None));
        let pod_a = t.create(kubepods, spec(2048, None));
        let _pod_b = t.create(kubepods, spec(1024, None));
        let c1 = t.create(pod_a, spec(1024, None));
        let _c2 = t.create(pod_a, spec(1024, None));
        let online = CpuSet::first_n(20);
        let b = CpuBounds::compute_in_tree(&t, c1, online);
        // fraction = 1/2 (within podA) × 2/3 (podA of kubepods) ×
        // 8/9 (kubepods of root) = 8/27 → ceil(20 × 8/27) = 6.
        assert_eq!(b.lower, 6);
        assert_eq!(b.upper, 20);
    }

    #[test]
    fn nested_quota_bounds_the_upper() {
        let mut t = CgroupTree::new();
        let slice = t.create(ROOT, spec(1024, Some(4.0)));
        let c = t.create(slice, spec(1024, None));
        let b = CpuBounds::compute_in_tree(&t, c, CpuSet::first_n(20));
        assert_eq!(b.upper, 4);
        assert!(b.lower <= 4);
    }

    #[test]
    fn single_level_matches_flat_computation() {
        let mut t = CgroupTree::new();
        let ids: Vec<_> = (0..5)
            .map(|_| t.create(ROOT, spec(1024, Some(10.0))))
            .collect();
        let online = CpuSet::first_n(20);
        let tree_b = CpuBounds::compute_in_tree(&t, ids[0], online);
        let flat_b = CpuBounds::compute(
            &CpuController::unlimited(20).with_quota_cpus(10.0),
            5 * 1024,
            online,
        );
        assert_eq!(tree_b, flat_b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const T: SimDuration = SimDuration::from_millis(24);

    proptest! {
        /// E_CPU always stays within bounds and moves at most one step per
        /// update, for arbitrary usage/slack traces.
        #[test]
        fn value_always_within_bounds(
            lower in 1u32..8,
            extra in 0u32..12,
            trace in prop::collection::vec((0.0f64..32.0, 0.0f64..8.0), 1..128),
        ) {
            let bounds = CpuBounds { lower, upper: lower + extra };
            let mut e = EffectiveCpu::new(bounds, EffectiveCpuConfig::default());
            let mut prev = e.value();
            for (used, slack) in trace {
                let v = e.update(CpuSample {
                    usage: T.mul_f64(used),
                    period: T,
                    slack: T.mul_f64(slack),
                });
                prop_assert!(v >= bounds.lower && v <= bounds.upper);
                prop_assert!(v.abs_diff(prev) <= 1);
                prev = v;
            }
        }

        /// Bounds are consistent (lower ≤ upper, both ≥ 1) for any inputs.
        #[test]
        fn bounds_are_consistent(
            shares in 2u64..10_000,
            total in 2u64..100_000,
            online in 1u32..64,
            quota in prop::option::of(0.1f64..64.0),
            mask_n in 1u32..64,
        ) {
            let online_set = CpuSet::first_n(online);
            let mut cpu = CpuController::unlimited(online.min(mask_n).max(1))
                .with_shares(shares)
                .with_cpuset(CpuSet::first_n(mask_n));
            if let Some(q) = quota {
                cpu = cpu.with_quota_cpus(q);
            }
            let b = CpuBounds::compute(&cpu, total, online_set);
            prop_assert!(b.lower >= 1);
            prop_assert!(b.lower <= b.upper);
        }
    }
}

/// A fractional variant of the effective-CPU state machine, for the
/// integer-vs-fractional ablation DESIGN.md calls out.
///
/// The paper deliberately exports a *discrete CPU count* ("it is more
/// efficient to execute threads on a few stronger, dedicated CPUs …
/// compatible with applications that probe system resources based on CPU
/// count", §3.1). This variant keeps the same feedback loop but moves in
/// sub-CPU steps and can report the un-rounded capacity, quantifying what
/// the discretization costs in tracking accuracy.
#[derive(Debug, Clone)]
pub struct FractionalEffectiveCpu {
    cfg: EffectiveCpuConfig,
    bounds: CpuBounds,
    /// Sub-CPU adjustment step (e.g. 0.25 CPUs per update).
    step: f64,
    value: f64,
}

impl FractionalEffectiveCpu {
    /// Initialize at the lower bound with the given sub-CPU step.
    pub fn new(bounds: CpuBounds, cfg: EffectiveCpuConfig, step: f64) -> FractionalEffectiveCpu {
        assert!(step > 0.0 && step <= 1.0, "step must be in (0, 1]");
        FractionalEffectiveCpu {
            cfg,
            bounds,
            step,
            value: f64::from(bounds.lower),
        }
    }

    /// Un-rounded effective capacity in CPUs.
    pub fn capacity(&self) -> f64 {
        self.value
    }

    /// The discrete count an application would be shown (nearest whole
    /// CPU, clamped to the bounds).
    pub fn count(&self) -> u32 {
        (self.value.round() as u32).clamp(self.bounds.lower, self.bounds.upper)
    }

    /// One firing of the update timer; same decision structure as
    /// Algorithm 1, with `step`-sized moves.
    pub fn update(&mut self, sample: CpuSample) -> f64 {
        let capacity = sample.period.mul_f64(self.value.max(self.step));
        let utilization = sample.usage.ratio(capacity);
        if !sample.slack.is_zero() {
            if utilization > self.cfg.util_threshold && self.value < f64::from(self.bounds.upper) {
                self.value = (self.value + self.step).min(f64::from(self.bounds.upper));
            }
        } else if self.value > f64::from(self.bounds.lower) {
            self.value = (self.value - self.step).max(f64::from(self.bounds.lower));
        }
        self.value
    }
}

#[cfg(test)]
mod fractional_tests {
    use super::*;

    const T: SimDuration = SimDuration::from_millis(24);

    fn sample(used_cpus: f64, slack_cpus: f64) -> CpuSample {
        CpuSample {
            usage: T.mul_f64(used_cpus),
            period: T,
            slack: T.mul_f64(slack_cpus),
        }
    }

    #[test]
    fn fractional_tracks_sub_cpu_allocations() {
        let mut e = FractionalEffectiveCpu::new(
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            0.25,
        );
        // Saturated at 6.7 CPUs of usage with slack: converges near 6.7
        // rather than snapping to 7.
        for _ in 0..64 {
            e.update(sample(6.7, 2.0));
        }
        assert!(
            (e.capacity() - 7.0).abs() < 0.31,
            "capacity {}",
            e.capacity()
        );
        assert_eq!(e.count(), 7);
    }

    #[test]
    fn fractional_respects_bounds() {
        let mut e = FractionalEffectiveCpu::new(
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            0.5,
        );
        for _ in 0..100 {
            e.update(sample(20.0, 5.0));
        }
        assert_eq!(e.capacity(), 10.0);
        for _ in 0..100 {
            e.update(sample(10.0, 0.0));
        }
        assert_eq!(e.capacity(), 4.0);
        assert_eq!(e.count(), 4);
    }

    #[test]
    fn step_of_one_matches_the_integer_machine() {
        let bounds = CpuBounds {
            lower: 4,
            upper: 10,
        };
        let mut frac = FractionalEffectiveCpu::new(bounds, EffectiveCpuConfig::default(), 1.0);
        let mut int = EffectiveCpu::new(bounds, EffectiveCpuConfig::default());
        for (used, slack) in [(10.0, 1.0); 8].iter().chain([(10.0, 0.0); 8].iter()) {
            frac.update(sample(*used, *slack));
            int.update(sample(*used, *slack));
            assert_eq!(frac.capacity() as u32, int.value());
        }
    }

    #[test]
    #[should_panic]
    fn zero_step_rejected() {
        FractionalEffectiveCpu::new(
            CpuBounds { lower: 1, upper: 2 },
            EffectiveCpuConfig::default(),
            0.0,
        );
    }
}
