//! Monitor watchdog: detects a wedged or lossy update pipeline.
//!
//! Two failure classes threaten the view pipeline. The update timer can
//! stop firing work (a stalled monitor), leaving every view to age; and
//! cgroup events can be lost — dropped in transit, or coalesced away by
//! a full [`EventPipe`](arv_cgroups::EventPipe) — leaving the monitor's
//! namespace set out of sync with the real hierarchy. The [`Watchdog`]
//! watches both signals: missed `tick_window` deadlines, and
//! sequence-number gaps / overflow drops reported by
//! [`NsMonitor::ingest`](crate::monitor::NsMonitor::ingest). Either one
//! produces a [`Verdict::Resync`], telling the driver to run
//! [`NsMonitor::resync`](crate::monitor::NsMonitor::resync) — the full
//! reconcile pass — instead of trusting the incremental stream.

use arv_telemetry::{PipelineEvent, Tracer};

use crate::monitor::IngestReport;

/// Watchdog tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Consecutive missed update deadlines tolerated before a resync is
    /// demanded once the monitor recovers.
    pub max_missed_ticks: u64,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            max_missed_ticks: 2,
        }
    }
}

/// What the pipeline should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Incremental delivery is intact; carry on.
    Healthy,
    /// Loss or a stall was detected; run a full reconcile.
    Resync,
}

/// Counters describing everything the watchdog has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Update deadlines the monitor missed.
    pub missed_ticks: u64,
    /// Sequence gaps observed in the event stream.
    pub gaps_detected: u64,
    /// Duplicate events observed (and ignored by the monitor).
    pub duplicates: u64,
    /// Events lost to pipe overflow.
    pub overflow_drops: u64,
    /// Full reconcile passes demanded.
    pub resyncs: u64,
}

/// Tracks pipeline liveness and event-stream integrity.
#[derive(Debug, Default)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    stats: WatchdogStats,
    missed_streak: u64,
    pending_resync: bool,
    ticks_observed: u64,
    tracer: Tracer,
}

impl Watchdog {
    /// A watchdog with `cfg`.
    pub fn new(cfg: WatchdogConfig) -> Watchdog {
        Watchdog {
            cfg,
            ..Watchdog::default()
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> WatchdogStats {
        self.stats
    }

    /// Install a [`Tracer`]; pipeline-health findings (stalls, event
    /// loss, resyncs) are recorded into the shared trace ring.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The monitor completed its periodic update on time.
    pub fn note_deadline_met(&mut self) {
        self.ticks_observed += 1;
        self.missed_streak = 0;
    }

    /// The update timer fired but the monitor did no work (stall).
    ///
    /// A stalled monitor cannot resync *now*; once the streak passes the
    /// budget a resync is latched and reported by
    /// [`take_pending_resync`](Watchdog::take_pending_resync) when the
    /// monitor comes back.
    pub fn note_missed_deadline(&mut self) {
        self.ticks_observed += 1;
        self.stats.missed_ticks += 1;
        self.missed_streak += 1;
        if self.missed_streak > self.cfg.max_missed_ticks {
            if !self.pending_resync {
                self.tracer
                    .emit_pipeline(self.ticks_observed, None, PipelineEvent::StallDetected);
            }
            self.pending_resync = true;
        }
    }

    /// Judge one ingest round: `report` from
    /// [`NsMonitor::ingest`](crate::monitor::NsMonitor::ingest) plus the
    /// pipe's overflow-drop count for the same round.
    pub fn after_ingest(&mut self, report: &IngestReport, overflow_dropped: u64) -> Verdict {
        self.stats.duplicates += report.duplicates;
        self.stats.overflow_drops += overflow_dropped;
        if report.gap {
            self.stats.gaps_detected += 1;
        }
        if report.gap || overflow_dropped > 0 {
            if overflow_dropped > 0 {
                // The monitor traces sequence gaps itself; overflow
                // drops are only visible here.
                self.tracer
                    .emit_pipeline(self.ticks_observed, None, PipelineEvent::GapDetected);
            }
            self.pending_resync = true;
            Verdict::Resync
        } else {
            Verdict::Healthy
        }
    }

    /// Whether a resync is owed, consuming the latch. The caller must
    /// follow a `true` with [`note_resynced`](Watchdog::note_resynced).
    pub fn take_pending_resync(&mut self) -> bool {
        std::mem::take(&mut self.pending_resync)
    }

    /// A full reconcile pass ran.
    pub fn note_resynced(&mut self) {
        self.stats.resyncs += 1;
        self.missed_streak = 0;
        self.pending_resync = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(gap: bool, duplicates: u64) -> IngestReport {
        IngestReport {
            applied: 0,
            duplicates,
            gap,
        }
    }

    #[test]
    fn clean_ingest_is_healthy() {
        let mut w = Watchdog::default();
        assert_eq!(w.after_ingest(&report(false, 0), 0), Verdict::Healthy);
        assert!(!w.take_pending_resync());
        assert_eq!(w.stats(), WatchdogStats::default());
    }

    #[test]
    fn gap_or_overflow_demand_resync() {
        let mut w = Watchdog::default();
        assert_eq!(w.after_ingest(&report(true, 0), 0), Verdict::Resync);
        assert!(w.take_pending_resync());
        w.note_resynced();
        assert_eq!(w.after_ingest(&report(false, 0), 3), Verdict::Resync);
        w.note_resynced();
        let s = w.stats();
        assert_eq!(s.gaps_detected, 1);
        assert_eq!(s.overflow_drops, 3);
        assert_eq!(s.resyncs, 2);
    }

    #[test]
    fn duplicates_alone_do_not_resync() {
        // The monitor skips duplicates idempotently; no reconcile needed.
        let mut w = Watchdog::default();
        assert_eq!(w.after_ingest(&report(false, 4), 0), Verdict::Healthy);
        assert_eq!(w.stats().duplicates, 4);
    }

    #[test]
    fn stall_latches_resync_after_budget() {
        let mut w = Watchdog::new(WatchdogConfig {
            max_missed_ticks: 2,
        });
        w.note_missed_deadline();
        w.note_missed_deadline();
        assert!(!w.take_pending_resync(), "within budget");
        w.note_missed_deadline();
        assert!(w.take_pending_resync(), "past budget");
        // Taking the latch consumes it.
        assert!(!w.take_pending_resync());
        w.note_resynced();
        assert_eq!(w.stats().missed_ticks, 3);
        assert_eq!(w.stats().resyncs, 1);
    }

    #[test]
    fn meeting_a_deadline_resets_the_streak() {
        let mut w = Watchdog::new(WatchdogConfig {
            max_missed_ticks: 2,
        });
        w.note_missed_deadline();
        w.note_missed_deadline();
        w.note_deadline_met();
        w.note_missed_deadline();
        w.note_missed_deadline();
        assert!(!w.take_pending_resync(), "streak was broken");
        assert_eq!(w.stats().missed_ticks, 4);
    }
}
