//! Adaptive resource views for containers — the paper's core contribution.
//!
//! A container can *see* every CPU and byte of the host but *use* only the
//! slice its cgroup grants it, and — because Linux is work-conserving —
//! that slice changes from moment to moment with what its neighbours do.
//! This crate computes the **effective capacity** that closes the gap:
//!
//! * [`effective_cpu`] — Algorithm 1: static bounds from shares, quota and
//!   cpuset, plus a ±1-CPU-per-period feedback loop driven by the
//!   container's utilization and host slack;
//! * [`effective_mem`] — Algorithm 2: soft-limit-anchored growth toward
//!   the hard limit, gated on a free-memory prediction against the kswapd
//!   `high` watermark, reset on reclaim;
//! * [`namespace`] — the per-container `sys_namespace` holding both;
//! * [`monitor`] — `ns_monitor`: reacts to cgroup events (static bounds)
//!   and the periodic update timer (dynamic values);
//! * [`sysfs`] — the virtual sysfs / `sysconf` front-end that answers
//!   resource queries from inside a container with effective values and
//!   from the host with physical ones;
//! * [`live`] — a real multithreaded registry (atomic cells + a monitor
//!   thread) reproducing the concurrency structure the paper measures in
//!   §5.4 (1 µs updates, lock-free queries).
//!
//! # Example: Algorithm 1 end to end
//!
//! ```
//! use arv_cgroups::{CpuController, CpuSet};
//! use arv_resview::{CpuBounds, CpuSample, EffectiveCpu, EffectiveCpuConfig};
//! use arv_sim_core::SimDuration;
//!
//! // The paper's running example: 5 equal-share containers on 20 cores,
//! // each limited to 10 CPUs.
//! let online = CpuSet::first_n(20);
//! let cpu = CpuController::unlimited(20).with_quota_cpus(10.0);
//! let bounds = CpuBounds::compute(&cpu, 5 * 1024, online);
//! assert_eq!((bounds.lower, bounds.upper), (4, 10));
//!
//! // Saturated container, idle neighbours: the view expands one CPU per
//! // update period toward the quota.
//! let mut view = EffectiveCpu::new(bounds, EffectiveCpuConfig::default());
//! let t = SimDuration::from_millis(24);
//! for _ in 0..10 {
//!     view.update(CpuSample { usage: t * 10, period: t, slack: t * 4 });
//! }
//! assert_eq!(view.value(), 10);
//! ```

#![warn(missing_docs)]

pub mod effective_cpu;
pub mod effective_mem;
pub mod health;
pub mod live;
pub mod monitor;
pub mod namespace;
pub mod render;
pub mod sysfs;
pub mod watchdog;

pub use effective_cpu::{
    CpuBounds, CpuSample, EffectiveCpu, EffectiveCpuConfig, FractionalEffectiveCpu,
};
pub use effective_mem::{EffectiveMemory, EffectiveMemoryConfig, MemSample};
pub use health::{Durability, StalenessPolicy, ViewHealth};
pub use live::{
    CgroupChange, HostSampler, LiveMonitor, LiveRegistry, LiveSample, NsCell, ViewSnapshot,
};
pub use monitor::{IngestReport, NsMonitor, RecoverOutcome};
pub use namespace::SysNamespace;
pub use sysfs::{HostView, Sysconf, VirtualSysfs, PAGE_SIZE};
pub use watchdog::{Verdict, Watchdog, WatchdogConfig, WatchdogStats};
