//! The per-container `sys_namespace`.
//!
//! One `sys_namespace` exists per container and holds the two dynamic
//! views — effective CPU and effective memory — together with the
//! ownership bookkeeping the paper describes in §3.2: the namespace is
//! created for the container's original init process, and when that
//! process `exec`s into the user command and dies, ownership is
//! transferred to the new init so the kernel-side updater can keep
//! reaching the namespace for the container's whole lifetime.

use arv_cgroups::{Bytes, CgroupId};
use arv_telemetry::{CpuDecision, MemDecision};

use crate::effective_cpu::{CpuBounds, CpuSample, EffectiveCpu, EffectiveCpuConfig};
use crate::effective_mem::{EffectiveMemory, MemSample};

/// A process id inside the simulated host (only used for the namespace
/// ownership-transfer semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pid(pub u32);

/// Per-container view of effective resources.
#[derive(Debug, Clone)]
pub struct SysNamespace {
    id: CgroupId,
    owner: Pid,
    e_cpu: EffectiveCpu,
    e_mem: EffectiveMemory,
    last_tick: u64,
}

impl SysNamespace {
    /// An empty report for figure `id`.
    pub fn new(
        id: CgroupId,
        owner: Pid,
        cpu_bounds: CpuBounds,
        cpu_cfg: EffectiveCpuConfig,
        e_mem: EffectiveMemory,
    ) -> SysNamespace {
        SysNamespace {
            id,
            owner,
            e_cpu: EffectiveCpu::new(cpu_bounds, cpu_cfg),
            e_mem,
            last_tick: 0,
        }
    }

    /// The container (cgroup) this belongs to.
    pub fn id(&self) -> CgroupId {
        self.id
    }

    /// Current owner process (the container's init).
    pub fn owner(&self) -> Pid {
        self.owner
    }

    /// §3.2 ownership transfer: when the original init `exec`s and its
    /// task state goes to `TASK_DEAD`, the namespace is re-owned by the
    /// new init so it stays reachable from outside the container.
    pub fn transfer_ownership(&mut self, new_owner: Pid) {
        self.owner = new_owner;
    }

    /// Current effective CPU count.
    pub fn effective_cpu(&self) -> u32 {
        self.e_cpu.value()
    }

    /// Current effective memory.
    pub fn effective_memory(&self) -> Bytes {
        self.e_mem.value()
    }

    /// Memory still unused inside the view: effective memory minus the
    /// last observed usage, clamped at zero (usage can overshoot the view
    /// transiently when the view just shrank). Before the first update
    /// period fires the whole view counts as available.
    pub fn available_memory(&self) -> Bytes {
        let used = self.e_mem.last_usage().unwrap_or(Bytes(0));
        self.e_mem.value().saturating_sub(used)
    }

    /// The static CPU bounds.
    pub fn cpu_bounds(&self) -> CpuBounds {
        self.e_cpu.bounds()
    }

    /// The soft memory limit (Algorithm 2's safe-reset anchor).
    pub fn soft_limit(&self) -> Bytes {
        self.e_mem.soft_limit()
    }

    /// The hard memory limit.
    pub fn hard_limit(&self) -> Bytes {
        self.e_mem.hard_limit()
    }

    /// Last observed memory usage (zero before the first update).
    pub fn last_usage(&self) -> Bytes {
        self.e_mem.last_usage().unwrap_or(Bytes(0))
    }

    /// Update-timer tick this namespace's views were last refreshed at.
    pub fn last_tick(&self) -> u64 {
        self.last_tick
    }

    /// Record the tick a refresh happened at (set by `ns_monitor`).
    pub fn stamp(&mut self, tick: u64) {
        self.last_tick = tick;
    }

    /// Static-bound refresh from `ns_monitor` (cgroup events).
    pub fn set_cpu_bounds(&mut self, bounds: CpuBounds) {
        self.e_cpu.set_bounds(bounds);
    }

    /// Limit refresh from `ns_monitor` (cgroup events).
    pub fn set_mem_limits(&mut self, soft: Bytes, hard: Bytes) {
        self.e_mem.set_limits(soft, hard);
    }

    /// Resume both views at journaled values (warm restart), clamped to
    /// the current static bounds and limits. Returns the reconciled
    /// `(effective_cpu, effective_memory)` actually installed.
    pub fn restore_views(&mut self, e_cpu: u32, e_mem: Bytes) -> (u32, Bytes) {
        (
            self.e_cpu.restore_value(e_cpu),
            self.e_mem.restore_value(e_mem),
        )
    }

    /// Periodic update-timer firing.
    pub fn update(&mut self, cpu: CpuSample, mem: MemSample) {
        self.e_cpu.update(cpu);
        self.e_mem.update(mem);
    }

    /// Update only the CPU view (used when memory sampling is decimated,
    /// since "the change of memory usage is less frequent than that of CPU
    /// allocation", §3.2).
    pub fn update_cpu(&mut self, cpu: CpuSample) {
        self.e_cpu.update(cpu);
    }

    /// Update only the memory view.
    pub fn update_mem(&mut self, mem: MemSample) {
        self.e_mem.update(mem);
    }

    /// [`update`](SysNamespace::update) with decision provenance:
    /// returns what moved (and why) for each resource, `None` per
    /// resource when its view was left unchanged.
    pub fn update_explained(
        &mut self,
        cpu: CpuSample,
        mem: MemSample,
    ) -> (Option<CpuDecision>, Option<MemDecision>) {
        (
            self.e_cpu.update_explained(cpu),
            self.e_mem.update_explained(mem),
        )
    }

    /// [`update_cpu`](SysNamespace::update_cpu) with decision
    /// provenance.
    pub fn update_cpu_explained(&mut self, cpu: CpuSample) -> Option<CpuDecision> {
        self.e_cpu.update_explained(cpu)
    }

    /// [`update_mem`](SysNamespace::update_mem) with decision
    /// provenance.
    pub fn update_mem_explained(&mut self, mem: MemSample) -> Option<MemDecision> {
        self.e_mem.update_explained(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effective_mem::EffectiveMemoryConfig;
    use arv_sim_core::SimDuration;

    const T: SimDuration = SimDuration::from_millis(24);

    fn ns() -> SysNamespace {
        SysNamespace::new(
            CgroupId(1),
            Pid(100),
            CpuBounds { lower: 2, upper: 8 },
            EffectiveCpuConfig::default(),
            EffectiveMemory::new(
                Bytes::from_mib(500),
                Bytes::from_gib(1),
                Bytes::from_mib(64),
                Bytes::from_mib(128),
                EffectiveMemoryConfig::default(),
            ),
        )
    }

    #[test]
    fn initial_views_are_lower_bound_and_soft_limit() {
        let n = ns();
        assert_eq!(n.effective_cpu(), 2);
        assert_eq!(n.effective_memory(), Bytes::from_mib(500));
    }

    #[test]
    fn ownership_transfer() {
        let mut n = ns();
        assert_eq!(n.owner(), Pid(100));
        n.transfer_ownership(Pid(200));
        assert_eq!(n.owner(), Pid(200));
        assert_eq!(n.id(), CgroupId(1));
    }

    #[test]
    fn update_moves_both_views() {
        let mut n = ns();
        n.update(
            CpuSample {
                usage: T * 2,
                period: T,
                slack: T,
            },
            MemSample {
                free: Bytes::from_gib(64),
                usage: Bytes::from_mib(480),
                reclaiming: false,
            },
        );
        assert_eq!(n.effective_cpu(), 3);
        assert!(n.effective_memory() > Bytes::from_mib(500));
    }

    #[test]
    fn cpu_only_update_leaves_memory_untouched() {
        let mut n = ns();
        n.update_cpu(CpuSample {
            usage: T * 2,
            period: T,
            slack: T,
        });
        assert_eq!(n.effective_cpu(), 3);
        assert_eq!(n.effective_memory(), Bytes::from_mib(500));
    }

    #[test]
    fn bound_and_limit_refresh() {
        let mut n = ns();
        n.set_cpu_bounds(CpuBounds { lower: 4, upper: 6 });
        assert_eq!(n.effective_cpu(), 4);
        n.set_mem_limits(Bytes::from_mib(200), Bytes::from_mib(400));
        assert_eq!(n.effective_memory(), Bytes::from_mib(200));
    }
}
