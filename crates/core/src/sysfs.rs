//! The virtual sysfs: the user-space-facing query interface.
//!
//! Applications don't read `sys_namespace` directly — they call
//! `sysconf(3)` or read `sysfs`/`procfs` files, and glibc translates.
//! The paper intercepts those queries: a process linked to a container's
//! namespaces gets answers from its `sys_namespace`; an ordinary host
//! process (in the init namespaces) keeps seeing physical totals. This
//! module reproduces both entry points: the [`Sysconf`] parameter API and
//! a path-based read of the files runtimes actually open.

use arv_cgroups::{Bytes, CgroupId};

use crate::monitor::NsMonitor;

/// `_SC_PAGESIZE`: 4 KiB pages, as on the paper's x86-64 testbed.
pub const PAGE_SIZE: u64 = 4096;

/// The `sysconf` queries resource-probing runtimes issue (§2.2: "sysconf
/// queries sysfs or procfs in order to determine the number of online
/// CPUs. Memory size is calculated based on `_SC_PHYS_PAGES *
/// _SC_PAGESIZE`").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sysconf {
    /// `_SC_NPROCESSORS_ONLN`.
    NprocessorsOnln,
    /// `_SC_NPROCESSORS_CONF`.
    NprocessorsConf,
    /// `_SC_PHYS_PAGES`.
    PhysPages,
    /// `_SC_AVPHYS_PAGES`.
    AvphysPages,
    /// `_SC_PAGESIZE`.
    PageSize,
}

/// The host's physical view, answered to processes outside any container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostView {
    /// Online CPUs on the host.
    pub online_cpus: u32,
    /// Physical memory size.
    pub total_memory: Bytes,
    /// Free physical memory.
    pub free_memory: Bytes,
}

/// The virtual sysfs front-end.
///
/// Holds the host view plus a reference to the monitor's namespaces; a
/// query carries the caller's container identity (or `None` for a host
/// process), mirroring the kernel-side test of whether the calling task
/// is linked to non-init namespaces.
#[derive(Debug)]
pub struct VirtualSysfs<'m> {
    monitor: &'m NsMonitor,
    host: HostView,
}

impl<'m> VirtualSysfs<'m> {
    /// A front-end over `monitor` answering with `host` for host processes.
    pub fn new(monitor: &'m NsMonitor, host: HostView) -> VirtualSysfs<'m> {
        VirtualSysfs { monitor, host }
    }

    /// Answer a `sysconf` query for `caller`.
    ///
    /// A caller with a `sys_namespace` receives effective values; host
    /// processes — and containers for which no namespace exists, exactly
    /// the pre-paper failure mode — receive physical totals.
    pub fn sysconf(&self, caller: Option<CgroupId>, query: Sysconf) -> u64 {
        let ns = caller.and_then(|id| self.monitor.namespace(id));
        match (query, ns) {
            (Sysconf::PageSize, _) => PAGE_SIZE,
            (Sysconf::NprocessorsOnln, Some(ns)) | (Sysconf::NprocessorsConf, Some(ns)) => {
                u64::from(ns.effective_cpu())
            }
            (Sysconf::NprocessorsOnln, None) | (Sysconf::NprocessorsConf, None) => {
                u64::from(self.host.online_cpus)
            }
            (Sysconf::PhysPages, Some(ns)) => ns.effective_memory().as_u64() / PAGE_SIZE,
            (Sysconf::PhysPages, None) => self.host.total_memory.as_u64() / PAGE_SIZE,
            // Available memory inside the view: the view itself is the
            // budget the container may safely treat as "available".
            (Sysconf::AvphysPages, Some(ns)) => ns.effective_memory().as_u64() / PAGE_SIZE,
            (Sysconf::AvphysPages, None) => self.host.free_memory.as_u64() / PAGE_SIZE,
        }
    }

    /// Total memory as seen by `caller`, in bytes
    /// (`_SC_PHYS_PAGES * _SC_PAGESIZE`).
    pub fn memory_bytes(&self, caller: Option<CgroupId>) -> Bytes {
        Bytes(self.sysconf(caller, Sysconf::PhysPages) * PAGE_SIZE)
    }

    /// Online CPU count as seen by `caller`.
    pub fn online_cpus(&self, caller: Option<CgroupId>) -> u32 {
        self.sysconf(caller, Sysconf::NprocessorsOnln) as u32
    }

    /// Read a virtual file. Supported paths are the ones resource probing
    /// actually touches; unknown paths return `None` (ENOENT).
    pub fn read(&self, caller: Option<CgroupId>, path: &str) -> Option<String> {
        match path {
            "/sys/devices/system/cpu/online" => {
                Some(cpu_list(self.online_cpus(caller)))
            }
            "/sys/devices/system/cpu/possible" | "/sys/devices/system/cpu/present" => {
                // Possible/present CPUs are a hardware property; the view
                // virtualizes *online*, as CPU hotplug does.
                Some(cpu_list(self.host.online_cpus))
            }
            "/proc/cpuinfo" => {
                // One `processor : N` stanza per visible CPU — the file
                // `std::thread::available_parallelism` and many runtimes
                // fall back to parsing.
                let n = self.online_cpus(caller);
                let mut out = String::new();
                for cpu in 0..n {
                    out.push_str(&format!(
                        "processor\t: {cpu}\nmodel name\t: simulated\n\n"
                    ));
                }
                Some(out)
            }
            "/proc/stat" => {
                // Aggregate line plus one `cpuN` line per visible CPU
                // (LXCFS virtualizes exactly this file).
                let n = self.online_cpus(caller);
                let mut out = String::from("cpu  0 0 0 0 0 0 0 0 0 0\n");
                for cpu in 0..n {
                    out.push_str(&format!("cpu{cpu} 0 0 0 0 0 0 0 0 0 0\n"));
                }
                Some(out)
            }
            "/proc/meminfo" => {
                let total = self.memory_bytes(caller);
                let free = match caller.and_then(|id| self.monitor.namespace(id)) {
                    Some(_) => total,
                    None => self.host.free_memory,
                };
                Some(format!(
                    "MemTotal: {} kB\nMemFree: {} kB\n",
                    total.as_u64() / 1024,
                    free.as_u64() / 1024
                ))
            }
            _ => None,
        }
    }
}

/// Kernel cpu-list syntax for CPUs `0..n`: `"0-3"`, or `"0"` for one CPU.
fn cpu_list(n: u32) -> String {
    if n <= 1 {
        "0".to_string()
    } else {
        format!("0-{}", n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_cgroups::{CgroupManager, CgroupSpec, CpuController, MemController};
    use arv_mem::Watermarks;

    fn setup() -> (NsMonitor, CgroupId) {
        let mut cgm = CgroupManager::new();
        let id = cgm.create(CgroupSpec::new(
            CpuController::unlimited(20).with_quota_cpus(4.0),
            MemController::unlimited()
                .with_hard_limit(Bytes::from_gib(1))
                .with_soft_limit(Bytes::from_mib(500)),
        ));
        let mut mon = NsMonitor::with_defaults(
            arv_cgroups::CpuSet::first_n(20),
            Bytes::from_gib(128),
            Watermarks::scaled(Bytes::from_gib(128)),
        );
        mon.sync(&mut cgm);
        (mon, id)
    }

    fn host() -> HostView {
        HostView {
            online_cpus: 20,
            total_memory: Bytes::from_gib(128),
            free_memory: Bytes::from_gib(100),
        }
    }

    #[test]
    fn container_sees_effective_values() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(fs.online_cpus(Some(id)), 4);
        assert_eq!(fs.memory_bytes(Some(id)), Bytes::from_mib(500));
    }

    #[test]
    fn host_process_sees_physical_values() {
        let (mon, _) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(fs.online_cpus(None), 20);
        assert_eq!(fs.memory_bytes(None), Bytes::from_gib(128));
        assert_eq!(
            fs.sysconf(None, Sysconf::AvphysPages) * PAGE_SIZE,
            Bytes::from_gib(100).as_u64()
        );
    }

    #[test]
    fn unknown_container_falls_back_to_host_view() {
        let (mon, _) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(fs.online_cpus(Some(CgroupId(999))), 20);
    }

    #[test]
    fn page_size_is_constant() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(fs.sysconf(Some(id), Sysconf::PageSize), 4096);
        assert_eq!(fs.sysconf(None, Sysconf::PageSize), 4096);
    }

    #[test]
    fn sysfs_online_file_uses_cpu_list_syntax() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(
            fs.read(Some(id), "/sys/devices/system/cpu/online").unwrap(),
            "0-3"
        );
        assert_eq!(
            fs.read(None, "/sys/devices/system/cpu/online").unwrap(),
            "0-19"
        );
        assert_eq!(
            fs.read(Some(id), "/sys/devices/system/cpu/possible").unwrap(),
            "0-19"
        );
    }

    #[test]
    fn single_cpu_list_has_no_dash() {
        assert_eq!(cpu_list(1), "0");
        assert_eq!(cpu_list(0), "0");
        assert_eq!(cpu_list(8), "0-7");
    }

    #[test]
    fn meminfo_reflects_the_view() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        let text = fs.read(Some(id), "/proc/meminfo").unwrap();
        assert!(text.contains(&format!("MemTotal: {} kB", 500 * 1024)));
        let host_text = fs.read(None, "/proc/meminfo").unwrap();
        assert!(host_text.contains(&format!("MemTotal: {} kB", 128u64 * 1024 * 1024)));
    }

    #[test]
    fn cpuinfo_and_stat_show_effective_cpus() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        let cpuinfo = fs.read(Some(id), "/proc/cpuinfo").unwrap();
        assert_eq!(cpuinfo.matches("processor").count(), 4);
        let host_cpuinfo = fs.read(None, "/proc/cpuinfo").unwrap();
        assert_eq!(host_cpuinfo.matches("processor").count(), 20);
        let stat = fs.read(Some(id), "/proc/stat").unwrap();
        // Aggregate line + 4 per-CPU lines.
        assert_eq!(stat.lines().count(), 5);
        assert!(stat.contains("cpu3 "));
        assert!(!stat.contains("cpu4 "));
    }

    #[test]
    fn unknown_path_is_enoent() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(fs.read(Some(id), "/sys/kernel/unrelated"), None);
    }
}
