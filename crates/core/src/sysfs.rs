//! The virtual sysfs: the user-space-facing query interface.
//!
//! Applications don't read `sys_namespace` directly — they call
//! `sysconf(3)` or read `sysfs`/`procfs` files, and glibc translates.
//! The paper intercepts those queries: a process linked to a container's
//! namespaces gets answers from its `sys_namespace`; an ordinary host
//! process (in the init namespaces) keeps seeing physical totals. This
//! module reproduces both entry points: the [`Sysconf`] parameter API and
//! a path-based read of the files runtimes actually open.

use arv_cgroups::{Bytes, CgroupId};
use arv_telemetry::{CpuDecision, DecisionCause, MemDecision};

use crate::health::{StalenessPolicy, ViewHealth};
use crate::monitor::NsMonitor;
use crate::namespace::SysNamespace;
use crate::render;

/// `_SC_PAGESIZE`: 4 KiB pages, as on the paper's x86-64 testbed.
pub const PAGE_SIZE: u64 = 4096;

/// The `sysconf` queries resource-probing runtimes issue (§2.2: "sysconf
/// queries sysfs or procfs in order to determine the number of online
/// CPUs. Memory size is calculated based on `_SC_PHYS_PAGES *
/// _SC_PAGESIZE`").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sysconf {
    /// `_SC_NPROCESSORS_ONLN`.
    NprocessorsOnln,
    /// `_SC_NPROCESSORS_CONF`.
    NprocessorsConf,
    /// `_SC_PHYS_PAGES`.
    PhysPages,
    /// `_SC_AVPHYS_PAGES`.
    AvphysPages,
    /// `_SC_PAGESIZE`.
    PageSize,
}

/// The host's physical view, answered to processes outside any container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostView {
    /// Online CPUs on the host.
    pub online_cpus: u32,
    /// Physical memory size.
    pub total_memory: Bytes,
    /// Free physical memory.
    pub free_memory: Bytes,
}

/// The virtual sysfs front-end.
///
/// Holds the host view plus a reference to the monitor's namespaces; a
/// query carries the caller's container identity (or `None` for a host
/// process), mirroring the kernel-side test of whether the calling task
/// is linked to non-init namespaces.
#[derive(Debug)]
pub struct VirtualSysfs<'m> {
    monitor: &'m NsMonitor,
    host: HostView,
    policy: Option<StalenessPolicy>,
}

impl<'m> VirtualSysfs<'m> {
    /// A front-end over `monitor` answering with `host` for host processes.
    ///
    /// Without a [`StalenessPolicy`] every view is served as-is,
    /// whatever its age (the pre-fault-tolerance behaviour); see
    /// [`with_policy`](VirtualSysfs::with_policy).
    pub fn new(monitor: &'m NsMonitor, host: HostView) -> VirtualSysfs<'m> {
        VirtualSysfs {
            monitor,
            host,
            policy: None,
        }
    }

    /// A staleness-aware front-end: views older than the policy's
    /// budget are served as the conservative fallback (effective CPU at
    /// Algorithm 1's lower bound, effective memory at the soft limit).
    pub fn with_policy(
        monitor: &'m NsMonitor,
        host: HostView,
        policy: StalenessPolicy,
    ) -> VirtualSysfs<'m> {
        VirtualSysfs {
            monitor,
            host,
            policy: Some(policy),
        }
    }

    /// Health of the view `caller` would be served. Host processes (and
    /// callers without a namespace) read physical values, which are
    /// always fresh; without a policy, staleness is not judged.
    pub fn health(&self, caller: Option<CgroupId>) -> ViewHealth {
        match (
            self.policy,
            caller.and_then(|id| self.monitor.namespace(id)),
        ) {
            (Some(policy), Some(ns)) => {
                policy.classify(self.monitor.now_tick().saturating_sub(ns.last_tick()))
            }
            _ => ViewHealth::Fresh,
        }
    }

    fn is_degraded(&self, ns: &SysNamespace) -> bool {
        match self.policy {
            Some(policy) => policy
                .classify(self.monitor.now_tick().saturating_sub(ns.last_tick()))
                .is_degraded(),
            None => false,
        }
    }

    /// CPU count served for `ns`, honouring degradation. Substituting
    /// the fallback for a live view is itself a traced decision: the
    /// served value deviates from the namespace's actual view.
    fn ns_cpus(&self, ns: &SysNamespace) -> u32 {
        if self.is_degraded(ns) {
            let fallback = ns.cpu_bounds().lower;
            if fallback != ns.effective_cpu() {
                self.monitor.tracer().emit_cpu(
                    self.monitor.now_tick(),
                    ns.id(),
                    CpuDecision {
                        cause: DecisionCause::DegradedFallback,
                        before: ns.effective_cpu(),
                        after: fallback,
                        utilization: 0.0,
                        had_slack: false,
                    },
                );
            }
            fallback
        } else {
            ns.effective_cpu()
        }
    }

    /// Memory size served for `ns`, honouring degradation.
    fn ns_memory(&self, ns: &SysNamespace) -> Bytes {
        if self.is_degraded(ns) {
            let fallback = ns.soft_limit();
            if fallback != ns.effective_memory() {
                self.monitor.tracer().emit_mem(
                    self.monitor.now_tick(),
                    ns.id(),
                    MemDecision {
                        cause: DecisionCause::DegradedFallback,
                        before: ns.effective_memory(),
                        after: fallback,
                        usage: ns.last_usage(),
                        free: Bytes(0),
                    },
                );
            }
            fallback
        } else {
            ns.effective_memory()
        }
    }

    /// Available memory served for `ns`, honouring degradation.
    fn ns_available(&self, ns: &SysNamespace) -> Bytes {
        if self.is_degraded(ns) {
            ns.soft_limit().saturating_sub(ns.last_usage())
        } else {
            ns.available_memory()
        }
    }

    /// Answer a `sysconf` query for `caller`.
    ///
    /// A caller with a `sys_namespace` receives effective values; host
    /// processes — and containers for which no namespace exists, exactly
    /// the pre-paper failure mode — receive physical totals.
    pub fn sysconf(&self, caller: Option<CgroupId>, query: Sysconf) -> u64 {
        let ns = caller.and_then(|id| self.monitor.namespace(id));
        match (query, ns) {
            (Sysconf::PageSize, _) => PAGE_SIZE,
            (Sysconf::NprocessorsOnln, Some(ns)) | (Sysconf::NprocessorsConf, Some(ns)) => {
                u64::from(self.ns_cpus(ns))
            }
            (Sysconf::NprocessorsOnln, None) | (Sysconf::NprocessorsConf, None) => {
                u64::from(self.host.online_cpus)
            }
            (Sysconf::PhysPages, Some(ns)) => self.ns_memory(ns).as_u64() / PAGE_SIZE,
            (Sysconf::PhysPages, None) => self.host.total_memory.as_u64() / PAGE_SIZE,
            // Available memory inside the view: what the container has
            // not yet consumed of its budget (clamped at zero when usage
            // transiently overshoots a shrinking view).
            (Sysconf::AvphysPages, Some(ns)) => self.ns_available(ns).as_u64() / PAGE_SIZE,
            (Sysconf::AvphysPages, None) => self.host.free_memory.as_u64() / PAGE_SIZE,
        }
    }

    /// Total memory as seen by `caller`, in bytes
    /// (`_SC_PHYS_PAGES * _SC_PAGESIZE`).
    pub fn memory_bytes(&self, caller: Option<CgroupId>) -> Bytes {
        Bytes(self.sysconf(caller, Sysconf::PhysPages) * PAGE_SIZE)
    }

    /// Online CPU count as seen by `caller`.
    pub fn online_cpus(&self, caller: Option<CgroupId>) -> u32 {
        self.sysconf(caller, Sysconf::NprocessorsOnln) as u32
    }

    /// Read a virtual file. Supported paths are the ones resource probing
    /// actually touches; unknown paths return `None` (ENOENT).
    pub fn read(&self, caller: Option<CgroupId>, path: &str) -> Option<String> {
        match path {
            "/sys/devices/system/cpu/online" => Some(render::cpu_list(self.online_cpus(caller))),
            "/sys/devices/system/cpu/possible" | "/sys/devices/system/cpu/present" => {
                // Possible/present CPUs are a hardware property; the view
                // virtualizes *online*, as CPU hotplug does.
                Some(render::cpu_list(self.host.online_cpus))
            }
            "/proc/cpuinfo" => Some(render::cpuinfo(self.online_cpus(caller))),
            "/proc/stat" => Some(render::stat(self.online_cpus(caller))),
            "/proc/meminfo" => {
                let total = self.memory_bytes(caller);
                let free = match caller.and_then(|id| self.monitor.namespace(id)) {
                    Some(ns) => self.ns_available(ns),
                    None => self.host.free_memory,
                };
                Some(render::meminfo(total, free))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_cgroups::{CgroupManager, CgroupSpec, CpuController, MemController};
    use arv_mem::Watermarks;

    fn setup() -> (NsMonitor, CgroupId) {
        let mut cgm = CgroupManager::new();
        let id = cgm.create(CgroupSpec::new(
            CpuController::unlimited(20).with_quota_cpus(4.0),
            MemController::unlimited()
                .with_hard_limit(Bytes::from_gib(1))
                .with_soft_limit(Bytes::from_mib(500)),
        ));
        let mut mon = NsMonitor::with_defaults(
            arv_cgroups::CpuSet::first_n(20),
            Bytes::from_gib(128),
            Watermarks::scaled(Bytes::from_gib(128)),
        );
        mon.sync(&mut cgm);
        (mon, id)
    }

    fn host() -> HostView {
        HostView {
            online_cpus: 20,
            total_memory: Bytes::from_gib(128),
            free_memory: Bytes::from_gib(100),
        }
    }

    #[test]
    fn container_sees_effective_values() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(fs.online_cpus(Some(id)), 4);
        assert_eq!(fs.memory_bytes(Some(id)), Bytes::from_mib(500));
    }

    #[test]
    fn host_process_sees_physical_values() {
        let (mon, _) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(fs.online_cpus(None), 20);
        assert_eq!(fs.memory_bytes(None), Bytes::from_gib(128));
        assert_eq!(
            fs.sysconf(None, Sysconf::AvphysPages) * PAGE_SIZE,
            Bytes::from_gib(100).as_u64()
        );
    }

    #[test]
    fn unknown_container_falls_back_to_host_view() {
        let (mon, _) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(fs.online_cpus(Some(CgroupId(999))), 20);
    }

    #[test]
    fn page_size_is_constant() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(fs.sysconf(Some(id), Sysconf::PageSize), 4096);
        assert_eq!(fs.sysconf(None, Sysconf::PageSize), 4096);
    }

    #[test]
    fn sysfs_online_file_uses_cpu_list_syntax() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(
            fs.read(Some(id), "/sys/devices/system/cpu/online").unwrap(),
            "0-3"
        );
        assert_eq!(
            fs.read(None, "/sys/devices/system/cpu/online").unwrap(),
            "0-19"
        );
        assert_eq!(
            fs.read(Some(id), "/sys/devices/system/cpu/possible")
                .unwrap(),
            "0-19"
        );
    }

    #[test]
    fn avphys_pages_subtracts_usage_from_the_view() {
        let (mut mon, id) = setup();
        // Before any update period fires, the whole 500 MiB view counts
        // as available.
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(
            fs.sysconf(Some(id), Sysconf::AvphysPages) * PAGE_SIZE,
            Bytes::from_mib(500).as_u64()
        );
        // One period with 200 MiB in use: available = view − usage.
        mon.namespace_mut(id).unwrap().update_mem(crate::MemSample {
            free: Bytes::from_gib(100),
            usage: Bytes::from_mib(200),
            reclaiming: false,
        });
        let fs = VirtualSysfs::new(&mon, host());
        let avail = fs.sysconf(Some(id), Sysconf::AvphysPages) * PAGE_SIZE;
        let view = fs.memory_bytes(Some(id)).as_u64();
        assert_eq!(avail, view - Bytes::from_mib(200).as_u64());
        assert!(avail < view);
    }

    #[test]
    fn avphys_pages_clamps_at_zero_when_usage_overshoots() {
        let (mut mon, id) = setup();
        // Usage above the hard limit (the view just shrank): clamp to 0,
        // never underflow.
        mon.namespace_mut(id).unwrap().update_mem(crate::MemSample {
            free: Bytes::from_mib(100), // below low watermark → reset to soft
            usage: Bytes::from_gib(2),
            reclaiming: true,
        });
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(fs.sysconf(Some(id), Sysconf::AvphysPages), 0);
    }

    #[test]
    fn meminfo_reflects_the_view() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        let text = fs.read(Some(id), "/proc/meminfo").unwrap();
        assert!(text.contains(&format!("MemTotal: {} kB", 500 * 1024)));
        let host_text = fs.read(None, "/proc/meminfo").unwrap();
        assert!(host_text.contains(&format!("MemTotal: {} kB", 128u64 * 1024 * 1024)));
    }

    #[test]
    fn cpuinfo_and_stat_show_effective_cpus() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        let cpuinfo = fs.read(Some(id), "/proc/cpuinfo").unwrap();
        assert_eq!(cpuinfo.matches("processor").count(), 4);
        let host_cpuinfo = fs.read(None, "/proc/cpuinfo").unwrap();
        assert_eq!(host_cpuinfo.matches("processor").count(), 20);
        let stat = fs.read(Some(id), "/proc/stat").unwrap();
        // Aggregate line + 4 per-CPU lines (plus the scalar tail).
        assert_eq!(stat.lines().filter(|l| l.starts_with("cpu")).count(), 5);
        assert!(stat.contains("cpu3 "));
        assert!(!stat.contains("cpu4 "));
    }

    #[test]
    fn virtualized_paths_differ_between_host_and_container() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        // Every view-dependent file renders differently inside the
        // container (4 effective CPUs, 500 MiB) than on the host.
        for path in [
            "/sys/devices/system/cpu/online",
            "/proc/cpuinfo",
            "/proc/stat",
            "/proc/meminfo",
        ] {
            let inside = fs.read(Some(id), path).unwrap();
            let outside = fs.read(None, path).unwrap();
            assert_ne!(inside, outside, "{path} is not virtualized");
            // A container the monitor doesn't know falls back to the
            // host image on the same path.
            assert_eq!(fs.read(Some(CgroupId(999)), path).unwrap(), outside);
        }
        // Hardware-property files are identical inside and out.
        for path in [
            "/sys/devices/system/cpu/possible",
            "/sys/devices/system/cpu/present",
        ] {
            assert_eq!(fs.read(Some(id), path), fs.read(None, path));
        }
    }

    #[test]
    fn unknown_path_is_enoent() {
        let (mon, id) = setup();
        let fs = VirtualSysfs::new(&mon, host());
        assert_eq!(fs.read(Some(id), "/sys/kernel/unrelated"), None);
    }

    #[test]
    fn without_policy_old_views_are_served_as_is() {
        let (mut mon, id) = setup();
        for _ in 0..100 {
            mon.observe_tick();
        }
        let fs = VirtualSysfs::new(&mon, host());
        assert!(fs.health(Some(id)).is_fresh());
        assert_eq!(fs.online_cpus(Some(id)), 4);
        assert_eq!(fs.memory_bytes(Some(id)), Bytes::from_mib(500));
    }

    #[test]
    fn degraded_views_fall_back_to_lower_bound_and_soft_limit() {
        let (mut mon, id) = setup();
        // Grow the view past its safe floor first.
        mon.namespace_mut(id).unwrap().update_mem(crate::MemSample {
            free: Bytes::from_gib(100),
            usage: Bytes::from_mib(495),
            reclaiming: false,
        });
        let grown = mon.namespace(id).unwrap().effective_memory();
        assert!(grown > Bytes::from_mib(500));
        // Monitor clock runs ahead of the namespace stamp: 5 ticks past
        // a default budget of 4 → degraded.
        for _ in 0..5 {
            mon.observe_tick();
        }
        let fs = VirtualSysfs::with_policy(&mon, host(), StalenessPolicy::default());
        assert_eq!(fs.health(Some(id)), ViewHealth::Degraded { age: 5 });
        assert_eq!(fs.online_cpus(Some(id)), 4); // == lower bound here
        assert_eq!(fs.memory_bytes(Some(id)), Bytes::from_mib(500));
        let avail = fs.sysconf(Some(id), Sysconf::AvphysPages) * PAGE_SIZE;
        assert_eq!(avail, Bytes::from_mib(500 - 495).as_u64());
        // Host callers never degrade.
        assert!(fs.health(None).is_fresh());
        assert_eq!(fs.online_cpus(None), 20);
    }

    #[test]
    fn views_within_budget_are_served_as_is() {
        let (mut mon, id) = setup();
        for _ in 0..3 {
            mon.observe_tick();
        }
        let fs = VirtualSysfs::with_policy(&mon, host(), StalenessPolicy::default());
        assert_eq!(fs.health(Some(id)), ViewHealth::Stale { age: 3 });
        assert_eq!(fs.online_cpus(Some(id)), 4);
        assert_eq!(fs.memory_bytes(Some(id)), Bytes::from_mib(500));
    }
}
