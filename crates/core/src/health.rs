//! View staleness classification.
//!
//! Every published view carries the update-timer tick it was computed
//! at. Consumers compare that stamp against the current tick and get a
//! [`ViewHealth`]: `Fresh` while the monitor is keeping up, `Stale` once
//! an update has been missed, and `Degraded` past a configurable
//! staleness budget — at which point the serving layer stops forwarding
//! the (possibly wrong) adaptive view and falls back to the paper's own
//! safe resets: effective CPU clamped to Algorithm 1's lower bound and
//! effective memory reset to the soft limit. Both are values the
//! container is entitled to under any interleaving, so a consumer sized
//! against a degraded view can never over-provision.
//!
//! Orthogonal to staleness, a view carries a [`Durability`] dimension:
//! whether the journal behind it is reaching stable storage. A view can
//! be perfectly Fresh while its host journals into a flagged in-memory
//! fallback — the values served are correct, but a crash right now
//! would lose the unsynced window, and fleet operators must see that.

/// Health of a served view, judged by its age in update-timer ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewHealth {
    /// The view reflects the latest (or previous) update period.
    Fresh,
    /// Updates have been missed, but the view is within the staleness
    /// budget and is still served as-is.
    Stale {
        /// Ticks since the view was last refreshed.
        age: u64,
    },
    /// The view aged past the staleness budget; the conservative
    /// fallback view is served instead.
    Degraded {
        /// Ticks since the view was last refreshed.
        age: u64,
    },
}

impl ViewHealth {
    /// Ticks since the last refresh (0 when fresh).
    pub fn age(&self) -> u64 {
        match *self {
            ViewHealth::Fresh => 0,
            ViewHealth::Stale { age } | ViewHealth::Degraded { age } => age,
        }
    }

    /// Whether the fallback view is being served.
    pub fn is_degraded(&self) -> bool {
        matches!(self, ViewHealth::Degraded { .. })
    }

    /// Whether the view is current.
    pub fn is_fresh(&self) -> bool {
        matches!(self, ViewHealth::Fresh)
    }
}

/// The durability dimension of a served view: whether the state behind
/// it is reaching stable storage. Orthogonal to [`ViewHealth`] — a
/// Fresh view with [`Durability::Lost`] serves correct values that a
/// crash would forget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Durability {
    /// Journal appends are reaching stable storage.
    #[default]
    Durable,
    /// A storage fault flipped the journal to a flagged in-memory
    /// fallback; state survives process restarts only once a
    /// re-checkpoint to the primary store heals the flag.
    Lost,
}

impl Durability {
    /// Whether journal durability is currently lost.
    pub fn is_lost(self) -> bool {
        matches!(self, Durability::Lost)
    }

    /// Fold a second opinion in: durability across a set of journals
    /// (host + shadow, or a whole fleet) is lost if any member's is.
    pub fn merge(self, other: Durability) -> Durability {
        if self.is_lost() || other.is_lost() {
            Durability::Lost
        } else {
            Durability::Durable
        }
    }
}

/// How many missed update periods a view may age before the serving
/// layer degrades it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalenessPolicy {
    /// Maximum view age, in update-timer ticks (CFS periods), that is
    /// still served as-is. Ages strictly greater degrade.
    pub budget: u64,
}

impl Default for StalenessPolicy {
    /// The default budget is 4 CFS periods (~96 ms at the paper's 24 ms
    /// period): long enough to ride out scheduling hiccups, short enough
    /// that consumers never act on a view a whole second old.
    fn default() -> StalenessPolicy {
        StalenessPolicy { budget: 4 }
    }
}

impl StalenessPolicy {
    /// A policy with the given budget.
    pub fn with_budget(budget: u64) -> StalenessPolicy {
        StalenessPolicy { budget }
    }

    /// Classify a view of the given age.
    ///
    /// Age 0 or 1 is `Fresh` — a view stamped last tick is simply the
    /// normal cadence, not a missed deadline.
    pub fn classify(&self, age: u64) -> ViewHealth {
        if age <= 1 {
            ViewHealth::Fresh
        } else if age <= self.budget {
            ViewHealth::Stale { age }
        } else {
            ViewHealth::Degraded { age }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_brackets() {
        let p = StalenessPolicy::default();
        assert_eq!(p.classify(0), ViewHealth::Fresh);
        assert_eq!(p.classify(1), ViewHealth::Fresh);
        assert_eq!(p.classify(2), ViewHealth::Stale { age: 2 });
        assert_eq!(p.classify(4), ViewHealth::Stale { age: 4 });
        assert_eq!(p.classify(5), ViewHealth::Degraded { age: 5 });
        assert_eq!(p.classify(1000), ViewHealth::Degraded { age: 1000 });
    }

    #[test]
    fn helpers_agree_with_variant() {
        let p = StalenessPolicy::with_budget(2);
        assert!(p.classify(1).is_fresh());
        assert!(!p.classify(3).is_fresh());
        assert!(p.classify(3).is_degraded());
        assert_eq!(p.classify(3).age(), 3);
        assert_eq!(p.classify(0).age(), 0);
    }

    #[test]
    fn durability_merges_pessimistically() {
        assert_eq!(Durability::default(), Durability::Durable);
        assert!(!Durability::Durable.is_lost());
        assert!(Durability::Lost.is_lost());
        assert_eq!(
            Durability::Durable.merge(Durability::Durable),
            Durability::Durable
        );
        assert_eq!(
            Durability::Durable.merge(Durability::Lost),
            Durability::Lost
        );
        assert_eq!(
            Durability::Lost.merge(Durability::Durable),
            Durability::Lost
        );
    }

    #[test]
    fn zero_budget_degrades_anything_not_fresh() {
        // budget 0 < age 2: even one missed period degrades. Ages ≤ 1
        // remain fresh by definition of the cadence.
        let p = StalenessPolicy::with_budget(0);
        assert!(p.classify(2).is_degraded());
        assert!(p.classify(1).is_fresh());
    }
}
