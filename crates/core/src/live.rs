//! A live, multithreaded resource-view registry.
//!
//! The simulation-side [`crate::monitor::NsMonitor`] is single-threaded by
//! design; this module reproduces the *runtime* structure the paper
//! evaluates in §5.4: a kernel-side updater that refreshes every
//! namespace once per scheduling period, concurrent with application
//! queries, **with no locking between updater and queries**. Each
//! namespace is an atomic cell — queries are plain atomic loads, the
//! updater serializes per-cell algorithm state behind an uncontended
//! mutex. The `overhead` bench measures both paths against the paper's
//! reported 1 µs update and 5 µs query costs.

use arv_cgroups::{Bytes, CgroupId};
use arv_telemetry::{CpuDecision, DecisionCause, MemDecision, Tracer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::effective_cpu::{CpuBounds, CpuSample, EffectiveCpu, EffectiveCpuConfig};
use crate::effective_mem::{EffectiveMemory, MemSample};
use crate::health::{StalenessPolicy, ViewHealth};

/// One update observation delivered by the host sampler.
#[derive(Debug, Clone, Copy)]
pub struct LiveSample {
    /// The scheduler observation.
    pub cpu: CpuSample,
    /// The memory observation.
    pub mem: MemSample,
}

/// Source of per-container observations for the monitor thread.
pub trait HostSampler: Send + Sync + 'static {
    /// Sample container `id`; `None` means the container vanished and its
    /// cell should simply be skipped this round.
    fn sample(&self, id: CgroupId) -> Option<LiveSample>;
}

/// A cgroup-settings change delivered to the monitor thread — the live
/// analogue of the kernel hook the paper adds to cgroups ("invoke
/// ns_monitor … if there is a change to the cgroups settings", §3.2).
#[derive(Debug, Clone, Copy)]
pub struct CgroupChange {
    /// The cgroup this entry belongs to.
    pub id: CgroupId,
    /// The recomputed static CPU bounds.
    pub bounds: CpuBounds,
    /// The new soft memory limit.
    pub soft: Bytes,
    /// The new hard memory limit.
    pub hard: Bytes,
}

/// A consistent point-in-time view published by an [`NsCell`].
///
/// `cpus` and `bytes` are guaranteed to come from the *same* update —
/// [`NsCell::snapshot`] retries across concurrent writes (seqlock), so a
/// reader can never observe the CPU view of one generation paired with
/// the memory view of another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewSnapshot {
    /// Effective CPU count at this generation.
    pub cpus: u32,
    /// Effective memory at this generation.
    pub bytes: Bytes,
    /// Unused portion of the view at this generation (effective memory
    /// minus the last observed usage, clamped at zero).
    pub avail: Bytes,
    /// Generation stamp: even, monotonically increasing; bumped by two on
    /// every published update. View servers key render caches on it.
    pub generation: u64,
}

/// The atomic per-container namespace cell.
///
/// `effective_cpu`/`effective_memory` are the published views (lock-free
/// reads); `state` carries the algorithm state machines and is touched
/// only by the updater. A seqlock-style `generation` counter brackets
/// every publish: it is odd while a write is in flight and even once the
/// pair of values is consistent, letting readers take untorn
/// [`ViewSnapshot`]s without a lock.
#[derive(Debug)]
pub struct NsCell {
    e_cpu: AtomicU32,
    e_mem: AtomicU64,
    e_avail: AtomicU64,
    updates: AtomicU64,
    generation: AtomicU64,
    // Tick of the last publish, and the conservative fallback view
    // (Algorithm 1's lower bound, Algorithm 2's soft limit) served when
    // the cell ages past the staleness budget.
    last_tick: AtomicU64,
    fb_cpu: AtomicU32,
    fb_mem: AtomicU64,
    state: Mutex<CellState>,
    // Decision provenance: which container this cell belongs to and the
    // (possibly disabled) shared trace ring. Written once at
    // construction, read-only afterwards.
    id: CgroupId,
    tracer: Tracer,
}

#[derive(Debug)]
struct CellState {
    cpu: EffectiveCpu,
    mem: EffectiveMemory,
}

impl NsCell {
    fn new(id: CgroupId, cpu: EffectiveCpu, mem: EffectiveMemory, tracer: Tracer) -> NsCell {
        NsCell {
            e_cpu: AtomicU32::new(cpu.value()),
            e_mem: AtomicU64::new(mem.value().as_u64()),
            e_avail: AtomicU64::new(mem.value().as_u64()),
            updates: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            last_tick: AtomicU64::new(0),
            fb_cpu: AtomicU32::new(cpu.bounds().lower),
            fb_mem: AtomicU64::new(mem.soft_limit().as_u64()),
            state: Mutex::new(CellState { cpu, mem }),
            id,
            tracer,
        }
    }

    /// The container this cell publishes views for.
    #[inline]
    pub fn id(&self) -> CgroupId {
        self.id
    }

    /// Lock-free read of effective CPU (the container-side `sysconf`).
    #[inline]
    pub fn effective_cpu(&self) -> u32 {
        self.e_cpu.load(Ordering::Acquire)
    }

    /// Lock-free read of effective memory.
    #[inline]
    pub fn effective_memory(&self) -> Bytes {
        Bytes(self.e_mem.load(Ordering::Acquire))
    }

    /// Lock-free read of available memory (view minus last observed
    /// usage, clamped at zero).
    #[inline]
    pub fn available_memory(&self) -> Bytes {
        Bytes(self.e_avail.load(Ordering::Acquire))
    }

    /// Current publish generation: even when stable, odd while an update
    /// is mid-flight. Monotone per cell.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A consistent `(cpus, bytes, generation)` triple (seqlock read):
    /// retries while a writer is mid-publish or raced past us, so the two
    /// values always belong to the same update.
    pub fn snapshot(&self) -> ViewSnapshot {
        loop {
            let g1 = self.generation.load(Ordering::Acquire);
            if g1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let cpus = self.e_cpu.load(Ordering::Acquire);
            let bytes = Bytes(self.e_mem.load(Ordering::Acquire));
            let avail = Bytes(self.e_avail.load(Ordering::Acquire));
            if self.generation.load(Ordering::Acquire) == g1 {
                return ViewSnapshot {
                    cpus,
                    bytes,
                    avail,
                    generation: g1,
                };
            }
            std::hint::spin_loop();
        }
    }

    /// Number of updates applied so far.
    pub fn update_count(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Publish `(cpu, mem)` under the seqlock: generation goes odd, the
    /// values land, generation goes even. Callers hold the state mutex, so
    /// writers are already serialized.
    fn publish(&self, cpu: u32, mem: Bytes, avail: Bytes) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.e_cpu.store(cpu, Ordering::Release);
        self.e_mem.store(mem.as_u64(), Ordering::Release);
        self.e_avail.store(avail.as_u64(), Ordering::Release);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Apply one update (the per-period refresh). Called by the monitor
    /// thread; also directly from benches to measure the update cost.
    ///
    /// Lock poisoning is recovered everywhere in this module: a panicked
    /// updater must not take the registry down for every reader, and the
    /// seqlock bracket means a half-applied update is never observable.
    pub fn apply(&self, sample: LiveSample) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let cpu_d = st.cpu.update_explained(sample.cpu);
        let mem_d = st.mem.update_explained(sample.mem);
        let cpu = st.cpu.value();
        let mem = st.mem.value();
        let avail = mem.saturating_sub(sample.mem.usage);
        self.publish(cpu, mem, avail);
        self.updates.fetch_add(1, Ordering::Relaxed);
        let tick = self.last_tick.load(Ordering::Acquire);
        if let Some(d) = cpu_d {
            self.tracer.emit_cpu(tick, self.id, d);
        }
        if let Some(d) = mem_d {
            self.tracer.emit_mem(tick, self.id, d);
        }
    }

    /// Refresh static bounds/limits (cgroup change). The conservative
    /// fallback view tracks the new bounds too.
    pub fn set_static(&self, bounds: CpuBounds, soft: Bytes, hard: Bytes) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let cpu_before = st.cpu.value();
        let mem_before = st.mem.value();
        st.cpu.set_bounds(bounds);
        st.mem.set_limits(soft, hard);
        self.fb_cpu.store(bounds.lower, Ordering::Release);
        self.fb_mem.store(soft.as_u64(), Ordering::Release);
        let cpu = st.cpu.value();
        let mem = st.mem.value();
        let avail = mem.saturating_sub(st.mem.last_usage().unwrap_or(Bytes(0)));
        self.publish(cpu, mem, avail);
        let tick = self.last_tick.load(Ordering::Acquire);
        if cpu != cpu_before {
            self.tracer.emit_cpu(
                tick,
                self.id,
                CpuDecision {
                    cause: DecisionCause::StaticRefresh,
                    before: cpu_before,
                    after: cpu,
                    utilization: 0.0,
                    had_slack: false,
                },
            );
        }
        if mem != mem_before {
            self.tracer.emit_mem(
                tick,
                self.id,
                MemDecision {
                    cause: DecisionCause::StaticRefresh,
                    before: mem_before,
                    after: mem,
                    usage: Bytes(0),
                    free: Bytes(0),
                },
            );
        }
    }

    /// Publish externally computed views, bypassing the cell's own
    /// algorithm state (still seqlock-bracketed and serialized with other
    /// writers). This is the mirror path for drivers — the simulated host
    /// runs Algorithms 1–2 in its single-threaded `NsMonitor` and pushes
    /// the results here so the view daemon serves them concurrently.
    pub fn force_publish(&self, cpus: u32, mem: Bytes, avail: Bytes) {
        let _st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.publish(cpus, mem, avail);
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Resume this cell's views from journaled values (warm restart).
    ///
    /// The values run through the algorithm state machines'
    /// clamped-restore paths, so a journaled view that fell outside the
    /// current static bounds is reconciled rather than trusted. The
    /// reconciled pair is published under the seqlock and returned.
    pub fn restore_views(&self, e_cpu: u32, e_mem: Bytes, avail: Bytes, tick: u64) -> (u32, Bytes) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let cpu = st.cpu.restore_value(e_cpu);
        let mem = st.mem.restore_value(e_mem);
        self.publish(cpu, mem, avail.min(mem));
        self.last_tick.store(tick, Ordering::Release);
        (cpu, mem)
    }

    /// Record the update-timer tick of the latest publish (set by the
    /// updater alongside each publish or mirror).
    #[inline]
    pub fn stamp(&self, tick: u64) {
        self.last_tick.store(tick, Ordering::Release);
    }

    /// Tick of the last publish.
    #[inline]
    pub fn last_tick(&self) -> u64 {
        self.last_tick.load(Ordering::Acquire)
    }

    /// Refresh the conservative fallback view (Algorithm 1's lower
    /// bound, the soft memory limit) served while the cell is degraded.
    pub fn set_fallback(&self, cpus: u32, mem: Bytes) {
        self.fb_cpu.store(cpus, Ordering::Release);
        self.fb_mem.store(mem.as_u64(), Ordering::Release);
    }

    /// Classify this cell's age against `policy` at tick `now`.
    pub fn health(&self, now: u64, policy: &StalenessPolicy) -> ViewHealth {
        policy.classify(now.saturating_sub(self.last_tick()))
    }

    /// The conservative fallback view, served in place of
    /// [`snapshot`](NsCell::snapshot) once the cell is degraded: CPU at
    /// Algorithm 1's lower bound, memory reset to the soft limit — the
    /// paper's own safe resets, legal under any interleaving. Available
    /// memory never exceeds either the fallback size or the last
    /// published availability.
    pub fn degraded_snapshot(&self) -> ViewSnapshot {
        let last = self.snapshot();
        let bytes = Bytes(self.fb_mem.load(Ordering::Acquire));
        ViewSnapshot {
            cpus: self.fb_cpu.load(Ordering::Acquire),
            bytes,
            avail: last.avail.min(bytes),
            generation: last.generation,
        }
    }
}

/// Registry of live namespace cells, shared between the monitor thread
/// and application query paths.
#[derive(Debug, Clone, Default)]
pub struct LiveRegistry {
    cells: Arc<RwLock<HashMap<CgroupId, Arc<NsCell>>>>,
    tracer: Tracer,
}

impl LiveRegistry {
    /// An empty registry.
    pub fn new() -> LiveRegistry {
        LiveRegistry::default()
    }

    /// An empty registry whose cells emit decision provenance into
    /// `tracer`.
    pub fn with_tracer(tracer: Tracer) -> LiveRegistry {
        LiveRegistry {
            cells: Arc::default(),
            tracer,
        }
    }

    /// The registry's tracer (disabled unless constructed via
    /// [`with_tracer`](LiveRegistry::with_tracer)).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Register a container and get its query handle.
    pub fn register(
        &self,
        id: CgroupId,
        bounds: CpuBounds,
        cpu_cfg: EffectiveCpuConfig,
        mem: EffectiveMemory,
    ) -> Arc<NsCell> {
        let cell = Arc::new(NsCell::new(
            id,
            EffectiveCpu::new(bounds, cpu_cfg),
            mem,
            self.tracer.clone(),
        ));
        let prev = self
            .cells
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, Arc::clone(&cell));
        assert!(prev.is_none(), "container {id:?} already registered");
        cell
    }

    /// Drop a container's cell. Outstanding handles keep working on the
    /// last published values (the namespace outlives the registry entry,
    /// like a namespace held open by a process).
    pub fn unregister(&self, id: CgroupId) {
        self.cells
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
    }

    /// Look up a container's cell.
    pub fn get(&self, id: CgroupId) -> Option<Arc<NsCell>> {
        self.cells
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.cells.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.cells
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Capture every cell's published view for journaling, stamped with
    /// the caller's `tick` (the registry itself has no clock).
    pub fn checkpoint(&self, tick: u64) -> arv_persist::Snapshot {
        let mut entries: Vec<arv_persist::ViewState> = self
            .snapshot()
            .into_iter()
            .map(|(id, cell)| {
                let v = cell.snapshot();
                arv_persist::ViewState {
                    id: id.0,
                    e_cpu: v.cpus,
                    e_mem: v.bytes.as_u64(),
                    e_avail: v.avail.as_u64(),
                    last_tick: cell.last_tick(),
                }
            })
            .collect();
        entries.sort_by_key(|e| e.id);
        arv_persist::Snapshot { tick, entries }
    }

    /// Warm restart: resume registered cells from a journaled snapshot.
    ///
    /// Containers must already be registered (registration rebuilds the
    /// static bounds from the live hierarchy); this pass only resumes
    /// the *dynamic* views, clamped to those fresh bounds. Snapshot
    /// entries without a registered cell are dropped. Returns the same
    /// outcome counters as [`NsMonitor`](crate::monitor::NsMonitor)'s
    /// [`recover`](crate::monitor::NsMonitor::recover).
    pub fn restore(&self, snap: &arv_persist::Snapshot) -> crate::monitor::RecoverOutcome {
        let mut out = crate::monitor::RecoverOutcome::default();
        let mut seen = 0usize;
        for entry in &snap.entries {
            let Some(cell) = self.get(CgroupId(entry.id)) else {
                out.dropped += 1;
                continue;
            };
            seen += 1;
            let (cpu, mem) = cell.restore_views(
                entry.e_cpu,
                Bytes(entry.e_mem),
                Bytes(entry.e_avail),
                entry.last_tick,
            );
            out.restored += 1;
            if cpu != entry.e_cpu || mem != Bytes(entry.e_mem) {
                out.reconciled += 1;
            }
        }
        out.admitted = self.len().saturating_sub(seen);
        out
    }

    fn snapshot(&self) -> Vec<(CgroupId, Arc<NsCell>)> {
        self.cells
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(id, c)| (*id, Arc::clone(c)))
            .collect()
    }
}

/// The background monitor thread: samples every registered container each
/// interval, applies the update, and drains cgroup-change events sent
/// through [`LiveMonitor::change_sender`].
#[derive(Debug)]
pub struct LiveMonitor {
    stop: Arc<AtomicBool>,
    changes: Sender<CgroupChange>,
    handle: Option<JoinHandle<()>>,
}

impl LiveMonitor {
    /// Spawn the monitor over `registry`, polling `sampler` every
    /// `interval` (the paper uses one CFS scheduling period).
    pub fn spawn(
        registry: LiveRegistry,
        sampler: Arc<dyn HostSampler>,
        interval: Duration,
    ) -> LiveMonitor {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let (tx, rx): (Sender<CgroupChange>, Receiver<CgroupChange>) = channel();
        let handle = std::thread::Builder::new()
            .name("ns_monitor".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    // Cgroup events first: static bounds must be in place
                    // before the periodic update clamps against them.
                    while let Ok(change) = rx.try_recv() {
                        if let Some(cell) = registry.get(change.id) {
                            cell.set_static(change.bounds, change.soft, change.hard);
                        }
                    }
                    for (id, cell) in registry.snapshot() {
                        if let Some(sample) = sampler.sample(id) {
                            cell.apply(sample);
                        }
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn ns_monitor thread");
        LiveMonitor {
            stop,
            changes: tx,
            handle: Some(handle),
        }
    }

    /// Channel end for delivering cgroup-settings changes (container
    /// creation, `docker update`, …) to the monitor thread.
    pub fn change_sender(&self) -> Sender<CgroupChange> {
        self.changes.clone()
    }

    /// Signal the thread to stop and wait for it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for LiveMonitor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effective_mem::EffectiveMemoryConfig;
    use arv_sim_core::SimDuration;

    const T: SimDuration = SimDuration::from_millis(24);

    fn mk_mem() -> EffectiveMemory {
        EffectiveMemory::new(
            Bytes::from_mib(500),
            Bytes::from_gib(1),
            Bytes::from_mib(64),
            Bytes::from_mib(128),
            EffectiveMemoryConfig::default(),
        )
    }

    fn saturated_sample() -> LiveSample {
        // Usage of 10 CPUs keeps utilization above 95% for any view ≤ 10.
        LiveSample {
            cpu: CpuSample {
                usage: T * 10,
                period: T,
                slack: T,
            },
            mem: MemSample {
                free: Bytes::from_gib(64),
                usage: Bytes::from_mib(490),
                reclaiming: false,
            },
        }
    }

    #[test]
    fn register_and_query() {
        let reg = LiveRegistry::new();
        let cell = reg.register(
            CgroupId(0),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        assert_eq!(cell.effective_cpu(), 4);
        assert_eq!(cell.effective_memory(), Bytes::from_mib(500));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn apply_publishes_new_values() {
        let reg = LiveRegistry::new();
        let cell = reg.register(
            CgroupId(0),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        cell.apply(saturated_sample());
        assert_eq!(cell.effective_cpu(), 5);
        assert!(cell.effective_memory() > Bytes::from_mib(500));
        assert_eq!(cell.update_count(), 1);
    }

    #[test]
    fn handles_survive_unregister() {
        let reg = LiveRegistry::new();
        let cell = reg.register(
            CgroupId(0),
            CpuBounds { lower: 2, upper: 2 },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        reg.unregister(CgroupId(0));
        assert!(reg.get(CgroupId(0)).is_none());
        assert_eq!(cell.effective_cpu(), 2); // still readable
    }

    #[test]
    #[should_panic]
    fn double_register_panics() {
        let reg = LiveRegistry::new();
        let _a = reg.register(
            CgroupId(0),
            CpuBounds { lower: 1, upper: 1 },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        let _b = reg.register(
            CgroupId(0),
            CpuBounds { lower: 1, upper: 1 },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
    }

    #[test]
    fn set_static_republishes() {
        let reg = LiveRegistry::new();
        let cell = reg.register(
            CgroupId(0),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        cell.set_static(
            CpuBounds { lower: 2, upper: 2 },
            Bytes::from_mib(100),
            Bytes::from_mib(200),
        );
        assert_eq!(cell.effective_cpu(), 2);
        assert_eq!(cell.effective_memory(), Bytes::from_mib(100));
    }

    #[test]
    fn staleness_health_and_degraded_fallback() {
        let reg = LiveRegistry::new();
        let cell = reg.register(
            CgroupId(0),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        let policy = StalenessPolicy::default(); // budget 4
        assert!(cell.health(0, &policy).is_fresh());
        assert!(cell.health(1, &policy).is_fresh());
        assert_eq!(cell.health(3, &policy), ViewHealth::Stale { age: 3 });
        assert!(cell.health(5, &policy).is_degraded());

        // Grow the view, then judge it degraded: the fallback snapshot
        // reverts to the registration-time lower bound and soft limit.
        for _ in 0..6 {
            cell.apply(saturated_sample());
        }
        cell.stamp(7);
        assert!(cell.health(8, &policy).is_fresh());
        assert!(cell.health(20, &policy).is_degraded());
        let live = cell.snapshot();
        assert_eq!(live.cpus, 10);
        let deg = cell.degraded_snapshot();
        assert_eq!(deg.cpus, 4);
        assert_eq!(deg.bytes, Bytes::from_mib(500));
        assert!(deg.avail <= deg.bytes);
        assert_eq!(deg.generation, live.generation);
    }

    #[test]
    fn checkpoint_restore_round_trips_grown_views() {
        let reg = LiveRegistry::new();
        let cell = reg.register(
            CgroupId(0),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        for _ in 0..6 {
            cell.apply(saturated_sample());
        }
        cell.stamp(6);
        assert_eq!(cell.effective_cpu(), 10);
        let snap = reg.checkpoint(6);
        assert_eq!(snap.tick, 6);
        assert_eq!(snap.get(0).unwrap().e_cpu, 10);

        // A cold registry would serve 4; restore resumes 10.
        let reg2 = LiveRegistry::new();
        let cell2 = reg2.register(
            CgroupId(0),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        assert_eq!(cell2.effective_cpu(), 4);
        let out = reg2.restore(&snap);
        assert_eq!(out.restored, 1);
        assert_eq!(out.reconciled, 0);
        assert_eq!(cell2.effective_cpu(), 10);
        assert_eq!(cell2.last_tick(), 6);
    }

    #[test]
    fn restore_clamps_to_fresh_bounds_and_drops_vanished() {
        let reg = LiveRegistry::new();
        let cell = reg.register(
            CgroupId(0),
            // The quota narrowed to 6 CPUs while the daemon was down.
            CpuBounds { lower: 2, upper: 6 },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        let snap = arv_persist::Snapshot {
            tick: 9,
            entries: vec![
                arv_persist::ViewState {
                    id: 0,
                    e_cpu: 10,
                    e_mem: Bytes::from_mib(700).as_u64(),
                    e_avail: Bytes::from_mib(300).as_u64(),
                    last_tick: 9,
                },
                arv_persist::ViewState {
                    id: 7,
                    e_cpu: 4,
                    e_mem: 1,
                    e_avail: 1,
                    last_tick: 9,
                },
            ],
        };
        let out = reg.restore(&snap);
        assert_eq!(out.restored, 1);
        assert_eq!(out.reconciled, 1, "journaled 10 CPUs clamped to 6");
        assert_eq!(out.dropped, 1, "vanished container ignored");
        assert_eq!(cell.effective_cpu(), 6);
        assert_eq!(cell.effective_memory(), Bytes::from_mib(700));
    }

    #[test]
    fn set_static_moves_the_fallback_view() {
        let reg = LiveRegistry::new();
        let cell = reg.register(
            CgroupId(0),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        cell.set_static(
            CpuBounds { lower: 2, upper: 6 },
            Bytes::from_mib(100),
            Bytes::from_mib(200),
        );
        let deg = cell.degraded_snapshot();
        assert_eq!(deg.cpus, 2);
        assert_eq!(deg.bytes, Bytes::from_mib(100));
        // An explicit fallback override (the mirror path) wins.
        cell.set_fallback(3, Bytes::from_mib(150));
        let deg = cell.degraded_snapshot();
        assert_eq!((deg.cpus, deg.bytes), (3, Bytes::from_mib(150)));
    }

    struct ConstSampler;
    impl HostSampler for ConstSampler {
        fn sample(&self, _id: CgroupId) -> Option<LiveSample> {
            Some(LiveSample {
                cpu: CpuSample {
                    usage: T * 10,
                    period: T,
                    slack: T,
                },
                mem: MemSample {
                    free: Bytes::from_gib(64),
                    usage: Bytes::from_mib(495),
                    reclaiming: false,
                },
            })
        }
    }

    #[test]
    fn monitor_thread_converges_view_to_upper_bound() {
        let reg = LiveRegistry::new();
        let cell = reg.register(
            CgroupId(0),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        let mon = LiveMonitor::spawn(
            reg.clone(),
            Arc::new(ConstSampler),
            Duration::from_millis(1),
        );
        // Concurrent queries while the monitor updates.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cell.effective_cpu() < 10 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        mon.shutdown();
        assert_eq!(cell.effective_cpu(), 10);
        assert!(cell.update_count() >= 6);
    }

    #[test]
    fn cgroup_changes_reach_the_monitor_thread() {
        let reg = LiveRegistry::new();
        let cell = reg.register(
            CgroupId(0),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        let mon = LiveMonitor::spawn(
            reg.clone(),
            Arc::new(ConstSampler),
            Duration::from_millis(1),
        );
        // A `docker update` narrows the quota to 2 CPUs.
        mon.change_sender()
            .send(CgroupChange {
                id: CgroupId(0),
                bounds: CpuBounds { lower: 2, upper: 2 },
                soft: Bytes::from_mib(100),
                hard: Bytes::from_mib(200),
            })
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cell.effective_cpu() != 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        mon.shutdown();
        assert_eq!(cell.effective_cpu(), 2);
        assert!(cell.effective_memory() <= Bytes::from_mib(200));
    }

    #[test]
    fn monitor_drop_stops_thread() {
        let reg = LiveRegistry::new();
        let _cell = reg.register(
            CgroupId(0),
            CpuBounds { lower: 1, upper: 4 },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        let mon = LiveMonitor::spawn(reg, Arc::new(ConstSampler), Duration::from_millis(1));
        drop(mon); // must not hang or panic
    }

    #[test]
    fn concurrent_readers_see_monotone_growth() {
        let reg = LiveRegistry::new();
        let cell = reg.register(
            CgroupId(0),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            mk_mem(),
        );
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&cell);
                std::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let v = c.effective_cpu();
                        assert!(v >= last, "effective CPU went backwards under growth");
                        assert!((4..=10).contains(&v));
                        last = v;
                    }
                })
            })
            .collect();
        for _ in 0..8 {
            cell.apply(saturated_sample());
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.effective_cpu(), 10);
    }
}
