//! Renderers for the virtual files resource probing actually opens.
//!
//! Both query paths — the in-process [`crate::sysfs::VirtualSysfs`] and
//! the `arv-viewd` daemon — must produce byte-identical file images for
//! the same view, so the formatting lives here, parameterized only by the
//! numbers a view exposes (CPU count, memory sizes). Formats follow the
//! real kernel files closely enough that parsers written against Linux
//! (glibc's `sysconf`, OpenJDK's container probing, LXCFS consumers)
//! accept them.

use arv_cgroups::Bytes;
use std::fmt::Write as _;

/// Kernel cpu-list syntax for CPUs `0..n`: `"0-3"`, or `"0"` for one CPU.
pub fn cpu_list(n: u32) -> String {
    if n <= 1 {
        "0".to_string()
    } else {
        format!("0-{}", n - 1)
    }
}

/// `/proc/cpuinfo`: one stanza per visible CPU — the file
/// `std::thread::available_parallelism` and many runtimes fall back to
/// parsing. Stanzas carry the fields x86 parsers commonly look at
/// (`model name`, `cpu MHz`, `cache size`, `siblings`, `flags`), shaped
/// like the paper's testbed Xeons.
pub fn cpuinfo(cpus: u32) -> String {
    let mut out = String::new();
    for cpu in 0..cpus {
        let _ = write!(
            out,
            "processor\t: {cpu}\n\
             vendor_id\t: GenuineIntel\n\
             cpu family\t: 6\n\
             model\t\t: 85\n\
             model name\t: Intel(R) Xeon(R) Silver 4114 CPU @ 2.20GHz\n\
             stepping\t: 4\n\
             cpu MHz\t\t: 2200.000\n\
             cache size\t: 14080 KB\n\
             physical id\t: {}\n\
             siblings\t: {cpus}\n\
             core id\t\t: {cpu}\n\
             cpu cores\t: {cpus}\n\
             fpu\t\t: yes\n\
             flags\t\t: fpu vme de pse tsc msr pae mce cx8 sep mtrr pge \
             mca cmov pat pse36 clflush mmx fxsr sse sse2 ht syscall nx \
             lm constant_tsc rep_good nopl xtopology cpuid tsc_known_freq \
             pni ssse3 cx16 sse4_1 sse4_2 x2apic popcnt aes xsave avx \
             hypervisor lahf_lm\n\
             bogomips\t: 4400.00\n\
             address sizes\t: 46 bits physical, 48 bits virtual\n\n",
            cpu % 2
        );
    }
    out
}

/// `/proc/stat`: aggregate line plus one `cpuN` line per visible CPU
/// (LXCFS virtualizes exactly this file), followed by the scalar lines
/// (`intr`, `ctxt`, `btime`, …) parsers expect to find after the CPU
/// block. Counters are zero — the simulation virtualizes topology, not
/// tick accounting.
pub fn stat(cpus: u32) -> String {
    let mut out = String::from("cpu  0 0 0 0 0 0 0 0 0 0\n");
    for cpu in 0..cpus {
        let _ = writeln!(out, "cpu{cpu} 0 0 0 0 0 0 0 0 0 0");
    }
    out.push_str("intr 0");
    for _ in 0..64 {
        out.push_str(" 0");
    }
    out.push('\n');
    out.push_str("ctxt 0\nbtime 0\nprocesses 1\nprocs_running 1\nprocs_blocked 0\n");
    out.push_str("softirq 0 0 0 0 0 0 0 0 0 0 0\n");
    out
}

/// `/proc/meminfo` with the two lines probing code reads.
pub fn meminfo(total: Bytes, free: Bytes) -> String {
    format!(
        "MemTotal: {} kB\nMemFree: {} kB\n",
        total.as_u64() / 1024,
        free.as_u64() / 1024
    )
}

/// cgroup v2 `cpu.max` for an effective view of `cpus` CPUs: quota and
/// period in microseconds (`"400000 100000"` = 4 CPUs).
pub fn cpu_max(cpus: u32, period_us: u64) -> String {
    format!("{} {period_us}\n", u64::from(cpus) * period_us)
}

/// cgroup v2 `memory.max`: the limit in bytes on its own line.
pub fn memory_max(limit: Bytes) -> String {
    format!("{}\n", limit.as_u64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_list_syntax() {
        assert_eq!(cpu_list(0), "0");
        assert_eq!(cpu_list(1), "0");
        assert_eq!(cpu_list(8), "0-7");
    }

    #[test]
    fn cpuinfo_stanza_per_cpu() {
        let text = cpuinfo(4);
        assert_eq!(text.matches("processor").count(), 4);
        assert!(text.contains("processor\t: 3"));
        assert_eq!(cpuinfo(0), "");
    }

    #[test]
    fn stat_has_aggregate_plus_per_cpu_lines() {
        let text = stat(4);
        assert!(text.starts_with("cpu  "));
        assert!(text.contains("cpu3 "));
        assert!(!text.contains("cpu4 "));
        assert_eq!(text.lines().filter(|l| l.starts_with("cpu")).count(), 5);
        assert!(text.contains("\nintr 0 "));
        assert!(text.contains("\nctxt 0\n"));
        assert!(text.ends_with("softirq 0 0 0 0 0 0 0 0 0 0 0\n"));
    }

    #[test]
    fn meminfo_in_kib() {
        let text = meminfo(Bytes::from_mib(500), Bytes::from_mib(200));
        assert!(text.contains("MemTotal: 512000 kB"));
        assert!(text.contains("MemFree: 204800 kB"));
    }

    #[test]
    fn cgroup_interface_files() {
        assert_eq!(cpu_max(4, 100_000), "400000 100000\n");
        assert_eq!(memory_max(Bytes::from_mib(1)), "1048576\n");
    }
}
