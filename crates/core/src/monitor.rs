//! `ns_monitor`: the system-wide daemon that keeps every `sys_namespace`
//! current.
//!
//! Two update paths exist, exactly as in §3.1–3.2 of the paper:
//!
//! * **cgroup events** (container creation/termination, limit changes) —
//!   [`NsMonitor::sync`] drains the cgroup manager's event log and
//!   recomputes every namespace's *static* inputs: the CPU bounds
//!   (which depend on the share total over all containers, so one
//!   container's arrival moves everyone's lower bound) and the memory
//!   limits;
//! * **the update timer** — [`NsMonitor::tick`] fires once per scheduling
//!   period and advances the *dynamic* state machines from scheduler and
//!   memory-manager observations.

use arv_cfs::UsageLedger;
use arv_cgroups::{Bytes, CgroupEvent, CgroupId, CgroupManager, CpuSet, SeqEvent};
use arv_mem::{MemSim, Watermarks};
use arv_telemetry::{CpuDecision, DecisionCause, MemDecision, PipelineEvent, Tracer};
use std::collections::BTreeMap;

use crate::effective_cpu::{CpuBounds, CpuSample, EffectiveCpuConfig};
use crate::effective_mem::{EffectiveMemory, EffectiveMemoryConfig, MemSample};
use crate::namespace::{Pid, SysNamespace};

/// Outcome of one [`NsMonitor::ingest`] round over sequence-numbered
/// events. A `gap` means at least one event was lost in transit — the
/// incremental stream can no longer be trusted and the caller (usually
/// via the [`Watchdog`](crate::watchdog::Watchdog)) should run
/// [`NsMonitor::resync`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Events applied this round.
    pub applied: usize,
    /// Events skipped because their sequence number was already seen.
    pub duplicates: u64,
    /// Whether a sequence gap (lost event) was observed.
    pub gap: bool,
}

/// Outcome of one [`NsMonitor::recover`] warm-restart pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverOutcome {
    /// Containers resumed from the journaled snapshot.
    pub restored: usize,
    /// Restored views that had to be reconciled: the journaled value
    /// fell outside the freshly recomputed bounds and was clamped.
    pub reconciled: usize,
    /// Snapshot entries dropped because their cgroup vanished while the
    /// monitor was down.
    pub dropped: usize,
    /// Live cgroups absent from the snapshot, admitted cold at the
    /// lower bounds.
    pub admitted: usize,
}

/// The monitor daemon (simulation-side; see [`crate::live`] for the
/// threaded equivalent).
#[derive(Debug, Clone)]
pub struct NsMonitor {
    online: CpuSet,
    host_total: Bytes,
    watermarks: Watermarks,
    cpu_cfg: EffectiveCpuConfig,
    mem_cfg: EffectiveMemoryConfig,
    namespaces: BTreeMap<CgroupId, SysNamespace>,
    next_pid: u32,
    now_tick: u64,
    next_seq: u64,
    tracer: Tracer,
}

impl NsMonitor {
    /// An empty report for figure `id`.
    pub fn new(
        online: CpuSet,
        host_total: Bytes,
        watermarks: Watermarks,
        cpu_cfg: EffectiveCpuConfig,
        mem_cfg: EffectiveMemoryConfig,
    ) -> NsMonitor {
        NsMonitor {
            online,
            host_total,
            watermarks,
            cpu_cfg,
            mem_cfg,
            namespaces: BTreeMap::new(),
            next_pid: 1,
            now_tick: 0,
            next_seq: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Install a [`Tracer`]; every subsequent view change carries its
    /// decision provenance into the shared trace ring. The default is a
    /// disabled (no-op) tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The monitor's tracer (disabled unless
    /// [`set_tracer`](NsMonitor::set_tracer) installed one).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Convenience constructor with the paper's default thresholds.
    pub fn with_defaults(online: CpuSet, host_total: Bytes, watermarks: Watermarks) -> NsMonitor {
        NsMonitor::new(
            online,
            host_total,
            watermarks,
            EffectiveCpuConfig::default(),
            EffectiveMemoryConfig::default(),
        )
    }

    /// The container's namespace, if it has one.
    pub fn namespace(&self, id: CgroupId) -> Option<&SysNamespace> {
        self.namespaces.get(&id)
    }

    /// Mutable access to the container's namespace.
    pub fn namespace_mut(&mut self, id: CgroupId) -> Option<&mut SysNamespace> {
        self.namespaces.get_mut(&id)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.namespaces.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.namespaces.is_empty()
    }

    /// Effective CPU for a container, if it has a namespace.
    pub fn effective_cpu(&self, id: CgroupId) -> Option<u32> {
        self.namespaces.get(&id).map(|n| n.effective_cpu())
    }

    /// Effective memory for a container, if it has a namespace.
    pub fn effective_memory(&self, id: CgroupId) -> Option<Bytes> {
        self.namespaces.get(&id).map(|n| n.effective_memory())
    }

    /// The monitor's notion of "now", in update-timer firings.
    pub fn now_tick(&self) -> u64 {
        self.now_tick
    }

    /// Advance the monitor's clock by one update-timer firing.
    ///
    /// The driver calls this on *every* firing, including ones where the
    /// monitor is stalled and does no work — the clock models the timer,
    /// not the work, so view ages keep growing while the monitor is
    /// wedged and staleness classification stays honest.
    pub fn observe_tick(&mut self) {
        self.now_tick += 1;
    }

    /// Drain pending cgroup events and refresh static inputs.
    ///
    /// Any create/remove/update changes the share denominator `Σ w_j`, so
    /// bounds are recomputed for *every* namespace whenever at least one
    /// event arrived.
    pub fn sync(&mut self, cgm: &mut CgroupManager) {
        let events = cgm.drain_events();
        if events.is_empty() {
            return;
        }
        for ev in &events {
            match ev {
                CgroupEvent::Created(id) => self.create_namespace(*id, cgm),
                CgroupEvent::Removed(id) => {
                    if self.namespaces.remove(id).is_some() {
                        self.tracer.emit_pipeline(
                            self.now_tick,
                            Some(*id),
                            PipelineEvent::ContainerRemoved,
                        );
                    }
                }
                CgroupEvent::Updated(_) => {}
            }
        }
        self.recompute_all(cgm, DecisionCause::StaticRefresh);
    }

    /// Apply a batch of sequence-numbered events (delivered through an
    /// [`arv_cgroups::EventPipe`]), detecting loss and duplication.
    ///
    /// Duplicated events (sequence already consumed) are skipped —
    /// re-creating an existing namespace would reset its dynamic state.
    /// A sequence number beyond the expected one means events were lost;
    /// the batch is still applied best-effort, but the report flags the
    /// gap so the caller can schedule a [`resync`](NsMonitor::resync).
    /// Reordered deliveries surface as a gap too, which is the safe,
    /// conservative reading.
    pub fn ingest(&mut self, events: &[SeqEvent], cgm: &CgroupManager) -> IngestReport {
        let mut report = IngestReport::default();
        for ev in events {
            if ev.seq < self.next_seq {
                report.duplicates += 1;
                continue;
            }
            if ev.seq > self.next_seq {
                report.gap = true;
            }
            self.next_seq = ev.seq + 1;
            match ev.event {
                CgroupEvent::Created(id) => self.create_namespace(id, cgm),
                CgroupEvent::Removed(id) => {
                    if self.namespaces.remove(&id).is_some() {
                        self.tracer.emit_pipeline(
                            self.now_tick,
                            Some(id),
                            PipelineEvent::ContainerRemoved,
                        );
                    }
                }
                CgroupEvent::Updated(_) => {}
            }
            report.applied += 1;
        }
        if report.gap {
            self.tracer
                .emit_pipeline(self.now_tick, None, PipelineEvent::GapDetected);
        }
        if report.applied > 0 {
            self.recompute_all(cgm, DecisionCause::StaticRefresh);
        }
        report
    }

    /// Full reconcile pass: rescan the cgroup hierarchy from scratch.
    ///
    /// Any pending incremental events are discarded (the rescan
    /// supersedes them): namespaces for departed cgroups are dropped,
    /// missing namespaces are created, and every static bound is
    /// recomputed. After a resync the monitor's view of the hierarchy is
    /// correct regardless of how many events were lost.
    pub fn resync(&mut self, cgm: &mut CgroupManager) {
        let _ = cgm.drain_events();
        let tracer = self.tracer.clone();
        let now = self.now_tick;
        self.namespaces.retain(|id, _| {
            let keep = cgm.contains(*id);
            if !keep {
                tracer.emit_pipeline(now, Some(*id), PipelineEvent::ContainerRemoved);
            }
            keep
        });
        let live: Vec<CgroupId> = cgm.iter().map(|(id, _)| id).collect();
        for id in live {
            self.create_namespace(id, cgm);
        }
        self.recompute_all(cgm, DecisionCause::WatchdogResync);
        self.tracer
            .emit_pipeline(self.now_tick, None, PipelineEvent::Resynced);
    }

    /// Capture every namespace's dynamic view for journaling.
    ///
    /// The snapshot records only the *dynamic* state (effective CPU and
    /// memory, availability, refresh tick); static bounds and limits are
    /// deliberately not persisted — on recovery they are recomputed from
    /// the live cgroup hierarchy, which is the authority.
    pub fn snapshot(&self) -> arv_persist::Snapshot {
        arv_persist::Snapshot {
            tick: self.now_tick,
            entries: self
                .namespaces
                .values()
                .map(|ns| arv_persist::ViewState {
                    id: ns.id().0,
                    e_cpu: ns.effective_cpu(),
                    e_mem: ns.effective_memory().as_u64(),
                    e_avail: ns.available_memory().as_u64(),
                    last_tick: ns.last_tick(),
                })
                .collect(),
        }
    }

    /// Warm restart: rebuild membership from the live cgroup hierarchy,
    /// then resume dynamic views from a journaled `snapshot` instead of
    /// the cold lower bounds.
    ///
    /// Reconcile rules, in order:
    ///
    /// 1. membership follows the hierarchy — namespaces for vanished
    ///    cgroups are dropped, cgroups missing a namespace get one
    ///    (admitted cold at the lower bounds);
    /// 2. restored values are clamped into the **freshly recomputed**
    ///    static bounds (shares, quotas and limits may have changed
    ///    while the monitor was down);
    /// 3. snapshot entries for vanished cgroups are discarded.
    ///
    /// Emits a [`DecisionCause::Restored`] (or
    /// [`DecisionCause::RestoreReconciled`] when the clamp moved the
    /// journaled value) provenance record per resumed view, and one
    /// [`PipelineEvent::Restored`] for the pass itself.
    pub fn recover(
        &mut self,
        snapshot: &arv_persist::Snapshot,
        cgm: &mut CgroupManager,
    ) -> RecoverOutcome {
        let _ = cgm.drain_events();
        let tracer = self.tracer.clone();
        let now = self.now_tick;
        self.namespaces.retain(|id, _| {
            let keep = cgm.contains(*id);
            if !keep {
                tracer.emit_pipeline(now, Some(*id), PipelineEvent::ContainerRemoved);
            }
            keep
        });
        let live: Vec<CgroupId> = cgm.iter().map(|(id, _)| id).collect();
        for id in live {
            self.create_namespace(id, cgm);
        }
        // Fresh static inputs first: restored values clamp against the
        // hierarchy as it is *now*, not as it was journaled.
        self.recompute_all(cgm, DecisionCause::StaticRefresh);

        let mut out = RecoverOutcome::default();
        for entry in &snapshot.entries {
            let id = CgroupId(entry.id);
            let Some(ns) = self.namespaces.get_mut(&id) else {
                out.dropped += 1;
                continue;
            };
            let cpu_before = ns.effective_cpu();
            let mem_before = ns.effective_memory();
            let (cpu_after, mem_after) = ns.restore_views(entry.e_cpu, Bytes(entry.e_mem));
            ns.stamp(self.now_tick);
            out.restored += 1;
            let clamped = cpu_after != entry.e_cpu || mem_after != Bytes(entry.e_mem);
            if clamped {
                out.reconciled += 1;
            }
            let cause = if clamped {
                DecisionCause::RestoreReconciled
            } else {
                DecisionCause::Restored
            };
            if cpu_after != cpu_before {
                self.tracer.emit_cpu(
                    self.now_tick,
                    id,
                    CpuDecision {
                        cause,
                        before: cpu_before,
                        after: cpu_after,
                        utilization: 0.0,
                        had_slack: false,
                    },
                );
            }
            if mem_after != mem_before {
                self.tracer.emit_mem(
                    self.now_tick,
                    id,
                    MemDecision {
                        cause,
                        before: mem_before,
                        after: mem_after,
                        usage: Bytes(0),
                        free: Bytes(0),
                    },
                );
            }
        }
        out.admitted = self
            .namespaces
            .keys()
            .filter(|id| snapshot.get(id.0).is_none())
            .count();
        self.tracer
            .emit_pipeline(self.now_tick, None, PipelineEvent::Restored);
        out
    }

    /// Align the expected event sequence number (after a resync, the
    /// driver passes its pipe's `next_seq` so already-superseded events
    /// are not misread as a fresh gap).
    pub fn align_seq(&mut self, next_seq: u64) {
        self.next_seq = next_seq;
    }

    /// Align the tick counter (after a warm restart: the update timer's
    /// cadence is host-side and survives the daemon, so a replacement
    /// monitor resumes the old clock instead of restarting at zero —
    /// otherwise every served view would look impossibly fresh).
    pub fn align_tick(&mut self, tick: u64) {
        self.now_tick = tick;
    }

    fn create_namespace(&mut self, id: CgroupId, cgm: &CgroupManager) {
        if self.namespaces.contains_key(&id) {
            // Duplicate create (replayed event): the namespace's dynamic
            // state must survive, so this is a no-op.
            return;
        }
        let Some(spec) = cgm.get(id) else { return };
        let bounds = CpuBounds::compute(&spec.cpu, cgm.total_shares(), self.online);
        let soft = spec.mem.soft_limit_or(self.host_total);
        let hard = spec.mem.hard_limit_or(self.host_total);
        let e_mem = EffectiveMemory::new(
            soft,
            hard,
            self.watermarks.low,
            self.watermarks.high,
            self.mem_cfg,
        );
        let owner = Pid(self.next_pid);
        self.next_pid += 1;
        let mut ns = SysNamespace::new(id, owner, bounds, self.cpu_cfg, e_mem);
        ns.stamp(self.now_tick);
        self.namespaces.insert(id, ns);
        self.tracer
            .emit_pipeline(self.now_tick, Some(id), PipelineEvent::ContainerCreated);
    }

    /// Refresh every namespace's static inputs, emitting a provenance
    /// record (with `cause`: static refresh vs. watchdog resync) for
    /// each view the clamp actually moved.
    fn recompute_all(&mut self, cgm: &CgroupManager, cause: DecisionCause) {
        let total_shares = cgm.total_shares();
        for (id, ns) in self.namespaces.iter_mut() {
            if let Some(spec) = cgm.get(*id) {
                let cpu_before = ns.effective_cpu();
                let mem_before = ns.effective_memory();
                ns.set_cpu_bounds(CpuBounds::compute(&spec.cpu, total_shares, self.online));
                ns.set_mem_limits(
                    spec.mem.soft_limit_or(self.host_total),
                    spec.mem.hard_limit_or(self.host_total),
                );
                let cpu_after = ns.effective_cpu();
                let mem_after = ns.effective_memory();
                if cpu_after != cpu_before {
                    self.tracer.emit_cpu(
                        self.now_tick,
                        *id,
                        CpuDecision {
                            cause,
                            before: cpu_before,
                            after: cpu_after,
                            utilization: 0.0,
                            had_slack: false,
                        },
                    );
                }
                if mem_after != mem_before {
                    self.tracer.emit_mem(
                        self.now_tick,
                        *id,
                        MemDecision {
                            cause,
                            before: mem_before,
                            after: mem_after,
                            usage: Bytes(0),
                            free: Bytes(0),
                        },
                    );
                }
            }
        }
    }

    /// Periodic update: advance every namespace from the last scheduling
    /// period's CPU accounting and the memory manager's current state.
    pub fn tick(&mut self, ledger: &UsageLedger, mem: &MemSim) {
        if ledger.last_period().is_zero() {
            return; // nothing scheduled yet
        }
        for (id, ns) in self.namespaces.iter_mut() {
            let (cpu_d, mem_d) = ns.update_explained(
                CpuSample {
                    usage: ledger.last_usage(*id),
                    period: ledger.last_period(),
                    slack: ledger.last_slack(),
                },
                MemSample {
                    free: mem.free(),
                    usage: mem.usage(*id),
                    reclaiming: mem.is_reclaiming(),
                },
            );
            if let Some(d) = cpu_d {
                self.tracer.emit_cpu(self.now_tick, *id, d);
            }
            if let Some(d) = mem_d {
                self.tracer.emit_mem(self.now_tick, *id, d);
            }
            ns.stamp(self.now_tick);
        }
    }

    /// Update-timer firing over the ledger's accumulated window (used by
    /// event-driven drivers whose steps are shorter than one scheduling
    /// period).
    pub fn tick_window(&mut self, ledger: &UsageLedger, mem: &MemSim) {
        if ledger.window_time().is_zero() {
            return;
        }
        for (id, ns) in self.namespaces.iter_mut() {
            let (cpu_d, mem_d) = ns.update_explained(
                CpuSample {
                    usage: ledger.window_usage(*id),
                    period: ledger.window_time(),
                    slack: ledger.window_slack(),
                },
                MemSample {
                    free: mem.free(),
                    usage: mem.usage(*id),
                    reclaiming: mem.is_reclaiming(),
                },
            );
            if let Some(d) = cpu_d {
                self.tracer.emit_cpu(self.now_tick, *id, d);
            }
            if let Some(d) = mem_d {
                self.tracer.emit_mem(self.now_tick, *id, d);
            }
            ns.stamp(self.now_tick);
        }
    }

    /// CPU-only periodic update (memory decimated by the caller).
    pub fn tick_cpu(&mut self, ledger: &UsageLedger) {
        if ledger.last_period().is_zero() {
            return;
        }
        for (id, ns) in self.namespaces.iter_mut() {
            let cpu_d = ns.update_cpu_explained(CpuSample {
                usage: ledger.last_usage(*id),
                period: ledger.last_period(),
                slack: ledger.last_slack(),
            });
            if let Some(d) = cpu_d {
                self.tracer.emit_cpu(self.now_tick, *id, d);
            }
            ns.stamp(self.now_tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_cfs::{CfsSim, GroupDemand};
    use arv_cgroups::{CgroupSpec, CpuController, MemController};
    use arv_mem::MemSimConfig;
    use arv_sim_core::SimDuration;

    const P: SimDuration = SimDuration::from_millis(24);

    fn testbed() -> (CgroupManager, NsMonitor, CfsSim, MemSim, UsageLedger) {
        let cfs = CfsSim::with_cpus(20);
        let mem = MemSim::new(MemSimConfig::paper_testbed());
        let monitor = NsMonitor::with_defaults(cfs.online(), mem.total(), *mem.watermarks());
        (CgroupManager::new(), monitor, cfs, mem, UsageLedger::new())
    }

    fn paper_spec() -> CgroupSpec {
        CgroupSpec::new(
            CpuController::unlimited(20).with_quota_cpus(10.0),
            MemController::unlimited(),
        )
    }

    #[test]
    fn sync_creates_namespaces_with_paper_bounds() {
        let (mut cgm, mut mon, _, mut mem, _) = testbed();
        let ids: Vec<CgroupId> = (0..5).map(|_| cgm.create(paper_spec())).collect();
        for id in &ids {
            mem.register(*id, MemController::unlimited());
        }
        mon.sync(&mut cgm);
        assert_eq!(mon.len(), 5);
        // 5 equal-share containers on 20 cores with a 10-core limit:
        // lower = 4, E starts at 4.
        for id in &ids {
            let ns = mon.namespace(*id).unwrap();
            assert_eq!(
                ns.cpu_bounds(),
                CpuBounds {
                    lower: 4,
                    upper: 10
                }
            );
            assert_eq!(ns.effective_cpu(), 4);
        }
    }

    #[test]
    fn container_churn_moves_everyones_lower_bound() {
        let (mut cgm, mut mon, _, _, _) = testbed();
        let a = cgm.create(paper_spec());
        mon.sync(&mut cgm);
        // Alone: lower = min(10, 20, ceil(1·20)) = 10.
        assert_eq!(mon.namespace(a).unwrap().cpu_bounds().lower, 10);
        let b = cgm.create(paper_spec());
        mon.sync(&mut cgm);
        // Two equal containers: ceil(20/2) = 10 → still 10.
        assert_eq!(mon.namespace(a).unwrap().cpu_bounds().lower, 10);
        for _ in 0..3 {
            cgm.create(paper_spec());
        }
        mon.sync(&mut cgm);
        // Five containers: ceil(20/5) = 4.
        assert_eq!(mon.namespace(a).unwrap().cpu_bounds().lower, 4);
        assert_eq!(mon.namespace(b).unwrap().cpu_bounds().lower, 4);
    }

    #[test]
    fn removal_restores_bounds_and_drops_namespace() {
        let (mut cgm, mut mon, _, _, _) = testbed();
        let a = cgm.create(paper_spec());
        let b = cgm.create(paper_spec());
        let c = cgm.create(paper_spec());
        let d = cgm.create(paper_spec());
        let e = cgm.create(paper_spec());
        mon.sync(&mut cgm);
        assert_eq!(mon.namespace(a).unwrap().cpu_bounds().lower, 4);
        for id in [b, c, d, e] {
            cgm.remove(id);
        }
        mon.sync(&mut cgm);
        assert_eq!(mon.len(), 1);
        assert_eq!(mon.namespace(a).unwrap().cpu_bounds().lower, 10);
        assert!(mon.namespace(b).is_none());
    }

    #[test]
    fn tick_drives_effective_cpu_growth() {
        let (mut cgm, mut mon, cfs, mut mem, mut ledger) = testbed();
        // Five sibling cgroups (lower bound 4 for each); only `a` runs, so
        // it can expand into the others' slack.
        let a = cgm.create(paper_spec());
        for _ in 0..4 {
            cgm.create(paper_spec());
        }
        mem.register(a, MemController::unlimited());
        mon.sync(&mut cgm);
        assert_eq!(mon.effective_cpu(a), Some(4));
        for _ in 0..10 {
            let demand = GroupDemand::cpu_bound(a, 20, 1024, 10.0);
            let alloc = cfs.allocate(P, &[demand]);
            ledger.record(&alloc);
            mon.tick(&ledger, &mem);
        }
        // With slack and saturation, E climbs to the 10-core upper bound.
        assert_eq!(mon.effective_cpu(a), Some(10));
    }

    #[test]
    fn removal_between_ticks_leaves_no_stale_namespace() {
        let (mut cgm, mut mon, cfs, mut mem, mut ledger) = testbed();
        let a = cgm.create(paper_spec());
        let b = cgm.create(paper_spec());
        for id in [a, b] {
            mem.register(id, MemController::unlimited());
        }
        mon.sync(&mut cgm);
        // One tick with both containers running.
        let demands = [
            GroupDemand::cpu_bound(a, 20, 1024, 10.0),
            GroupDemand::cpu_bound(b, 20, 1024, 10.0),
        ];
        ledger.record(&cfs.allocate(P, &demands));
        mon.tick(&ledger, &mem);
        let e_a_before = mon.effective_cpu(a).unwrap();
        // `b` disappears between ticks; the ledger still carries its
        // last-window usage when the next tick fires.
        cgm.remove(b);
        mem.unregister(b);
        mon.sync(&mut cgm);
        assert_eq!(mon.len(), 1);
        assert!(mon.namespace(b).is_none());
        assert!(mon.effective_cpu(b).is_none());
        ledger.record(&cfs.allocate(P, &demands[..1]));
        mon.tick(&ledger, &mem);
        // No stale update resurrected `b`, and `a` keeps adapting —
        // alone now, its bounds opened up to the full 10-core quota.
        assert_eq!(mon.len(), 1);
        assert!(mon.namespace(b).is_none());
        assert!(mon.effective_cpu(a).unwrap() >= e_a_before);
        assert_eq!(mon.namespace(a).unwrap().cpu_bounds().lower, 10);
    }

    #[test]
    fn tick_before_any_allocation_is_harmless() {
        let (mut cgm, mut mon, _, mem, ledger) = testbed();
        let a = cgm.create(paper_spec());
        mon.sync(&mut cgm);
        mon.tick(&ledger, &mem);
        assert_eq!(mon.effective_cpu(a), Some(10));
    }

    #[test]
    fn update_event_refreshes_limits() {
        let (mut cgm, mut mon, _, _, _) = testbed();
        let a = cgm.create(paper_spec());
        mon.sync(&mut cgm);
        assert_eq!(mon.namespace(a).unwrap().cpu_bounds().upper, 10);
        cgm.update(
            a,
            CgroupSpec::new(
                CpuController::unlimited(20).with_quota_cpus(2.0),
                MemController::unlimited().with_hard_limit(Bytes::from_gib(1)),
            ),
        );
        mon.sync(&mut cgm);
        let ns = mon.namespace(a).unwrap();
        assert_eq!(ns.cpu_bounds().upper, 2);
        assert_eq!(ns.effective_memory(), Bytes::from_gib(1));
    }

    #[test]
    fn sync_without_events_is_noop() {
        let (mut cgm, mut mon, _, _, _) = testbed();
        let a = cgm.create(paper_spec());
        mon.sync(&mut cgm);
        let before = mon.namespace(a).unwrap().cpu_bounds();
        mon.sync(&mut cgm); // no new events
        assert_eq!(mon.namespace(a).unwrap().cpu_bounds(), before);
    }

    /// Drain the manager through a pipe, numbering events as the host
    /// driver would.
    fn pump(
        cgm: &mut CgroupManager,
        pipe: &mut arv_cgroups::EventPipe,
    ) -> Vec<arv_cgroups::SeqEvent> {
        for ev in cgm.drain_events() {
            pipe.push(ev);
        }
        pipe.drain()
    }

    #[test]
    fn ingest_tracks_sequence_and_applies_events() {
        let (mut cgm, mut mon, _, _, _) = testbed();
        let mut pipe = arv_cgroups::EventPipe::new(16);
        let a = cgm.create(paper_spec());
        let b = cgm.create(paper_spec());
        let events = pump(&mut cgm, &mut pipe);
        let rep = mon.ingest(&events, &cgm);
        assert_eq!(rep.applied, 2);
        assert_eq!(rep.duplicates, 0);
        assert!(!rep.gap);
        assert_eq!(mon.len(), 2);
        assert!(mon.namespace(a).is_some() && mon.namespace(b).is_some());
    }

    #[test]
    fn ingest_skips_duplicates_without_resetting_state() {
        let (mut cgm, mut mon, cfs, mut mem, mut ledger) = testbed();
        let mut pipe = arv_cgroups::EventPipe::new(16);
        let a = cgm.create(paper_spec());
        mem.register(a, MemController::unlimited());
        let events = pump(&mut cgm, &mut pipe);
        mon.ingest(&events, &cgm);
        // Grow the dynamic view past its initial value.
        for _ in 0..3 {
            let alloc = cfs.allocate(P, &[GroupDemand::cpu_bound(a, 20, 1024, 10.0)]);
            ledger.record(&alloc);
            mon.tick(&ledger, &mem);
        }
        let grown = mon.effective_cpu(a).unwrap();
        // Replay the Created event (duplicate delivery).
        let rep = mon.ingest(&events, &cgm);
        assert_eq!(rep.duplicates, 1);
        assert_eq!(rep.applied, 0);
        assert_eq!(mon.effective_cpu(a), Some(grown), "duplicate reset state");
    }

    #[test]
    fn ingest_reports_gap_on_lost_event() {
        let (mut cgm, mut mon, _, _, _) = testbed();
        let mut pipe = arv_cgroups::EventPipe::new(16);
        cgm.create(paper_spec());
        cgm.create(paper_spec());
        let mut events = pump(&mut cgm, &mut pipe);
        events.remove(0); // lose the first Created in transit
        let rep = mon.ingest(&events, &cgm);
        assert!(rep.gap);
        assert_eq!(rep.applied, 1);
        assert_eq!(mon.len(), 1, "lost create not yet reconciled");
    }

    #[test]
    fn resync_recreates_missing_and_drops_orphans() {
        let (mut cgm, mut mon, _, _, _) = testbed();
        let ids: Vec<CgroupId> = (0..4).map(|_| cgm.create(paper_spec())).collect();
        mon.sync(&mut cgm);
        assert_eq!(mon.len(), 4);
        // Simulate event loss in both directions: a removal whose event
        // vanishes (orphan namespace) and a creation whose event
        // vanishes (missing namespace).
        cgm.remove(ids[1]);
        let late = cgm.create(paper_spec());
        let _ = cgm.drain_events(); // events lost
        mon.sync(&mut cgm); // nothing to apply — monitor is now wrong
        assert!(mon.namespace(ids[1]).is_some(), "orphan still present");
        assert!(mon.namespace(late).is_none(), "new container missing");

        mon.resync(&mut cgm);
        assert!(mon.namespace(ids[1]).is_none(), "orphan survived resync");
        assert!(mon.namespace(late).is_some(), "missing ns not recreated");
        assert_eq!(mon.len(), 4);
    }

    #[test]
    fn resync_matches_from_scratch_sync() {
        // After arbitrary loss, a resynced monitor must agree with a
        // fresh monitor built from the same hierarchy via sync.
        let (mut cgm, mut mon, _, _, _) = testbed();
        let a = cgm.create(paper_spec());
        mon.sync(&mut cgm);
        cgm.remove(a);
        let ids: Vec<CgroupId> = (0..3).map(|_| cgm.create(paper_spec())).collect();
        cgm.update(
            ids[0],
            CgroupSpec::new(
                CpuController::unlimited(20).with_quota_cpus(2.0),
                MemController::unlimited().with_hard_limit(Bytes::from_gib(1)),
            ),
        );
        let _ = cgm.drain_events(); // every event lost
        mon.resync(&mut cgm);

        let (_, mut fresh, _, _, _) = testbed();
        // Replay the hierarchy into a fresh manager so `sync` sees it.
        let mut cgm2 = CgroupManager::new();
        // Burn ids so the two managers agree on numbering.
        let burned = cgm2.create(paper_spec());
        cgm2.remove(burned);
        for _ in 0..3 {
            cgm2.create(paper_spec());
        }
        cgm2.update(
            ids[0],
            CgroupSpec::new(
                CpuController::unlimited(20).with_quota_cpus(2.0),
                MemController::unlimited().with_hard_limit(Bytes::from_gib(1)),
            ),
        );
        fresh.sync(&mut cgm2);

        assert_eq!(mon.len(), fresh.len());
        for id in &ids {
            let (r, f) = (mon.namespace(*id).unwrap(), fresh.namespace(*id).unwrap());
            assert_eq!(r.cpu_bounds(), f.cpu_bounds(), "{id:?} bounds differ");
            assert_eq!(r.effective_cpu(), f.effective_cpu());
            assert_eq!(r.effective_memory(), f.effective_memory());
        }
    }

    #[test]
    fn recover_resumes_views_from_snapshot_not_floor() {
        let (mut cgm, mut mon, cfs, mut mem, mut ledger) = testbed();
        let a = cgm.create(paper_spec());
        for _ in 0..4 {
            cgm.create(paper_spec());
        }
        mem.register(a, MemController::unlimited());
        mon.sync(&mut cgm);
        for _ in 0..10 {
            mon.observe_tick();
            ledger.record(&cfs.allocate(P, &[GroupDemand::cpu_bound(a, 20, 1024, 10.0)]));
            mon.tick(&ledger, &mem);
        }
        assert_eq!(mon.effective_cpu(a), Some(10));
        let snap = mon.snapshot();
        assert_eq!(snap.get(a.0).unwrap().e_cpu, 10);

        // Cold restart: a fresh monitor would serve the 4-CPU floor.
        let (_, mut fresh, _, _, _) = testbed();
        let out = fresh.recover(&snap, &mut cgm);
        assert_eq!(out.restored, 5);
        assert_eq!(out.dropped, 0);
        assert_eq!(out.admitted, 0);
        assert_eq!(
            fresh.effective_cpu(a),
            Some(10),
            "warm restart must resume the converged view"
        );
    }

    #[test]
    fn recover_reconciles_against_current_hierarchy() {
        let (mut cgm, mut mon, _, _, _) = testbed();
        let a = cgm.create(paper_spec());
        let b = cgm.create(paper_spec());
        mon.sync(&mut cgm);
        let mut snap = mon.snapshot();
        // Doctor the journal: claim `a` had converged to 16 CPUs —
        // beyond today's 10-CPU quota — and include a vanished
        // container.
        if let Some(e) = snap.entries.iter_mut().find(|e| e.id == a.0) {
            e.e_cpu = 16;
        }
        snap.entries.push(arv_persist::ViewState {
            id: 999,
            e_cpu: 8,
            e_mem: 1 << 30,
            e_avail: 1 << 29,
            last_tick: 0,
        });
        snap.entries.sort_by_key(|e| e.id);
        // Meanwhile a new container arrived that the journal never saw.
        let late = cgm.create(paper_spec());

        let (_, mut fresh, _, _, _) = testbed();
        let out = fresh.recover(&snap, &mut cgm);
        assert_eq!(out.restored, 2);
        assert_eq!(out.reconciled, 1, "16 CPUs clamped to the quota");
        assert_eq!(out.dropped, 1, "vanished container discarded");
        assert_eq!(out.admitted, 1, "late container admitted cold");
        assert_eq!(fresh.effective_cpu(a), Some(10), "clamped to fresh upper");
        assert!(fresh.namespace(b).is_some());
        let late_ns = fresh.namespace(late).unwrap();
        assert_eq!(
            late_ns.effective_cpu(),
            late_ns.cpu_bounds().lower,
            "unjournaled container starts at the floor"
        );
        assert!(fresh.namespace(CgroupId(999)).is_none());
    }

    #[test]
    fn recover_emits_restored_provenance() {
        let (mut cgm, mut mon, cfs, mut mem, mut ledger) = testbed();
        let a = cgm.create(paper_spec());
        for _ in 0..4 {
            cgm.create(paper_spec());
        }
        mem.register(a, MemController::unlimited());
        mon.sync(&mut cgm);
        for _ in 0..10 {
            ledger.record(&cfs.allocate(P, &[GroupDemand::cpu_bound(a, 20, 1024, 10.0)]));
            mon.tick(&ledger, &mem);
        }
        let snap = mon.snapshot();
        let (_, mut fresh, _, _, _) = testbed();
        fresh.set_tracer(arv_telemetry::Tracer::bounded(64));
        fresh.recover(&snap, &mut cgm);
        let events = fresh.tracer().events();
        assert!(
            events.iter().any(|e| matches!(
                e.kind,
                arv_telemetry::EventKind::Pipeline(PipelineEvent::Restored)
            )),
            "restored pipeline event missing"
        );
        assert!(
            events.iter().any(|e| matches!(
                e.kind,
                arv_telemetry::EventKind::Cpu(d) if d.cause == DecisionCause::Restored
            )),
            "restored cpu decision missing"
        );
    }

    #[test]
    fn observe_tick_advances_and_updates_stamp_namespaces() {
        let (mut cgm, mut mon, cfs, mut mem, mut ledger) = testbed();
        let a = cgm.create(paper_spec());
        mem.register(a, MemController::unlimited());
        mon.sync(&mut cgm);
        assert_eq!(mon.namespace(a).unwrap().last_tick(), 0);
        for _ in 0..5 {
            mon.observe_tick();
        }
        assert_eq!(mon.now_tick(), 5);
        // The namespace has not been refreshed: its stamp lags.
        assert_eq!(mon.namespace(a).unwrap().last_tick(), 0);
        ledger.record(&cfs.allocate(P, &[GroupDemand::cpu_bound(a, 20, 1024, 10.0)]));
        mon.tick_window(&ledger, &mem);
        assert_eq!(mon.namespace(a).unwrap().last_tick(), 5);
    }
}
