//! Algorithm 2: the calculation of effective memory.
//!
//! Effective memory starts at the container's soft limit and grows toward
//! the hard limit in 10% steps, but only when (a) the host has free memory
//! above the kswapd `low` watermark, (b) the container is actually using
//! more than 90% of its current view, and (c) a linear prediction of the
//! host free-memory response says the growth will not drag free memory
//! below the `high` watermark. Whenever kswapd is reclaiming, the view
//! snaps back to the soft limit — the portion above it is exactly what
//! reclaim will take away.

use arv_cgroups::Bytes;
use arv_telemetry::{DecisionCause, MemDecision};

/// Tunables of Algorithm 2; defaults are the paper's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectiveMemoryConfig {
    /// Usage fraction of the current view above which growth is attempted
    /// (line 6: `cmem / E_MEM > 90%`).
    pub usage_threshold: f64,
    /// Growth increment as a fraction of the remaining headroom
    /// (line 7: `Δ = (hard − E) · 10%`).
    pub growth_fraction: f64,
}

impl Default for EffectiveMemoryConfig {
    fn default() -> Self {
        EffectiveMemoryConfig {
            usage_threshold: 0.90,
            growth_fraction: 0.10,
        }
    }
}

/// One update period's memory observation for a container.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemSample {
    /// System-wide free memory now (`cfree`).
    pub free: Bytes,
    /// The container's current usage (`cmem`).
    pub usage: Bytes,
    /// Whether kswapd is actively reclaiming.
    pub reclaiming: bool,
}

/// The effective-memory state machine.
///
/// Keeps the previous sample internally to evaluate the line-8 prediction
/// `Δ_predict = (pfree − cfree)/(cmem − pmem) · Δ`.
#[derive(Debug, Clone)]
pub struct EffectiveMemory {
    cfg: EffectiveMemoryConfig,
    soft: Bytes,
    hard: Bytes,
    low_watermark: Bytes,
    high_watermark: Bytes,
    value: Bytes,
    prev: Option<MemSample>,
}

impl EffectiveMemory {
    /// Initialize to the soft limit (line 3).
    pub fn new(
        soft: Bytes,
        hard: Bytes,
        low_watermark: Bytes,
        high_watermark: Bytes,
        cfg: EffectiveMemoryConfig,
    ) -> EffectiveMemory {
        assert!(soft <= hard, "soft limit must not exceed hard limit");
        assert!(low_watermark <= high_watermark);
        EffectiveMemory {
            cfg,
            soft,
            hard,
            low_watermark,
            high_watermark,
            value: soft,
            prev: None,
        }
    }

    /// Current effective memory (`E_MEM_i`).
    pub fn value(&self) -> Bytes {
        self.value
    }

    /// The soft limit anchoring the view.
    pub fn soft_limit(&self) -> Bytes {
        self.soft
    }

    /// The container's usage from the most recent sample, if any period
    /// has fired yet. Lets the query side answer "available" questions
    /// (`_SC_AVPHYS_PAGES`) as view minus consumption.
    pub fn last_usage(&self) -> Option<Bytes> {
        self.prev.map(|s| s.usage)
    }

    /// The hard limit capping the view.
    pub fn hard_limit(&self) -> Bytes {
        self.hard
    }

    /// Install new limits (cgroup change). The view re-anchors to the new
    /// soft limit when it falls outside `[soft, hard]`.
    pub fn set_limits(&mut self, soft: Bytes, hard: Bytes) {
        assert!(soft <= hard);
        self.soft = soft;
        self.hard = hard;
        if self.value < soft || self.value > hard {
            self.value = soft;
        }
    }

    /// Resume at a journaled value (warm restart). The value is clamped
    /// into the **current** `[soft, hard]` range — the reconcile rule
    /// for recovery — and the clamped result is returned. The
    /// prediction history is cleared: the pre-crash free-memory
    /// response is stale evidence.
    pub fn restore_value(&mut self, value: Bytes) -> Bytes {
        self.value = value.clamp(self.soft, self.hard);
        self.prev = None;
        self.value
    }

    /// One firing of the update timer. Returns the new value.
    pub fn update(&mut self, sample: MemSample) -> Bytes {
        if sample.free > self.low_watermark && !sample.reclaiming {
            let used_frac = sample.usage.ratio(self.value);
            if used_frac > self.cfg.usage_threshold && self.value < self.hard {
                let delta = (self.hard - self.value).mul_f64(self.cfg.growth_fraction);
                let predicted_drop = self.predict_free_drop(&sample, delta);
                if sample.free.saturating_sub(predicted_drop) > self.high_watermark {
                    self.value = (self.value + delta).min(self.hard);
                }
            }
        } else {
            // Memory shortage / active reclaim: anything above the soft
            // limit is about to be taken back (line 14).
            self.value = self.soft;
        }
        self.prev = Some(sample);
        self.value
    }

    /// [`update`](EffectiveMemory::update) with decision provenance:
    /// when the period changed the view, returns the full
    /// [`MemDecision`] — cause (pressure
    /// growth vs. reclaim reset), before/after, and the usage/free
    /// inputs Algorithm 2 branched on. Returns `None` when unchanged
    /// (including the reset branch re-asserting an already-reset view).
    pub fn update_explained(&mut self, sample: MemSample) -> Option<MemDecision> {
        let before = self.value;
        let after = self.update(sample);
        if after == before {
            return None;
        }
        let cause = if after > before {
            DecisionCause::MemPressureGrowth
        } else {
            DecisionCause::MemReclaimReset
        };
        Some(MemDecision {
            cause,
            before,
            after,
            usage: sample.usage,
            free: sample.free,
        })
    }

    /// Line 8: estimate how much system free memory will drop if this
    /// container's view grows by `delta`, from the previous period's
    /// observed response. With no history, or a non-increasing container
    /// (the denominator `cmem − pmem ≤ 0`), assume the conservative 1:1
    /// response. A negative numerator (free memory *grew*) predicts no
    /// drop.
    fn predict_free_drop(&self, sample: &MemSample, delta: Bytes) -> Bytes {
        match self.prev {
            Some(prev) if sample.usage > prev.usage => {
                let consumed = prev.free.saturating_sub(sample.free).as_u64() as f64;
                let grown = (sample.usage - prev.usage).as_u64() as f64;
                delta.mul_f64(consumed / grown)
            }
            _ => delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    fn mem(soft_gib: u64, hard_gib: u64) -> EffectiveMemory {
        EffectiveMemory::new(
            Bytes(soft_gib * GIB),
            Bytes(hard_gib * GIB),
            Bytes::from_mib(1280), // low
            Bytes::from_mib(2560), // high
            EffectiveMemoryConfig::default(),
        )
    }

    fn sample(free_gib: f64, usage_gib: f64) -> MemSample {
        MemSample {
            free: Bytes((free_gib * GIB as f64) as u64),
            usage: Bytes((usage_gib * GIB as f64) as u64),
            reclaiming: false,
        }
    }

    #[test]
    fn initializes_to_soft_limit() {
        let e = mem(15, 30);
        assert_eq!(e.value(), Bytes(15 * GIB));
    }

    #[test]
    fn grows_ten_percent_of_headroom_when_pressed() {
        let mut e = mem(15, 30);
        // 90%+ usage, plenty of free memory.
        let v = e.update(sample(80.0, 14.0));
        // Δ = (30 − 15) · 10% = 1.5 GiB.
        assert_eq!(v, Bytes(15 * GIB) + Bytes(15 * GIB).mul_f64(0.1));
    }

    #[test]
    fn no_growth_below_usage_threshold() {
        let mut e = mem(15, 30);
        let v = e.update(sample(80.0, 10.0)); // 66% of view
        assert_eq!(v, Bytes(15 * GIB));
    }

    #[test]
    fn growth_capped_at_hard_limit() {
        let mut e = mem(15, 30);
        for _ in 0..200 {
            let usage = e.value().mul_f64(0.95);
            e.update(MemSample {
                free: Bytes(80 * GIB),
                usage,
                reclaiming: false,
            });
        }
        assert!(e.value() <= Bytes(30 * GIB));
        // Converges towards (asymptotically to) the hard limit.
        assert!(e.value() > Bytes(29 * GIB));
    }

    #[test]
    fn reset_to_soft_on_reclaim() {
        let mut e = mem(15, 30);
        e.update(sample(80.0, 14.5));
        assert!(e.value() > Bytes(15 * GIB));
        e.update(MemSample {
            free: Bytes(80 * GIB),
            usage: Bytes(16 * GIB),
            reclaiming: true,
        });
        assert_eq!(e.value(), Bytes(15 * GIB));
    }

    #[test]
    fn reset_to_soft_below_low_watermark() {
        let mut e = mem(15, 30);
        e.update(sample(80.0, 14.5));
        assert!(e.value() > Bytes(15 * GIB));
        e.update(MemSample {
            free: Bytes::from_mib(1000), // below low watermark
            usage: Bytes(16 * GIB),
            reclaiming: false,
        });
        assert_eq!(e.value(), Bytes(15 * GIB));
    }

    #[test]
    fn prediction_blocks_growth_near_high_watermark() {
        let mut e = mem(15, 30);
        // First sample establishes history: container grew 1 GiB while free
        // dropped 2 GiB → response ratio 2.0.
        e.update(sample(6.0, 13.0));
        // Now usage presses the view; Δ = 1.5 GiB, predicted drop = 3 GiB,
        // free (4 GiB) − 3 GiB = 1 GiB < high watermark (2.5 GiB): blocked.
        let v = e.update(sample(4.0, 14.0));
        assert_eq!(v, Bytes(15 * GIB));
    }

    #[test]
    fn conservative_prediction_without_history() {
        let mut e = mem(15, 30);
        // No history: predicted drop = Δ = 1.5 GiB. free − Δ = 3.5 GiB >
        // high watermark → growth allowed.
        let v = e.update(sample(5.0, 14.0));
        assert!(v > Bytes(15 * GIB));
        // But with free = 3.9 GiB: 3.9 − 1.5 = 2.4 GiB < 2.5 GiB → blocked.
        let mut e2 = mem(15, 30);
        let v2 = e2.update(sample(3.9, 14.0));
        assert_eq!(v2, Bytes(15 * GIB));
    }

    #[test]
    fn free_memory_growth_predicts_no_drop() {
        let mut e = mem(15, 30);
        e.update(sample(4.0, 13.0));
        // Free memory grew while the container grew: numerator negative →
        // predicted drop 0 → growth allowed even near the watermark.
        let v = e.update(sample(4.5, 14.0));
        assert!(v > Bytes(15 * GIB));
    }

    #[test]
    fn set_limits_reanchors_when_needed() {
        let mut e = mem(15, 30);
        e.update(sample(80.0, 14.5));
        let grown = e.value();
        assert!(grown > Bytes(15 * GIB));
        // Limits move but still contain the value: keep it.
        e.set_limits(Bytes(10 * GIB), Bytes(30 * GIB));
        assert_eq!(e.value(), grown);
        // Hard limit drops below the value: re-anchor to soft.
        e.set_limits(Bytes(10 * GIB), Bytes(12 * GIB));
        assert_eq!(e.value(), Bytes(10 * GIB));
    }

    #[test]
    fn custom_growth_fraction() {
        let cfg = EffectiveMemoryConfig {
            usage_threshold: 0.90,
            growth_fraction: 0.50,
        };
        let mut e = EffectiveMemory::new(
            Bytes(10 * GIB),
            Bytes(20 * GIB),
            Bytes::from_mib(1280),
            Bytes::from_mib(2560),
            cfg,
        );
        let v = e.update(sample(80.0, 9.5));
        assert_eq!(v, Bytes(15 * GIB));
    }

    #[test]
    #[should_panic]
    fn soft_above_hard_rejected() {
        mem(30, 15);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// E_MEM always stays within [soft, hard] for arbitrary traces.
        #[test]
        fn value_always_within_limits(
            soft_mib in 100u64..1000,
            extra_mib in 0u64..2000,
            trace in prop::collection::vec(
                (0u64..200_000, 0u64..4_000, prop::bool::ANY), 1..100),
        ) {
            let soft = Bytes::from_mib(soft_mib);
            let hard = Bytes::from_mib(soft_mib + extra_mib);
            let mut e = EffectiveMemory::new(
                soft,
                hard,
                Bytes::from_mib(1280),
                Bytes::from_mib(2560),
                EffectiveMemoryConfig::default(),
            );
            for (free_mib, usage_mib, reclaiming) in trace {
                let v = e.update(MemSample {
                    free: Bytes::from_mib(free_mib),
                    usage: Bytes::from_mib(usage_mib),
                    reclaiming,
                });
                prop_assert!(v >= soft && v <= hard, "view escaped limits");
            }
        }

        /// Reclaim always resets the view exactly to the soft limit.
        #[test]
        fn reclaim_resets_to_soft(
            soft_mib in 100u64..1000,
            extra_mib in 1u64..2000,
            warm in prop::collection::vec((0u64..200_000, 0u64..4_000), 0..20),
        ) {
            let soft = Bytes::from_mib(soft_mib);
            let mut e = EffectiveMemory::new(
                soft,
                Bytes::from_mib(soft_mib + extra_mib),
                Bytes::from_mib(1280),
                Bytes::from_mib(2560),
                EffectiveMemoryConfig::default(),
            );
            for (free_mib, usage_mib) in warm {
                e.update(MemSample {
                    free: Bytes::from_mib(free_mib),
                    usage: Bytes::from_mib(usage_mib),
                    reclaiming: false,
                });
            }
            e.update(MemSample {
                free: Bytes::from_gib(100),
                usage: Bytes::from_mib(500),
                reclaiming: true,
            });
            prop_assert_eq!(e.value(), soft);
        }
    }
}
