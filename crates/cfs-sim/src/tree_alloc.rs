//! Hierarchical CPU allocation over a [`CgroupTree`]: CFS group
//! scheduling.
//!
//! The flat allocator models Docker's single-level layout; Kubernetes
//! nests cgroups (slice → pod → container), and CFS distributes CPU
//! *recursively*: siblings compete by `cpu.shares` for their parent's
//! grant, quotas cap whole subtrees, and capacity a subtree cannot absorb
//! is redistributed to its siblings (hierarchical work conservation).
//!
//! The implementation runs the same weighted max-min fixed point at every
//! level: a node's demand is the (quota-capped) sum of its children's
//! demands, computed bottom-up; grants then flow top-down.

use arv_cgroups::hierarchy::{CgroupTree, ROOT};
use arv_cgroups::CgroupId;
use arv_sim_core::SimDuration;
use std::collections::BTreeMap;

use crate::scheduler::{weighted_max_min, Allocation, CfsSim};

/// A leaf container's demand for one period, in CPUs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafDemand {
    /// Runnable threads this period.
    pub runnable: u32,
    /// CPU the leaf wants this period, in CPUs.
    pub demand_cpus: f64,
}

impl LeafDemand {
    /// A fully CPU-bound leaf: every runnable thread wants a whole CPU.
    pub fn cpu_bound(runnable: u32) -> LeafDemand {
        LeafDemand {
            runnable,
            demand_cpus: f64::from(runnable),
        }
    }
}

/// Allocate one period over the cgroup tree.
///
/// `demands` carries the runnable leaf containers; absent leaves are
/// idle. Returns a flat [`Allocation`] with grants for every leaf in
/// `demands` (interior nodes are bookkeeping, not schedulable entities).
pub fn allocate_tree(
    cfs: &CfsSim,
    period: SimDuration,
    tree: &CgroupTree,
    demands: &BTreeMap<CgroupId, LeafDemand>,
) -> Allocation {
    assert!(!period.is_zero(), "period must be positive");
    let online = cfs.online();
    let period_us = period.as_micros() as f64;

    // Bottom-up: each node's absorbable demand in µs, capped by its own
    // quota/cpuset at every level.
    fn demand_of(
        tree: &CgroupTree,
        id: CgroupId,
        demands: &BTreeMap<CgroupId, LeafDemand>,
        online: arv_cgroups::CpuSet,
        period_us: f64,
        memo: &mut BTreeMap<CgroupId, f64>,
    ) -> f64 {
        if let Some(v) = memo.get(&id) {
            return *v;
        }
        let children = tree.children(id);
        let raw = if children.is_empty() {
            demands.get(&id).map_or(0.0, |d| {
                d.demand_cpus.min(f64::from(d.runnable)).max(0.0) * period_us
            })
        } else {
            children
                .iter()
                .map(|c| demand_of(tree, *c, demands, online, period_us, memo))
                .sum()
        };
        let capped = match tree.cpu(id) {
            Some(cpu) => raw.min(cpu.cpu_cap(online) * period_us),
            None => raw, // the implicit root has no controller
        };
        memo.insert(id, capped);
        capped
    }

    let mut memo = BTreeMap::new();
    for top in tree.children(ROOT) {
        demand_of(tree, *top, demands, online, period_us, &mut memo);
    }

    // Top-down: distribute each node's grant among its children by shares.
    let supply_us = online.count() as f64 * period_us;
    let mut granted_us: BTreeMap<CgroupId, f64> = BTreeMap::new();
    let mut frontier: Vec<(CgroupId, f64)> = {
        let tops = tree.children(ROOT);
        let items: Vec<(f64, f64)> = tops
            .iter()
            .map(|c| {
                let weight = tree.cpu(*c).map_or(1024.0, |cpu| cpu.shares as f64);
                (weight, *memo.get(c).unwrap_or(&0.0))
            })
            .collect();
        let grants = weighted_max_min(supply_us, &items);
        tops.iter().copied().zip(grants).collect()
    };

    let mut used = 0.0;
    while let Some((id, grant)) = frontier.pop() {
        let children = tree.children(id);
        if children.is_empty() {
            if demands.contains_key(&id) {
                used += grant;
                granted_us.insert(id, grant);
            }
            continue;
        }
        let items: Vec<(f64, f64)> = children
            .iter()
            .map(|c| {
                let weight = tree.cpu(*c).map_or(1024.0, |cpu| cpu.shares as f64);
                (weight, *memo.get(c).unwrap_or(&0.0))
            })
            .collect();
        let grants = weighted_max_min(grant, &items);
        frontier.extend(children.iter().copied().zip(grants));
    }

    let mut granted = BTreeMap::new();
    for (id, us) in &granted_us {
        granted.insert(*id, SimDuration::from_micros(us.round() as u64));
    }
    Allocation {
        granted,
        slack: SimDuration::from_micros((supply_us - used).max(0.0).round() as u64),
        period,
        total_runnable: demands.values().map(|d| d.runnable).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_cgroups::hierarchy::ROOT;
    use arv_cgroups::{CgroupSpec, CpuController, MemController};

    const P: SimDuration = SimDuration::from_millis(24);

    fn spec(shares: u64, quota: Option<f64>) -> CgroupSpec {
        let mut cpu = CpuController::unlimited(20).with_shares(shares);
        if let Some(q) = quota {
            cpu = cpu.with_quota_cpus(q);
        }
        CgroupSpec::new(cpu, MemController::unlimited())
    }

    /// root → kubepods(8192) {podA(2048, 8cpu){c1,c2}, podB(1024){c3}},
    ///        system(1024){sysd}
    fn kube() -> (CgroupTree, CgroupId, CgroupId, CgroupId, CgroupId) {
        let mut t = CgroupTree::new();
        let kubepods = t.create(ROOT, spec(8192, None));
        let system = t.create(ROOT, spec(1024, None));
        let pod_a = t.create(kubepods, spec(2048, Some(8.0)));
        let pod_b = t.create(kubepods, spec(1024, None));
        let c1 = t.create(pod_a, spec(1024, None));
        let c2 = t.create(pod_a, spec(1024, None));
        let c3 = t.create(pod_b, spec(1024, None));
        let sysd = t.create(system, spec(1024, None));
        (t, c1, c2, c3, sysd)
    }

    #[test]
    fn shares_cascade_through_levels() {
        let (t, c1, c2, c3, sysd) = kube();
        let cfs = CfsSim::with_cpus(18);
        let mut demands = BTreeMap::new();
        for c in [c1, c2, c3, sysd] {
            demands.insert(c, LeafDemand::cpu_bound(20));
        }
        let a = allocate_tree(&cfs, P, &t, &demands);
        // Top level: kubepods 8192 vs system 1024 → 16 : 2 CPUs.
        assert!((a.granted_cpus(sysd) - 2.0).abs() < 1e-6);
        // Inside kubepods: podA 2048 vs podB 1024, podA capped at 8 →
        // podA 8 (quota binds below the 10.67 share), podB takes the rest.
        assert!((a.granted_cpus(c1) - 4.0).abs() < 1e-6);
        assert!((a.granted_cpus(c2) - 4.0).abs() < 1e-6);
        assert!((a.granted_cpus(c3) - 8.0).abs() < 1e-6);
        assert!(!a.has_slack());
    }

    #[test]
    fn work_conservation_stays_inside_the_subtree_first() {
        let (t, c1, c2, c3, sysd) = kube();
        let cfs = CfsSim::with_cpus(18);
        // c2 idle: its share flows to c1 (same pod) before anyone else.
        let mut demands = BTreeMap::new();
        for c in [c1, c3, sysd] {
            demands.insert(c, LeafDemand::cpu_bound(20));
        }
        let a = allocate_tree(&cfs, P, &t, &demands);
        assert!(
            (a.granted_cpus(c1) - 8.0).abs() < 1e-6,
            "c1 absorbs podA's quota"
        );
        assert!((a.granted_cpus(c3) - 8.0).abs() < 1e-6);
        assert!((a.granted_cpus(sysd) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn idle_subtree_releases_capacity_upward() {
        let (t, c1, c2, _c3, sysd) = kube();
        let cfs = CfsSim::with_cpus(18);
        // podB entirely idle: kubepods' demand = podA's 8-CPU quota; the
        // remaining 10 CPUs flow to system.
        let mut demands = BTreeMap::new();
        for c in [c1, c2, sysd] {
            demands.insert(c, LeafDemand::cpu_bound(20));
        }
        let a = allocate_tree(&cfs, P, &t, &demands);
        assert!((a.granted_cpus(c1) - 4.0).abs() < 1e-6);
        assert!((a.granted_cpus(c2) - 4.0).abs() < 1e-6);
        assert!((a.granted_cpus(sysd) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn nested_quota_caps_the_whole_subtree() {
        let mut t = CgroupTree::new();
        let slice = t.create(ROOT, spec(1024, Some(4.0)));
        let c1 = t.create(slice, spec(1024, None));
        let c2 = t.create(slice, spec(1024, None));
        let cfs = CfsSim::with_cpus(20);
        let mut demands = BTreeMap::new();
        demands.insert(c1, LeafDemand::cpu_bound(20));
        demands.insert(c2, LeafDemand::cpu_bound(20));
        let a = allocate_tree(&cfs, P, &t, &demands);
        assert!((a.granted_cpus(c1) - 2.0).abs() < 1e-6);
        assert!((a.granted_cpus(c2) - 2.0).abs() < 1e-6);
        assert_eq!(a.slack, P * 16);
    }

    #[test]
    fn flat_tree_matches_flat_allocator() {
        // One level of equal-share containers must reproduce the paper's
        // flat split exactly.
        let mut t = CgroupTree::new();
        let ids: Vec<_> = (0..5)
            .map(|_| t.create(ROOT, spec(1024, Some(10.0))))
            .collect();
        let cfs = CfsSim::with_cpus(20);
        let mut demands = BTreeMap::new();
        for id in &ids {
            demands.insert(*id, LeafDemand::cpu_bound(20));
        }
        let a = allocate_tree(&cfs, P, &t, &demands);
        for id in &ids {
            assert!((a.granted_cpus(*id) - 4.0).abs() < 1e-6);
        }
    }

    #[test]
    fn grants_and_slack_conserve_supply() {
        let (t, c1, _c2, c3, _sysd) = kube();
        let cfs = CfsSim::with_cpus(18);
        let mut demands = BTreeMap::new();
        demands.insert(c1, LeafDemand::cpu_bound(3));
        demands.insert(
            c3,
            LeafDemand {
                runnable: 8,
                demand_cpus: 2.5,
            },
        );
        let a = allocate_tree(&cfs, P, &t, &demands);
        let total: u64 = a.granted.values().map(|g| g.as_micros()).sum();
        let supply = P.as_micros() * 18;
        assert!((total + a.slack.as_micros()) as i64 - supply as i64 <= 4);
        assert!((a.granted_cpus(c1) - 3.0).abs() < 1e-6);
        assert!((a.granted_cpus(c3) - 2.5).abs() < 1e-6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use arv_cgroups::hierarchy::ROOT;
    use arv_cgroups::{CgroupSpec, CpuController, MemController};
    use proptest::prelude::*;

    const P: SimDuration = SimDuration::from_millis(24);

    /// Build a random two-level tree: `pods` top-level groups, each with
    /// 1–4 leaf containers, random shares and optional quotas.
    fn random_tree(pods: &[(u64, Option<f64>, Vec<(u64, u32)>)]) -> (CgroupTree, Vec<CgroupId>) {
        let mut tree = CgroupTree::new();
        let mut leaves = Vec::new();
        for (shares, quota, containers) in pods {
            let mut cpu = CpuController::unlimited(20).with_shares(*shares);
            if let Some(q) = quota {
                cpu = cpu.with_quota_cpus(*q);
            }
            let pod = tree.create(ROOT, CgroupSpec::new(cpu, MemController::unlimited()));
            for (c_shares, _) in containers {
                let c = tree.create(
                    pod,
                    CgroupSpec::new(
                        CpuController::unlimited(20).with_shares(*c_shares),
                        MemController::unlimited(),
                    ),
                );
                leaves.push(c);
            }
        }
        (tree, leaves)
    }

    fn pod_strategy() -> impl Strategy<Value = (u64, Option<f64>, Vec<(u64, u32)>)> {
        (
            2u64..8192,
            prop::option::of(0.5f64..16.0),
            prop::collection::vec((2u64..4096, 1u32..24), 1..4),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Hierarchical allocation conserves supply and respects every
        /// quota along every path.
        #[test]
        fn conservation_and_path_caps(
            pods in prop::collection::vec(pod_strategy(), 1..5),
            cpus in 1u32..32,
        ) {
            let (tree, leaves) = random_tree(&pods);
            let cfs = CfsSim::with_cpus(cpus);
            let mut demands = BTreeMap::new();
            let mut runnables = Vec::new();
            let mut li = 0;
            for (_, _, containers) in &pods {
                for (_, runnable) in containers {
                    demands.insert(leaves[li], LeafDemand::cpu_bound(*runnable));
                    runnables.push(*runnable);
                    li += 1;
                }
            }
            let a = allocate_tree(&cfs, P, &tree, &demands);

            // 1. Conservation: grants + slack = supply (within rounding).
            let total: u64 = a.granted.values().map(|g| g.as_micros()).sum();
            let supply = P.as_micros() * u64::from(cpus);
            let diff = (total + a.slack.as_micros()) as i64 - supply as i64;
            prop_assert!(diff.abs() <= leaves.len() as i64 + 2, "conservation: {diff}");

            // 2. Every leaf within its own demand and its path cap.
            let online = cfs.online();
            for (leaf, runnable) in leaves.iter().zip(&runnables) {
                let g = a.granted_cpus(*leaf);
                prop_assert!(g <= f64::from(*runnable) + 1e-3);
                prop_assert!(
                    g <= tree.path_cpu_cap(*leaf, online) + 1e-3,
                    "leaf {leaf:?} exceeded its path cap"
                );
            }

            // 3. Every pod's subtree total within the pod's quota.
            for (pi, (_, quota, _)) in pods.iter().enumerate() {
                if let Some(q) = quota {
                    let pod_id = tree.children(ROOT)[pi];
                    let subtree: f64 = tree
                        .leaves_under(pod_id)
                        .iter()
                        .map(|l| a.granted_cpus(*l))
                        .sum();
                    prop_assert!(subtree <= q + 1e-3, "pod {pi} quota violated: {subtree} > {q}");
                }
            }
        }
    }
}
