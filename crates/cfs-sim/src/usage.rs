//! Per-cgroup CPU usage accounting.
//!
//! Algorithm 1 adjusts effective CPU from "the CPU usage of container `i`
//! during the updating period" (`u_i`). The ledger keeps the last-period
//! figure plus cumulative totals, as the kernel's cpuacct controller does.

use arv_cgroups::CgroupId;
use arv_sim_core::SimDuration;
use std::collections::BTreeMap;

use crate::scheduler::Allocation;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct GroupUsage {
    last_period: SimDuration,
    cumulative: SimDuration,
    window: SimDuration,
}

/// CPU usage ledger across all cgroups.
#[derive(Debug, Clone, Default)]
pub struct UsageLedger {
    groups: BTreeMap<CgroupId, GroupUsage>,
    last_slack: SimDuration,
    last_period: SimDuration,
    window_slack: SimDuration,
    window_time: SimDuration,
}

impl UsageLedger {
    /// An empty ledger.
    pub fn new() -> UsageLedger {
        UsageLedger::default()
    }

    /// Record one period's allocation. In the fluid model every grant is
    /// fully consumed, so grants are charged as usage.
    pub fn record(&mut self, alloc: &Allocation) {
        for (id, granted) in &alloc.granted {
            let g = self.groups.entry(*id).or_default();
            g.last_period = *granted;
            g.cumulative += *granted;
            g.window += *granted;
        }
        // Groups absent this period used nothing.
        for (id, g) in self.groups.iter_mut() {
            if !alloc.granted.contains_key(id) {
                g.last_period = SimDuration::ZERO;
            }
        }
        self.last_slack = alloc.slack;
        self.last_period = alloc.period;
        self.window_slack += alloc.slack;
        self.window_time += alloc.period;
    }

    /// Remove a terminated container's accounting.
    pub fn forget(&mut self, id: CgroupId) {
        self.groups.remove(&id);
    }

    /// CPU time used by `id` in the last recorded period (`u_i`).
    pub fn last_usage(&self, id: CgroupId) -> SimDuration {
        self.groups
            .get(&id)
            .map_or(SimDuration::ZERO, |g| g.last_period)
    }

    /// Cumulative CPU time used by `id` (cpuacct.usage).
    pub fn cumulative(&self, id: CgroupId) -> SimDuration {
        self.groups
            .get(&id)
            .map_or(SimDuration::ZERO, |g| g.cumulative)
    }

    /// Idle host CPU time in the last period (`pslack`).
    pub fn last_slack(&self) -> SimDuration {
        self.last_slack
    }

    /// Length of the last recorded period (`t` in Algorithm 1).
    pub fn last_period(&self) -> SimDuration {
        self.last_period
    }

    // --- update-timer window accounting ---
    //
    // Simulation steps can be shorter than one CFS scheduling period
    // (event-driven stepping); the `sys_namespace` update timer still
    // fires once per scheduling period, reading the usage accumulated
    // across the window since the previous firing.

    /// CPU time used by `id` since the last [`UsageLedger::reset_window`].
    pub fn window_usage(&self, id: CgroupId) -> SimDuration {
        self.groups.get(&id).map_or(SimDuration::ZERO, |g| g.window)
    }

    /// Idle host CPU time accumulated over the current window.
    pub fn window_slack(&self) -> SimDuration {
        self.window_slack
    }

    /// Wall time accumulated over the current window.
    pub fn window_time(&self) -> SimDuration {
        self.window_time
    }

    /// Close the current window (called when the update timer fires).
    pub fn reset_window(&mut self) {
        for g in self.groups.values_mut() {
            g.window = SimDuration::ZERO;
        }
        self.window_slack = SimDuration::ZERO;
        self.window_time = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{CfsSim, GroupDemand};

    const P: SimDuration = SimDuration::from_millis(24);

    #[test]
    fn records_grants_as_usage() {
        let cfs = CfsSim::with_cpus(4);
        let mut ledger = UsageLedger::new();
        let a = cfs.allocate(P, &[GroupDemand::cpu_bound(CgroupId(0), 2, 1024, 4.0)]);
        ledger.record(&a);
        assert_eq!(ledger.last_usage(CgroupId(0)), P * 2);
        assert_eq!(ledger.cumulative(CgroupId(0)), P * 2);
        assert_eq!(ledger.last_slack(), P * 2);
        assert_eq!(ledger.last_period(), P);
    }

    #[test]
    fn cumulative_accumulates_across_periods() {
        let cfs = CfsSim::with_cpus(2);
        let mut ledger = UsageLedger::new();
        for _ in 0..5 {
            let a = cfs.allocate(P, &[GroupDemand::cpu_bound(CgroupId(7), 1, 1024, 2.0)]);
            ledger.record(&a);
        }
        assert_eq!(ledger.cumulative(CgroupId(7)), P * 5);
        assert_eq!(ledger.last_usage(CgroupId(7)), P);
    }

    #[test]
    fn absent_group_resets_last_period_usage() {
        let cfs = CfsSim::with_cpus(2);
        let mut ledger = UsageLedger::new();
        let a = cfs.allocate(P, &[GroupDemand::cpu_bound(CgroupId(0), 1, 1024, 2.0)]);
        ledger.record(&a);
        let b = cfs.allocate(P, &[GroupDemand::cpu_bound(CgroupId(1), 1, 1024, 2.0)]);
        ledger.record(&b);
        assert_eq!(ledger.last_usage(CgroupId(0)), SimDuration::ZERO);
        assert_eq!(ledger.cumulative(CgroupId(0)), P);
    }

    #[test]
    fn forget_clears_accounting() {
        let cfs = CfsSim::with_cpus(2);
        let mut ledger = UsageLedger::new();
        let a = cfs.allocate(P, &[GroupDemand::cpu_bound(CgroupId(0), 1, 1024, 2.0)]);
        ledger.record(&a);
        ledger.forget(CgroupId(0));
        assert_eq!(ledger.cumulative(CgroupId(0)), SimDuration::ZERO);
    }

    #[test]
    fn unknown_group_reads_zero() {
        let ledger = UsageLedger::new();
        assert_eq!(ledger.last_usage(CgroupId(42)), SimDuration::ZERO);
        assert_eq!(ledger.cumulative(CgroupId(42)), SimDuration::ZERO);
    }
}
