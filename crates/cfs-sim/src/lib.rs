//! A fluid-flow model of the Linux Completely Fair Scheduler over cgroups.
//!
//! The paper's effective-CPU calculation (Algorithm 1) depends on three
//! scheduler behaviours:
//!
//! 1. **proportional sharing** — competing cgroups receive CPU time in
//!    proportion to `cpu.shares`;
//! 2. **bandwidth capping** — a cgroup never exceeds
//!    `cfs_quota_us / cfs_period_us` CPUs, nor the size of its cpuset;
//! 3. **work conservation** — CPU left idle by one cgroup is available to
//!    others, which is why static limits alone (JDK 9/10's approach)
//!    misjudge the *effective* capacity.
//!
//! Rather than simulating per-tick task placement, each scheduling period
//! is resolved exactly with weighted max-min fairness (progressive
//! filling): every group is capped by its demand and its quota/cpuset cap,
//! and the remaining supply is divided by shares. This is the steady-state
//! fixed point of CFS within one period and keeps multi-hour experiment
//! sweeps fast and fully deterministic.
//!
//! Cpusets are modelled as capacity caps. For the experiment matrix in the
//! paper the masks are either the full machine or mutually disjoint
//! per-container ranges, for which the cap model is exact.
//!
//! # Example
//!
//! ```
//! use arv_cfs::{CfsSim, GroupDemand};
//! use arv_cgroups::CgroupId;
//! use arv_sim_core::SimDuration;
//!
//! let cfs = CfsSim::with_cpus(20);
//! let period = SimDuration::from_millis(24);
//! // Two saturated containers, one with twice the shares.
//! let a = GroupDemand::cpu_bound(CgroupId(0), 20, 2048, 20.0);
//! let b = GroupDemand::cpu_bound(CgroupId(1), 20, 1024, 20.0);
//! let alloc = cfs.allocate(period, &[a, b]);
//! assert!((alloc.granted_cpus(CgroupId(0)) - 13.333).abs() < 0.01);
//! assert!((alloc.granted_cpus(CgroupId(1)) - 6.667).abs() < 0.01);
//! assert!(!alloc.has_slack());
//! ```

#![warn(missing_docs)]

pub mod loadavg;
pub mod scheduler;
pub mod tree_alloc;
pub mod usage;

pub use loadavg::Loadavg;
pub use scheduler::{weighted_max_min, Allocation, CfsSim, GroupDemand};
pub use tree_alloc::{allocate_tree, LeafDemand};
pub use usage::UsageLedger;
