//! Weighted max-min (progressive filling) allocation of one scheduling
//! period of CPU time among cgroups.

use arv_cgroups::{CgroupId, CpuSet};
use arv_sim_core::SimDuration;
use std::collections::BTreeMap;

/// One cgroup's CPU request for a scheduling period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupDemand {
    /// The cgroup this entry belongs to.
    pub id: CgroupId,
    /// Runnable threads in the group this period (drives loadavg and the
    /// period-length rule; also bounds consumption at one CPU per thread).
    pub runnable: u32,
    /// `cpu.shares` weight.
    pub weight: u64,
    /// Combined quota/cpuset cap in CPUs (`CpuController::cpu_cap`).
    pub cap_cpus: f64,
    /// CPU the group actually wants this period, in CPUs. CPU-bound phases
    /// set this to `runnable`; idle or I/O phases set it lower.
    pub demand_cpus: f64,
}

impl GroupDemand {
    /// A fully CPU-bound group: every runnable thread wants a whole CPU.
    pub fn cpu_bound(id: CgroupId, runnable: u32, weight: u64, cap_cpus: f64) -> GroupDemand {
        GroupDemand {
            id,
            runnable,
            weight,
            cap_cpus,
            demand_cpus: runnable as f64,
        }
    }

    fn effective_cap(&self, period: SimDuration) -> SimDuration {
        let cpus = self
            .demand_cpus
            .min(self.cap_cpus)
            .min(self.runnable as f64)
            .max(0.0);
        period.mul_f64(cpus)
    }
}

/// Result of allocating one scheduling period.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// CPU time granted (and, in the fluid model, consumed) per group.
    pub granted: BTreeMap<CgroupId, SimDuration>,
    /// Unused host CPU time this period — `pslack` in Algorithm 1.
    pub slack: SimDuration,
    /// The period that was allocated.
    pub period: SimDuration,
    /// Total runnable tasks across groups (drives the CFS period rule).
    pub total_runnable: u32,
}

impl Allocation {
    /// CPU time granted to `id`; zero for unknown groups.
    pub fn granted_to(&self, id: CgroupId) -> SimDuration {
        self.granted.get(&id).copied().unwrap_or(SimDuration::ZERO)
    }

    /// Granted capacity expressed in CPUs.
    pub fn granted_cpus(&self, id: CgroupId) -> f64 {
        self.granted_to(id).ratio(self.period)
    }

    /// `true` when the host had idle CPU this period (`pslack > 0`).
    pub fn has_slack(&self) -> bool {
        !self.slack.is_zero()
    }
}

/// The scheduler: online CPUs plus the per-period allocator.
#[derive(Debug, Clone)]
pub struct CfsSim {
    online: CpuSet,
}

impl CfsSim {
    /// A scheduler over the given online CPU set.
    pub fn new(online: CpuSet) -> CfsSim {
        assert!(!online.is_empty(), "host must have at least one CPU");
        CfsSim { online }
    }

    /// Host with CPUs `0..n`.
    pub fn with_cpus(n: u32) -> CfsSim {
        CfsSim::new(CpuSet::first_n(n))
    }

    /// The online CPU set.
    pub fn online(&self) -> CpuSet {
        self.online
    }

    /// Number of online CPUs.
    pub fn online_count(&self) -> u32 {
        self.online.count()
    }

    /// Allocate `period` of CPU time among `demands` by weighted max-min
    /// fairness with per-group caps.
    ///
    /// Groups whose demand/cap is below their proportional share release
    /// the difference to the others (work conservation); any CPU time no
    /// group can absorb is returned as [`Allocation::slack`].
    pub fn allocate(&self, period: SimDuration, demands: &[GroupDemand]) -> Allocation {
        assert!(!period.is_zero(), "period must be positive");
        let supply_us = self.online.count() as f64 * period.as_micros() as f64;

        let items: Vec<(f64, f64)> = demands
            .iter()
            .map(|d| {
                assert!(d.weight > 0, "cpu.shares must be positive");
                (d.weight as f64, d.effective_cap(period).as_micros() as f64)
            })
            .collect();
        let grants = weighted_max_min(supply_us, &items);

        let mut granted = BTreeMap::new();
        for (d, g) in demands.iter().zip(&grants) {
            granted.insert(d.id, SimDuration::from_micros(g.round() as u64));
        }
        let used: f64 = grants.iter().sum();
        let slack_us = (supply_us - used).max(0.0);
        Allocation {
            granted,
            slack: SimDuration::from_micros(slack_us.round() as u64),
            period,
            total_runnable: demands.iter().map(|d| d.runnable).sum(),
        }
    }
}

/// Weighted max-min fairness (progressive filling): divide `supply` among
/// items with `(weight, cap)`; every item receives `min(cap, fair share)`
/// with released capacity redistributed by weight. The steady-state fixed
/// point of CFS within one period.
pub fn weighted_max_min(supply: f64, items: &[(f64, f64)]) -> Vec<f64> {
    struct Slot {
        weight: f64,
        cap: f64,
        granted: f64,
        frozen: bool,
    }
    let mut slots: Vec<Slot> = items
        .iter()
        .map(|(weight, cap)| Slot {
            weight: *weight,
            cap: cap.max(0.0),
            granted: 0.0,
            frozen: false,
        })
        .collect();

    let mut remaining = supply.max(0.0);
    loop {
        let active_weight: f64 = slots.iter().filter(|s| !s.frozen).map(|s| s.weight).sum();
        if active_weight <= 0.0 || remaining <= 1e-9 {
            break;
        }
        let per_weight = remaining / active_weight;
        let mut froze_any = false;
        for s in slots.iter_mut().filter(|s| !s.frozen) {
            if s.cap <= s.weight * per_weight + 1e-9 {
                s.granted = s.cap;
                remaining -= s.cap;
                s.frozen = true;
                froze_any = true;
            }
        }
        if !froze_any {
            for s in slots.iter_mut().filter(|s| !s.frozen) {
                s.granted = s.weight * per_weight;
                s.frozen = true;
            }
            break;
        }
    }
    slots.into_iter().map(|s| s.granted).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_sim_core::SimDuration;

    const P: SimDuration = SimDuration::from_millis(24);

    fn id(n: u32) -> CgroupId {
        CgroupId(n)
    }

    #[test]
    fn single_group_gets_its_demand() {
        let cfs = CfsSim::with_cpus(20);
        let a = cfs.allocate(P, &[GroupDemand::cpu_bound(id(0), 4, 1024, 20.0)]);
        assert_eq!(a.granted_cpus(id(0)).round() as u32, 4);
        assert!(a.has_slack());
        assert_eq!(a.slack, P * 16);
    }

    #[test]
    fn equal_shares_split_evenly_when_saturated() {
        // Five CPU-hungry containers on 20 cores, equal shares → 4 CPUs each
        // (the paper's §2.2 GC-thread scenario).
        let cfs = CfsSim::with_cpus(20);
        let demands: Vec<GroupDemand> = (0..5)
            .map(|i| GroupDemand::cpu_bound(id(i), 20, 1024, 10.0))
            .collect();
        let a = cfs.allocate(P, &demands);
        for i in 0..5 {
            assert!((a.granted_cpus(id(i)) - 4.0).abs() < 1e-6, "container {i}");
        }
        assert!(!a.has_slack());
    }

    #[test]
    fn shares_weight_the_split() {
        let cfs = CfsSim::with_cpus(3);
        let a = cfs.allocate(
            P,
            &[
                GroupDemand::cpu_bound(id(0), 8, 2048, 3.0),
                GroupDemand::cpu_bound(id(1), 8, 1024, 3.0),
            ],
        );
        assert!((a.granted_cpus(id(0)) - 2.0).abs() < 1e-6);
        assert!((a.granted_cpus(id(1)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn quota_caps_a_group() {
        let cfs = CfsSim::with_cpus(20);
        let a = cfs.allocate(P, &[GroupDemand::cpu_bound(id(0), 20, 1024, 10.0)]);
        assert!((a.granted_cpus(id(0)) - 10.0).abs() < 1e-6);
        assert_eq!(a.slack, P * 10);
    }

    #[test]
    fn work_conservation_redistributes_idle_share() {
        // Group 0 wants only 1 CPU; group 1 absorbs the rest up to its cap.
        let cfs = CfsSim::with_cpus(4);
        let mut d0 = GroupDemand::cpu_bound(id(0), 1, 1024, 4.0);
        d0.demand_cpus = 1.0;
        let d1 = GroupDemand::cpu_bound(id(1), 8, 1024, 4.0);
        let a = cfs.allocate(P, &[d0, d1]);
        assert!((a.granted_cpus(id(0)) - 1.0).abs() < 1e-6);
        assert!((a.granted_cpus(id(1)) - 3.0).abs() < 1e-6);
        assert!(!a.has_slack());
    }

    #[test]
    fn runnable_threads_bound_consumption() {
        // 2 runnable threads can use at most 2 CPUs even with no quota.
        let cfs = CfsSim::with_cpus(8);
        let a = cfs.allocate(P, &[GroupDemand::cpu_bound(id(0), 2, 1024, 8.0)]);
        assert!((a.granted_cpus(id(0)) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_demand_is_respected() {
        let cfs = CfsSim::with_cpus(2);
        let mut d = GroupDemand::cpu_bound(id(0), 1, 1024, 2.0);
        d.demand_cpus = 0.25;
        let a = cfs.allocate(P, &[d]);
        assert!((a.granted_cpus(id(0)) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn no_demands_is_all_slack() {
        let cfs = CfsSim::with_cpus(4);
        let a = cfs.allocate(P, &[]);
        assert_eq!(a.slack, P * 4);
        assert_eq!(a.total_runnable, 0);
    }

    #[test]
    fn grants_never_exceed_supply() {
        let cfs = CfsSim::with_cpus(20);
        let demands: Vec<GroupDemand> = (0..10)
            .map(|i| GroupDemand::cpu_bound(id(i), 15, 1024 * (1 + i as u64 % 3), 10.0))
            .collect();
        let a = cfs.allocate(P, &demands);
        let total: SimDuration = a.granted.values().copied().sum();
        assert!(total.as_micros() <= P.as_micros() * 20 + 10 /* rounding */);
    }

    #[test]
    fn mixed_saturation_matches_hand_computation() {
        // 4 CPUs; A capped at 0.5 CPU, B and C unbounded with weights 1:3.
        let cfs = CfsSim::with_cpus(4);
        let a_d = GroupDemand {
            id: id(0),
            runnable: 4,
            weight: 1024,
            cap_cpus: 0.5,
            demand_cpus: 4.0,
        };
        let b_d = GroupDemand::cpu_bound(id(1), 8, 1024, 4.0);
        let c_d = GroupDemand::cpu_bound(id(2), 8, 3072, 4.0);
        let a = cfs.allocate(P, &[a_d, b_d, c_d]);
        // A takes 0.5; remaining 3.5 splits 1:3 → B 0.875, C 2.625.
        assert!((a.granted_cpus(id(0)) - 0.5).abs() < 1e-6);
        assert!((a.granted_cpus(id(1)) - 0.875).abs() < 1e-6);
        assert!((a.granted_cpus(id(2)) - 2.625).abs() < 1e-6);
    }

    #[test]
    fn total_runnable_reported() {
        let cfs = CfsSim::with_cpus(4);
        let a = cfs.allocate(
            P,
            &[
                GroupDemand::cpu_bound(id(0), 3, 1024, 4.0),
                GroupDemand::cpu_bound(id(1), 5, 1024, 4.0),
            ],
        );
        assert_eq!(a.total_runnable, 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const P: SimDuration = SimDuration::from_millis(24);

    fn demand_strategy() -> impl Strategy<Value = GroupDemand> {
        (1u32..40, 2u64..8192, 0.0f64..20.0, 0.0f64..40.0).prop_map(
            move |(runnable, weight, cap, dem)| GroupDemand {
                id: CgroupId(0), // reassigned by caller
                runnable,
                weight,
                cap_cpus: cap,
                demand_cpus: dem,
            },
        )
    }

    proptest! {
        #[test]
        fn conservation_and_caps(
            mut ds in prop::collection::vec(demand_strategy(), 1..12),
            cpus in 1u32..32,
        ) {
            for (i, d) in ds.iter_mut().enumerate() {
                d.id = CgroupId(i as u32);
            }
            let cfs = CfsSim::with_cpus(cpus);
            let a = cfs.allocate(P, &ds);

            // 1. No group exceeds its cap or demand (within rounding).
            for d in &ds {
                let g = a.granted_cpus(d.id);
                let cap = d.demand_cpus.min(d.cap_cpus).min(d.runnable as f64);
                prop_assert!(g <= cap + 1e-3, "group {:?}: {g} > cap {cap}", d.id);
            }

            // 2. Total grant + slack equals supply (within rounding).
            let total: u64 = a.granted.values().map(|g| g.as_micros()).sum();
            let supply = P.as_micros() * cpus as u64;
            let diff = (total + a.slack.as_micros()) as i64 - supply as i64;
            prop_assert!(diff.abs() <= ds.len() as i64 + 1, "conservation violated: {diff}");

            // 3. Work conservation: slack implies every group hit its bound.
            if a.slack.as_micros() > ds.len() as u64 + 1 {
                for d in &ds {
                    let g = a.granted_cpus(d.id);
                    let cap = d.demand_cpus.min(d.cap_cpus).min(d.runnable as f64);
                    prop_assert!(g >= cap - 1e-3, "slack but group {:?} starved", d.id);
                }
            }
        }

        #[test]
        fn equal_groups_get_equal_grants(
            n in 1usize..10,
            cpus in 1u32..32,
            weight in 2u64..4096,
        ) {
            let ds: Vec<GroupDemand> = (0..n)
                .map(|i| GroupDemand::cpu_bound(CgroupId(i as u32), 16, weight, f64::INFINITY))
                .collect();
            let cfs = CfsSim::with_cpus(cpus);
            let a = cfs.allocate(P, &ds);
            let first = a.granted_cpus(CgroupId(0));
            for d in &ds {
                prop_assert!((a.granted_cpus(d.id) - first).abs() < 1e-3);
            }
        }
    }
}
