//! Exponentially-weighted load average, as consumed by OpenMP's dynamic
//! thread heuristic (`gomp_dynamic_max_threads = n_onln − loadavg`).
//!
//! Linux publishes 1/5/15-minute EWMAs of the runnable task count; the
//! paper quotes libgomp using the 15-minute figure. The time constant is
//! configurable, and [`Loadavg::primed`] lets experiments start from the
//! steady state (a freshly booted 15-minute average would otherwise take
//! most of a benchmark run to converge, which is itself part of why the
//! heuristic misbehaves).

use arv_sim_core::SimDuration;

/// Time constant of the 1-minute series — the `getloadavg()[0]` value
/// libgomp's dynamic-thread heuristic actually reads.
pub const ONE_MINUTE: SimDuration = SimDuration::from_secs(60);
/// Default time constant: 15 minutes, matching `loadavg`'s slowest series.
pub const FIFTEEN_MINUTES: SimDuration = SimDuration::from_secs(15 * 60);

#[derive(Debug, Clone)]
/// An exponentially-weighted moving average of the runnable task count.
pub struct Loadavg {
    tau: SimDuration,
    value: f64,
}

impl Loadavg {
    /// A load average starting at zero (idle machine at boot).
    pub fn new(tau: SimDuration) -> Loadavg {
        assert!(!tau.is_zero(), "time constant must be positive");
        Loadavg { tau, value: 0.0 }
    }

    /// The 1-minute series (what `getloadavg()[0]` reports).
    pub fn one_min() -> Loadavg {
        Loadavg::new(ONE_MINUTE)
    }

    /// Default 15-minute series.
    pub fn fifteen_min() -> Loadavg {
        Loadavg::new(FIFTEEN_MINUTES)
    }

    /// Start from a known steady-state value.
    pub fn primed(tau: SimDuration, value: f64) -> Loadavg {
        assert!(value >= 0.0);
        let mut l = Loadavg::new(tau);
        l.value = value;
        l
    }

    /// Current load average.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Fold in an observation of `runnable` tasks over an interval `dt`.
    pub fn observe(&mut self, runnable: u32, dt: SimDuration) {
        let alpha = (-(dt.as_secs_f64()) / self.tau.as_secs_f64()).exp();
        self.value = self.value * alpha + runnable as f64 * (1.0 - alpha);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_constant_load() {
        let mut l = Loadavg::new(SimDuration::from_secs(10));
        for _ in 0..10_000 {
            l.observe(8, SimDuration::from_millis(100));
        }
        assert!((l.value() - 8.0).abs() < 1e-3);
    }

    #[test]
    fn primed_starts_at_value() {
        let l = Loadavg::primed(FIFTEEN_MINUTES, 20.0);
        assert_eq!(l.value(), 20.0);
    }

    #[test]
    fn decays_toward_zero_when_idle() {
        let mut l = Loadavg::primed(SimDuration::from_secs(10), 10.0);
        l.observe(0, SimDuration::from_secs(10));
        assert!((l.value() - 10.0 / std::f64::consts::E).abs() < 1e-6);
    }

    #[test]
    fn fifteen_minute_series_is_slow() {
        let mut l = Loadavg::fifteen_min();
        // One minute of full load barely moves a 15-minute EWMA.
        for _ in 0..2_500 {
            l.observe(20, SimDuration::from_millis(24));
        }
        assert!(l.value() < 20.0 * 0.1);
    }

    #[test]
    fn monotone_approach_without_overshoot() {
        let mut l = Loadavg::new(SimDuration::from_secs(60));
        let mut prev = 0.0;
        for _ in 0..1_000 {
            l.observe(5, SimDuration::from_millis(500));
            assert!(l.value() >= prev - 1e-12 && l.value() <= 5.0 + 1e-12);
            prev = l.value();
        }
    }
}
