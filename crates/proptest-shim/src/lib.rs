//! A small, dependency-free stand-in for the `proptest` crate.
//!
//! The CI containers for this workspace have **no crates.io access**, so
//! the real `proptest` cannot be resolved. This crate reimplements the
//! subset of its API our property tests use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, range/tuple/`Just`
//! strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::bool::ANY`, `.prop_map(..)` and `ProptestConfig::with_cases` —
//! on top of a deterministic splitmix64 generator seeded from the test
//! name, so every run explores the same cases and failures reproduce
//! exactly.
//!
//! Differences from the real crate (deliberate, for size): no shrinking —
//! a failing case panics with the deterministic seed instead of a
//! minimized input — and no persistence/regression files.

use std::ops::Range;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps fully offline CI fast
        // while still exercising a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator driving strategy sampling (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from the test's name.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A source of random values of one type.
///
/// Unlike the real crate there is no value tree: `sample` directly
/// produces a value (no shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Box a strategy (used by `prop_oneof!` to unify branch types).
pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize, i32, i64);

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        self.start + rng.below(span)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A strategy choosing uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Sub-modules mirroring the real crate's `prop::*` namespace.
pub mod strategies {
    /// `prop::collection`: sized containers of sub-strategy values.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A `Vec` whose length is drawn from `size` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        /// The strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let n = self.size.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// `prop::option`: optional values.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// `Some` three times out of four, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// The strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }

    /// `prop::bool`: boolean values.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Fair coin flip.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// Either boolean with equal probability.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.below(2) == 1
            }
        }
    }
}

/// The conventional `use proptest::prelude::*;` import surface.
pub mod prelude {
    pub use crate::strategies as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// The `proptest! { ... }` test-definition macro.
///
/// Accepts an optional leading `#![proptest_config(expr)]` followed by
/// any number of `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal: expands each `fn` item of a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Assertion macro matching the real crate's name (no shrinking, so it is
/// a plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tok:tt)*) => { assert!($($tok)*) };
}

/// Equality assertion matching the real crate's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tok:tt)*) => { assert_eq!($($tok)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn vec_and_option_and_oneof_compose() {
        let strat = prop::collection::vec((prop::option::of(1u32..5), prop::bool::ANY), 2..6);
        let mut rng = TestRng::for_test("compose");
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let choice = prop_oneof![Just(0u32), (10u32..20).prop_map(|x| x * 2)];
        for _ in 0..200 {
            let v = Strategy::sample(&choice, &mut rng);
            assert!(v == 0 || (20..40).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: sampled args obey their strategies.
        #[test]
        fn macro_samples_args(x in 1u64..100, mut v in prop::collection::vec(0i32..10, 1..4)) {
            prop_assert!((1..100).contains(&x));
            v.push(0);
            prop_assert!(v.len() >= 2);
            prop_assert_eq!(v[v.len() - 1], 0);
        }
    }
}
