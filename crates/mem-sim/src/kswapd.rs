//! Watermarks and the kswapd activity state machine.

use arv_cgroups::Bytes;

/// The three free-memory watermarks kswapd tracks (§3.1 of the paper):
/// reclaim starts below `low`, stops at `high`, and direct reclaim kicks in
/// below `min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Direct reclaim kicks in below this.
    pub min: Bytes,
    /// kswapd wakes when free memory falls below this.
    pub low: Bytes,
    /// Reclaim stops once free memory recovers to this.
    pub high: Bytes,
}

impl Watermarks {
    /// Linux-like defaults scaled from total memory: min 0.5%, low 1%,
    /// high 2%.
    pub fn scaled(total: Bytes) -> Watermarks {
        Watermarks {
            min: total.mul_f64(0.005),
            low: total.mul_f64(0.01),
            high: total.mul_f64(0.02),
        }
    }

    /// Panic unless the parameters are internally consistent.
    pub fn validate(&self) {
        assert!(
            self.min <= self.low && self.low <= self.high,
            "watermarks must satisfy min <= low <= high"
        );
    }
}

/// Whether kswapd is idle or actively reclaiming.
///
/// Hysteresis matches the kernel: once woken below `low`, kswapd keeps
/// reclaiming until free memory reaches `high`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KswapdState {
    #[default]
    /// Free memory is comfortable; kswapd sleeps.
    Idle,
    /// Actively reclaiming until free memory recovers to `high`.
    Reclaiming,
}

impl KswapdState {
    /// Advance the state machine for the current free-memory level.
    pub fn step(self, free: Bytes, marks: &Watermarks) -> KswapdState {
        match self {
            KswapdState::Idle if free < marks.low => KswapdState::Reclaiming,
            KswapdState::Reclaiming if free >= marks.high => KswapdState::Idle,
            s => s,
        }
    }

    /// Whether kswapd is actively reclaiming.
    pub fn is_reclaiming(self) -> bool {
        self == KswapdState::Reclaiming
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marks() -> Watermarks {
        Watermarks {
            min: Bytes::from_mib(64),
            low: Bytes::from_mib(128),
            high: Bytes::from_mib(256),
        }
    }

    #[test]
    fn scaled_watermarks_are_ordered() {
        let w = Watermarks::scaled(Bytes::from_gib(128));
        w.validate();
        assert!(w.min < w.low && w.low < w.high);
        assert_eq!(w.high, Bytes::from_gib(128).mul_f64(0.02));
    }

    #[test]
    fn wakes_below_low() {
        let s = KswapdState::Idle.step(Bytes::from_mib(100), &marks());
        assert!(s.is_reclaiming());
    }

    #[test]
    fn stays_idle_above_low() {
        let s = KswapdState::Idle.step(Bytes::from_mib(200), &marks());
        assert!(!s.is_reclaiming());
    }

    #[test]
    fn hysteresis_until_high() {
        // Free memory recovered above low but below high: keep reclaiming.
        let s = KswapdState::Reclaiming.step(Bytes::from_mib(200), &marks());
        assert!(s.is_reclaiming());
        let s2 = s.step(Bytes::from_mib(256), &marks());
        assert!(!s2.is_reclaiming());
    }

    #[test]
    #[should_panic]
    fn unordered_watermarks_rejected() {
        Watermarks {
            min: Bytes::from_mib(300),
            low: Bytes::from_mib(128),
            high: Bytes::from_mib(256),
        }
        .validate();
    }
}
