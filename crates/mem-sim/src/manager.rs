//! The host memory manager: charging, limits, reclaim, swap accounting.

use arv_cgroups::{Bytes, CgroupId, MemController};
use std::collections::BTreeMap;

use crate::kswapd::{KswapdState, Watermarks};

/// Host-level memory configuration.
#[derive(Debug, Clone, Copy)]
pub struct MemSimConfig {
    /// Physical memory size.
    pub total: Bytes,
    /// Swap device capacity.
    pub swap: Bytes,
    /// kswapd watermarks.
    pub watermarks: Watermarks,
    /// Background-reclaim throughput: how much memory kswapd can move to
    /// swap per second of simulated time; keeps reclaim gradual, as in
    /// the kernel.
    pub reclaim_rate_per_sec: Bytes,
}

impl MemSimConfig {
    /// A host with `total` physical memory, equal-sized swap, scaled
    /// watermarks, and a 256 MiB reclaim batch.
    pub fn with_total(total: Bytes) -> MemSimConfig {
        MemSimConfig {
            total,
            swap: total,
            watermarks: Watermarks::scaled(total),
            reclaim_rate_per_sec: Bytes::from_gib(10),
        }
    }

    /// The paper's testbed: 128 GB of memory.
    pub fn paper_testbed() -> MemSimConfig {
        MemSimConfig::with_total(Bytes::from_gib(128))
    }
}

/// Result of a charge attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeOutcome {
    /// Charge succeeded.
    Charged {
        /// Bytes (possibly zero, possibly from other containers under
        /// direct reclaim) pushed to swap to make room.
        swapped_out: Bytes,
    },
    /// Neither physical memory nor swap could absorb the charge; the
    /// container would be OOM-killed. State is unchanged.
    OomKilled,
}

impl ChargeOutcome {
    /// Whether the charge succeeded.
    pub fn is_ok(self) -> bool {
        matches!(self, ChargeOutcome::Charged { .. })
    }
}

#[derive(Debug, Clone, Copy)]
struct GroupMem {
    resident: Bytes,
    swapped: Bytes,
    hard: Bytes,
    soft: Bytes,
}

/// The host memory manager.
#[derive(Debug, Clone)]
pub struct MemSim {
    cfg: MemSimConfig,
    groups: BTreeMap<CgroupId, GroupMem>,
    kswapd: KswapdState,
    /// Cumulative bytes ever moved to swap (reporting).
    swap_out_total: Bytes,
}

impl MemSim {
    /// A memory manager with no registered containers.
    pub fn new(cfg: MemSimConfig) -> MemSim {
        cfg.watermarks.validate();
        MemSim {
            cfg,
            groups: BTreeMap::new(),
            kswapd: KswapdState::Idle,
            swap_out_total: Bytes::ZERO,
        }
    }

    /// The host memory configuration.
    pub fn config(&self) -> &MemSimConfig {
        &self.cfg
    }

    /// Physical memory size.
    pub fn total(&self) -> Bytes {
        self.cfg.total
    }

    /// The kswapd watermarks.
    pub fn watermarks(&self) -> &Watermarks {
        &self.cfg.watermarks
    }

    /// System-wide free physical memory (`cfree` in Algorithm 2).
    pub fn free(&self) -> Bytes {
        let used: Bytes = self.groups.values().map(|g| g.resident).sum();
        self.cfg.total.saturating_sub(used)
    }

    /// Free space left on the swap device.
    pub fn swap_free(&self) -> Bytes {
        let used: Bytes = self.groups.values().map(|g| g.swapped).sum();
        self.cfg.swap.saturating_sub(used)
    }

    /// Whether kswapd is actively reclaiming.
    pub fn is_reclaiming(&self) -> bool {
        self.kswapd.is_reclaiming()
    }

    /// Cumulative bytes ever moved to swap.
    pub fn swap_out_total(&self) -> Bytes {
        self.swap_out_total
    }

    /// Register a container's memory cgroup. Limits default to host memory
    /// where unset (soft falls back to hard, then host).
    pub fn register(&mut self, id: CgroupId, ctl: MemController) {
        assert!(ctl.is_consistent(), "soft limit must not exceed hard limit");
        let hard = ctl.hard_limit_or(self.cfg.total);
        let soft = ctl.soft_limit_or(self.cfg.total);
        let prev = self.groups.insert(
            id,
            GroupMem {
                resident: Bytes::ZERO,
                swapped: Bytes::ZERO,
                hard,
                soft,
            },
        );
        assert!(prev.is_none(), "cgroup {id:?} already registered");
    }

    /// Change limits of a live container (e.g. `docker update`).
    pub fn set_limits(&mut self, id: CgroupId, ctl: MemController) {
        assert!(ctl.is_consistent());
        let hard = ctl.hard_limit_or(self.cfg.total);
        let soft = ctl.soft_limit_or(self.cfg.total);
        let g = self.groups.get_mut(&id).expect("unknown cgroup");
        g.hard = hard;
        g.soft = soft;
        // Newly violated hard limit: push the excess to swap immediately.
        if g.resident > g.hard {
            let excess = g.resident - g.hard;
            g.resident = g.hard;
            g.swapped += excess;
            self.swap_out_total += excess;
        }
    }

    /// Remove a container, releasing all its memory and swap.
    pub fn unregister(&mut self, id: CgroupId) {
        self.groups.remove(&id);
    }

    /// Resident memory charged to the container
    /// (`memory.usage_in_bytes` — `cmem` in Algorithm 2).
    pub fn usage(&self, id: CgroupId) -> Bytes {
        self.groups.get(&id).map_or(Bytes::ZERO, |g| g.resident)
    }

    /// Bytes of the container currently on swap.
    pub fn swapped(&self, id: CgroupId) -> Bytes {
        self.groups.get(&id).map_or(Bytes::ZERO, |g| g.swapped)
    }

    /// Resident + swapped — everything the container has allocated.
    pub fn footprint(&self, id: CgroupId) -> Bytes {
        self.groups
            .get(&id)
            .map_or(Bytes::ZERO, |g| g.resident + g.swapped)
    }

    /// Fraction of the container's footprint that lives on swap, in
    /// `[0, 1]`. Runtime models turn this into mutator slowdown.
    pub fn swapped_fraction(&self, id: CgroupId) -> f64 {
        self.groups
            .get(&id)
            .map_or(0.0, |g| g.swapped.ratio(g.resident + g.swapped))
    }

    /// The container's resolved hard limit.
    pub fn hard_limit(&self, id: CgroupId) -> Option<Bytes> {
        self.groups.get(&id).map(|g| g.hard)
    }

    /// The container's resolved soft limit.
    pub fn soft_limit(&self, id: CgroupId) -> Option<Bytes> {
        self.groups.get(&id).map(|g| g.soft)
    }

    /// Charge `amount` bytes to `id`.
    ///
    /// Enforcement order mirrors the kernel: the per-cgroup hard limit
    /// first (overflow of this container goes to its own swap), then the
    /// physical-memory constraint (direct reclaim swaps out other
    /// containers' pages, over-soft-limit victims first).
    pub fn charge(&mut self, id: CgroupId, amount: Bytes) -> ChargeOutcome {
        if amount.is_zero() {
            return ChargeOutcome::Charged {
                swapped_out: Bytes::ZERO,
            };
        }
        let g = *self.groups.get(&id).expect("unknown cgroup");

        // Split the charge into what may stay resident and what must swap.
        let resident_room = g.hard.saturating_sub(g.resident);
        let to_resident = amount.min(resident_room);
        let to_swap_self = amount - to_resident;

        // Physical constraint for the resident part.
        let free = self.free();
        let reclaim_needed = to_resident.saturating_sub(free);
        if to_swap_self + reclaim_needed > self.swap_free() {
            return ChargeOutcome::OomKilled;
        }
        let mut swapped_out = Bytes::ZERO;
        if !reclaim_needed.is_zero() {
            let done = self.direct_reclaim(reclaim_needed, Some(id));
            if done < reclaim_needed {
                return ChargeOutcome::OomKilled;
            }
            swapped_out += done;
        }

        let g = self.groups.get_mut(&id).expect("unknown cgroup");
        g.resident += to_resident;
        g.swapped += to_swap_self;
        swapped_out += to_swap_self;
        self.swap_out_total += to_swap_self;
        ChargeOutcome::Charged { swapped_out }
    }

    /// Release `amount` bytes from `id`. Swapped pages are released first
    /// (they are the cold pages a shrinking heap returns), then resident
    /// ones. Releasing more than the footprint is clamped.
    pub fn uncharge(&mut self, id: CgroupId, amount: Bytes) {
        let g = self.groups.get_mut(&id).expect("unknown cgroup");
        let from_swap = amount.min(g.swapped);
        g.swapped -= from_swap;
        let rest = amount - from_swap;
        g.resident = g.resident.saturating_sub(rest);
    }

    /// One kswapd step covering `dt` of simulated time: update the state
    /// machine and, when reclaiming, move up to `reclaim_rate × dt` bytes
    /// from over-soft-limit containers to swap ("containers whose memory
    /// usage exceeds their soft limits gradually reclaim memory", §2.1).
    pub fn kswapd_step(&mut self, dt: arv_sim_core::SimDuration) {
        self.kswapd = self.kswapd.step(self.free(), &self.cfg.watermarks);
        if !self.kswapd.is_reclaiming() {
            return;
        }
        let budget = self.cfg.reclaim_rate_per_sec.mul_f64(dt.as_secs_f64());
        let need = self
            .cfg
            .watermarks
            .high
            .saturating_sub(self.free())
            .min(budget);
        if !need.is_zero() {
            self.soft_limit_reclaim(need);
        }
        // Re-evaluate: reclaim may have pushed free memory past `high`.
        self.kswapd = self.kswapd.step(self.free(), &self.cfg.watermarks);
    }

    /// Reclaim up to `target` bytes from containers above their soft
    /// limit, proportionally to each one's excess (LRU scanning pressures
    /// every offending cgroup, not one victim at a time). Returns the
    /// amount actually reclaimed.
    fn soft_limit_reclaim(&mut self, target: Bytes) -> Bytes {
        let victims: Vec<(CgroupId, Bytes)> = self
            .groups
            .iter()
            .filter_map(|(id, g)| {
                let excess = g.resident.saturating_sub(g.soft);
                (!excess.is_zero()).then_some((*id, excess))
            })
            .collect();
        let total_excess: Bytes = victims.iter().map(|(_, e)| *e).sum();
        if total_excess.is_zero() {
            return Bytes::ZERO;
        }
        let goal = target.min(total_excess).min(self.swap_free());

        let mut reclaimed = Bytes::ZERO;
        for (id, excess) in victims {
            let take = goal.mul_f64(excess.ratio(total_excess)).min(excess);
            let g = self.groups.get_mut(&id).expect("victim exists");
            g.resident -= take;
            g.swapped += take;
            reclaimed += take;
        }
        self.swap_out_total += reclaimed;
        reclaimed
    }

    /// Direct reclaim: free `target` bytes of physical memory immediately,
    /// taking from over-soft-limit containers first and then
    /// indiscriminately from everyone (§3.1: below `min_watermark`, kswapd
    /// "indiscriminately frees memory from any containers"). `exclude`
    /// protects the currently charging container from self-eviction of the
    /// pages it is about to use.
    fn direct_reclaim(&mut self, target: Bytes, exclude: Option<CgroupId>) -> Bytes {
        let mut reclaimed = self.soft_limit_reclaim(target);
        if reclaimed >= target {
            return reclaimed;
        }
        // Indiscriminate pass: take proportionally to resident size.
        let victims: Vec<(CgroupId, Bytes)> = self
            .groups
            .iter()
            .filter(|(id, g)| Some(**id) != exclude && !g.resident.is_zero())
            .map(|(id, g)| (*id, g.resident))
            .collect();
        let total_resident: Bytes = victims.iter().map(|(_, r)| *r).sum();
        if total_resident.is_zero() {
            return reclaimed;
        }
        let goal = (target - reclaimed)
            .min(total_resident)
            .min(self.swap_free());
        let mut swap_used = Bytes::ZERO;
        for (id, resident) in &victims {
            let take = goal.mul_f64(resident.ratio(total_resident)).min(*resident);
            let g = self.groups.get_mut(id).expect("victim exists");
            g.resident -= take;
            g.swapped += take;
            reclaimed += take;
            swap_used += take;
        }
        // Proportional rounding may leave a few bytes short of `goal`;
        // take the remainder from the largest victim.
        if reclaimed < target && !victims.is_empty() {
            let (big, _) = victims
                .iter()
                .max_by_key(|(_, r)| r.as_u64())
                .expect("non-empty");
            let swap_left = self
                .cfg
                .swap
                .saturating_sub(self.groups.values().map(|g| g.swapped).sum());
            let g = self.groups.get_mut(big).expect("victim exists");
            let take = (target - reclaimed).min(g.resident).min(swap_left);
            g.resident -= take;
            g.swapped += take;
            reclaimed += take;
            swap_used += take;
        }
        self.swap_out_total += swap_used;
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gid(n: u32) -> CgroupId {
        CgroupId(n)
    }

    fn small_host() -> MemSim {
        // 1 GiB host with tight watermarks for fast tests.
        let mut cfg = MemSimConfig::with_total(Bytes::from_gib(1));
        cfg.watermarks = Watermarks {
            min: Bytes::from_mib(16),
            low: Bytes::from_mib(32),
            high: Bytes::from_mib(64),
        };
        MemSim::new(cfg)
    }

    #[test]
    fn charge_and_uncharge_roundtrip() {
        let mut m = small_host();
        m.register(gid(0), MemController::unlimited());
        assert!(m.charge(gid(0), Bytes::from_mib(100)).is_ok());
        assert_eq!(m.usage(gid(0)), Bytes::from_mib(100));
        assert_eq!(m.free(), Bytes::from_gib(1) - Bytes::from_mib(100));
        m.uncharge(gid(0), Bytes::from_mib(40));
        assert_eq!(m.usage(gid(0)), Bytes::from_mib(60));
    }

    #[test]
    fn hard_limit_overflow_goes_to_own_swap() {
        let mut m = small_host();
        m.register(
            gid(0),
            MemController::unlimited().with_hard_limit(Bytes::from_mib(100)),
        );
        let out = m.charge(gid(0), Bytes::from_mib(150));
        assert_eq!(
            out,
            ChargeOutcome::Charged {
                swapped_out: Bytes::from_mib(50)
            }
        );
        assert_eq!(m.usage(gid(0)), Bytes::from_mib(100));
        assert_eq!(m.swapped(gid(0)), Bytes::from_mib(50));
        assert_eq!(m.footprint(gid(0)), Bytes::from_mib(150));
        assert!((m.swapped_fraction(gid(0)) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn oom_when_swap_exhausted() {
        let mut cfg = MemSimConfig::with_total(Bytes::from_mib(512));
        cfg.swap = Bytes::from_mib(64);
        cfg.watermarks = Watermarks {
            min: Bytes::ZERO,
            low: Bytes::ZERO,
            high: Bytes::ZERO,
        };
        let mut m = MemSim::new(cfg);
        m.register(
            gid(0),
            MemController::unlimited().with_hard_limit(Bytes::from_mib(128)),
        );
        // 128 resident + 64 swap is the most this group can ever hold.
        assert!(m.charge(gid(0), Bytes::from_mib(192)).is_ok());
        assert_eq!(
            m.charge(gid(0), Bytes::from_mib(1)),
            ChargeOutcome::OomKilled
        );
        // State unchanged by the failed charge.
        assert_eq!(m.footprint(gid(0)), Bytes::from_mib(192));
    }

    #[test]
    fn kswapd_wakes_and_reclaims_over_soft_groups() {
        let mut m = small_host();
        m.register(
            gid(0),
            MemController::unlimited().with_soft_limit(Bytes::from_mib(200)),
        );
        m.register(gid(1), MemController::unlimited());
        // Group 0 well over its soft limit; group 1 fills the rest so free
        // drops below `low` (32 MiB): 1024 - 600 - 400 = 24 MiB free.
        assert!(m.charge(gid(0), Bytes::from_mib(600)).is_ok());
        assert!(m.charge(gid(1), Bytes::from_mib(400)).is_ok());
        assert!(m.free() < m.watermarks().low);

        m.kswapd_step(arv_sim_core::SimDuration::from_millis(24));
        assert!(m.is_reclaiming() || m.free() >= m.watermarks().high);
        // Reclaim must have taken pages from group 0 (the over-soft one).
        assert!(m.swapped(gid(0)) > Bytes::ZERO);
        assert_eq!(m.swapped(gid(1)), Bytes::ZERO);
        // Run to completion: free recovers to high and kswapd sleeps.
        for _ in 0..64 {
            m.kswapd_step(arv_sim_core::SimDuration::from_millis(24));
        }
        assert!(m.free() >= m.watermarks().high);
        assert!(!m.is_reclaiming());
    }

    #[test]
    fn kswapd_idle_when_memory_plentiful() {
        let mut m = small_host();
        m.register(gid(0), MemController::unlimited());
        m.charge(gid(0), Bytes::from_mib(100));
        m.kswapd_step(arv_sim_core::SimDuration::from_millis(24));
        assert!(!m.is_reclaiming());
        assert_eq!(m.swapped(gid(0)), Bytes::ZERO);
    }

    #[test]
    fn direct_reclaim_makes_room_for_new_charge() {
        let mut m = small_host();
        m.register(
            gid(0),
            MemController::unlimited().with_soft_limit(Bytes::from_mib(100)),
        );
        m.register(gid(1), MemController::unlimited());
        assert!(m.charge(gid(0), Bytes::from_mib(900)).is_ok());
        // Group 1 wants 300 MiB; only ~124 MiB free → group 0 (over soft)
        // gets swapped out to make room.
        let out = m.charge(gid(1), Bytes::from_mib(300));
        assert!(out.is_ok());
        assert_eq!(m.usage(gid(1)), Bytes::from_mib(300));
        assert!(m.swapped(gid(0)) >= Bytes::from_mib(176));
        // Physical memory is never oversubscribed.
        assert!(m.free() <= m.total());
    }

    #[test]
    fn uncharge_releases_swap_first() {
        let mut m = small_host();
        m.register(
            gid(0),
            MemController::unlimited().with_hard_limit(Bytes::from_mib(100)),
        );
        m.charge(gid(0), Bytes::from_mib(150));
        m.uncharge(gid(0), Bytes::from_mib(60));
        assert_eq!(m.swapped(gid(0)), Bytes::ZERO);
        assert_eq!(m.usage(gid(0)), Bytes::from_mib(90));
    }

    #[test]
    fn set_limits_enforces_new_hard_limit() {
        let mut m = small_host();
        m.register(gid(0), MemController::unlimited());
        m.charge(gid(0), Bytes::from_mib(200));
        m.set_limits(
            gid(0),
            MemController::unlimited().with_hard_limit(Bytes::from_mib(120)),
        );
        assert_eq!(m.usage(gid(0)), Bytes::from_mib(120));
        assert_eq!(m.swapped(gid(0)), Bytes::from_mib(80));
    }

    #[test]
    fn unregister_releases_everything() {
        let mut m = small_host();
        m.register(gid(0), MemController::unlimited());
        m.charge(gid(0), Bytes::from_mib(500));
        m.unregister(gid(0));
        assert_eq!(m.free(), m.total());
        assert_eq!(m.usage(gid(0)), Bytes::ZERO);
    }

    #[test]
    fn zero_charge_is_noop() {
        let mut m = small_host();
        m.register(gid(0), MemController::unlimited());
        let out = m.charge(gid(0), Bytes::ZERO);
        assert_eq!(
            out,
            ChargeOutcome::Charged {
                swapped_out: Bytes::ZERO
            }
        );
    }

    #[test]
    #[should_panic]
    fn double_register_panics() {
        let mut m = small_host();
        m.register(gid(0), MemController::unlimited());
        m.register(gid(0), MemController::unlimited());
    }

    #[test]
    fn swapped_fraction_of_unknown_group_is_zero() {
        let m = small_host();
        assert_eq!(m.swapped_fraction(gid(9)), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Physical memory is never oversubscribed and accounting balances
        /// under arbitrary charge/uncharge/kswapd sequences.
        #[test]
        fn physical_memory_never_oversubscribed(
            ops in prop::collection::vec((0u32..4, 0u32..3, 0u64..400), 1..64)
        ) {
            let mut cfg = MemSimConfig::with_total(Bytes::from_mib(1024));
            cfg.swap = Bytes::from_mib(2048);
            let mut m = MemSim::new(cfg);
            for i in 0..4 {
                m.register(
                    CgroupId(i),
                    MemController::unlimited()
                        .with_hard_limit(Bytes::from_mib(400))
                        .with_soft_limit(Bytes::from_mib(200)),
                );
            }
            for (kind, id, mib) in ops {
                let id = CgroupId(id);
                match kind {
                    0 => { let _ = m.charge(id, Bytes::from_mib(mib)); }
                    1 => m.uncharge(id, Bytes::from_mib(mib)),
                    2 => m.kswapd_step(arv_sim_core::SimDuration::from_millis(24)),
                    _ => {}
                }
                let used: u64 = (0..4).map(|i| m.usage(CgroupId(i)).as_u64()).sum();
                prop_assert!(used <= m.total().as_u64(), "oversubscribed");
                prop_assert_eq!(m.free().as_u64(), m.total().as_u64() - used);
                for i in 0..4 {
                    prop_assert!(
                        m.usage(CgroupId(i)) <= Bytes::from_mib(400),
                        "hard limit violated"
                    );
                }
            }
        }
    }
}
