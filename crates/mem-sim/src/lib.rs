//! Host memory-manager model.
//!
//! Algorithm 2 of the paper (effective memory) reads exactly four things
//! from the kernel: system-wide free memory, the kswapd watermarks, each
//! container's current usage, and whether kswapd is currently reclaiming.
//! This crate models that machinery:
//!
//! * per-cgroup **charging** against `memory.limit_in_bytes` — exceeding
//!   the hard limit swaps the container's own pages (or OOM-kills it when
//!   no swap is left), as §2.1 describes;
//! * **kswapd** with `min/low/high` watermarks — background reclaim from
//!   containers above their soft limit starts when free memory falls below
//!   `low` and runs until free memory recovers to `high`; below `min`,
//!   direct reclaim takes from any container (§3.1);
//! * a **swap device** whose per-container swapped-page count the runtime
//!   models translate into mutator slowdown (thrashing/performance
//!   collapse in Figures 11 and 12).

#![warn(missing_docs)]

pub mod kswapd;
pub mod manager;

pub use kswapd::{KswapdState, Watermarks};
pub use manager::{ChargeOutcome, MemSim, MemSimConfig};
