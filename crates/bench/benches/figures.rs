//! One Criterion benchmark per paper table/figure: each target runs the
//! corresponding experiment end-to-end (at a reduced workload scale so a
//! full `cargo bench` stays in minutes) and asserts nothing — regenerate
//! the actual numbers with `cargo run --release -p arv-experiments -- --all`.

use arv_experiments::run_figure;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SCALE: f64 = 0.05;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    // End-to-end experiment regeneration is heavyweight per iteration.
    group.sample_size(10);
    for id in arv_experiments::ALL_FIGURES {
        group.bench_function(format!("fig_{id}"), |b| {
            b.iter(|| black_box(run_figure(id, SCALE).expect("known figure")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
