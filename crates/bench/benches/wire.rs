//! Wire-tier fanout benchmark with a machine-checkable report.
//!
//! A plain harness (like the fleet bench) measuring the numbers the
//! readiness reactor was built for, writing them to `BENCH_wire.json`
//! and exiting nonzero when a threshold is breached so `ci.sh` can gate
//! on one run:
//!
//! * **Fanout** — one viewd daemon holding ≥5000 concurrent
//!   connections, every one of them answered while all stay open. The
//!   old thread-per-connection tier would need 5000 OS threads here;
//!   the reactor serves them from `loops` event loops.
//! * **Cached-read p99** — serial request/response latency for a warm
//!   `/proc/cpuinfo` read over the socket, the paper's ~µs query cost
//!   plus wire round-trip. The threshold is ms-scale: it catches a
//!   per-request copy or render regression, not scheduler noise.
//! * **Engine comparison** — the same pipelined load driven against the
//!   reactor and against the legacy threaded engine at equal cores;
//!   the reactor must not be slower. At hundreds of connections the
//!   threaded tier burns its budget context-switching, which is the
//!   pathology the reactor exists to remove.
//!
//! The client side is itself a single-threaded epoll driver (over the
//! same `arv_viewd::sys` bindings), so client scheduling never skews
//! what the server is being measured on.

use arv_cgroups::{Bytes, CgroupId};
use arv_resview::effective_cpu::CpuBounds;
use arv_resview::effective_mem::{EffectiveMemory, EffectiveMemoryConfig};
use arv_resview::EffectiveCpuConfig;
use arv_viewd::codec::{read_frame, write_frame};
use arv_viewd::sys::{Epoll, EpollEvent, EPOLLIN, EPOLLOUT};
use arv_viewd::{
    FrameDecoder, HostSpec, ServerConfig, ViewServer, WireServer, KIND_READ, MAX_RESPONSE,
};
use std::io::{self, Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Concurrent connections the fanout phase holds open at once.
const FANOUT_CONNS: usize = 5000;
/// Every fanout connection must be answered while all stay open.
const MIN_FANOUT_SERVED: usize = FANOUT_CONNS;
/// Serial warm-read samples for the latency distribution.
const P99_SAMPLES: usize = 10_000;
/// Ceiling on the warm cached-read p99 over the socket, milliseconds.
/// Release-mode round trips are tens of microseconds; this catches a
/// per-request body copy or a render on the hot path, not jitter.
const MAX_CACHED_READ_P99_MS: f64 = 5.0;
/// Connections in the engine-comparison load.
const ENGINE_CONNS: usize = 256;
/// Responses each comparison connection must collect.
const ENGINE_REQS_PER_CONN: u32 = 50;
/// The reactor must match or beat the threaded engine at equal cores.
const MIN_REACTOR_VS_THREADED: f64 = 1.0;
/// Hard wall-clock ceiling on any single drive phase.
const PHASE_DEADLINE: Duration = Duration::from_secs(120);

fn mk_server(containers: u32) -> ViewServer {
    let server = ViewServer::new(HostSpec::paper_testbed(), 8);
    for i in 0..containers {
        server.register(
            CgroupId(i),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            EffectiveMemory::new(
                Bytes::from_mib(500),
                Bytes::from_gib(1),
                Bytes::from_mib(1280),
                Bytes::from_mib(2560),
                EffectiveMemoryConfig::default(),
            ),
        );
    }
    server
}

/// A framed `KIND_READ` request for `key` from container `id`.
fn read_request(id: u32, key: &str) -> Vec<u8> {
    let payload_len = 5 + key.len();
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.push(KIND_READ);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out
}

fn sock(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("arv-bench-wire-{}-{tag}.sock", std::process::id()))
}

fn connect_retry(path: &Path) -> io::Result<UnixStream> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// One connection in the epoll client driver. At most one request is in
/// flight per connection, so writes almost never block; the pending-out
/// buffer handles the rare partial write without spinning on EPOLLOUT.
struct DriveConn {
    stream: UnixStream,
    decoder: FrameDecoder,
    pending: Vec<u8>,
    pending_at: usize,
    remaining: u32,
    interest: u32,
}

impl DriveConn {
    /// Flush pending request bytes; true if fully drained.
    fn flush(&mut self) -> io::Result<bool> {
        while self.pending_at < self.pending.len() {
            match self.stream.write(&self.pending[self.pending_at..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.pending_at += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.pending.clear();
        self.pending_at = 0;
        Ok(true)
    }

    fn queue_request(&mut self, req: &[u8]) -> io::Result<bool> {
        self.pending.extend_from_slice(req);
        self.flush()
    }
}

/// Result of one epoll-driven load phase.
struct DriveResult {
    served_conns: usize,
    total_responses: u64,
    elapsed: Duration,
}

/// Open `n_conns` connections, keep them all open, and collect
/// `reqs_per_conn` responses on each with at most one request in flight
/// per connection. Single-threaded, readiness-driven.
fn drive(path: &Path, n_conns: usize, reqs_per_conn: u32, req: &[u8]) -> io::Result<DriveResult> {
    let epoll = Epoll::new()?;
    let mut conns = Vec::with_capacity(n_conns);
    for i in 0..n_conns {
        let stream = connect_retry(path)?;
        stream.set_nonblocking(true)?;
        epoll.add(stream.as_raw_fd(), EPOLLIN, i as u64)?;
        conns.push(DriveConn {
            stream,
            decoder: FrameDecoder::new(MAX_RESPONSE),
            pending: Vec::new(),
            pending_at: 0,
            remaining: reqs_per_conn,
            interest: EPOLLIN,
        });
    }

    let started = Instant::now();
    // Kick: one request per connection.
    for (i, conn) in conns.iter_mut().enumerate() {
        send_one(&epoll, conn, i, req)?;
    }

    let target = n_conns as u64 * u64::from(reqs_per_conn);
    let mut done = 0u64;
    let mut events = vec![EpollEvent::zeroed(); 1024];
    let mut buf = vec![0u8; 64 * 1024];
    while done < target {
        if started.elapsed() > PHASE_DEADLINE {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("drive phase stalled at {done}/{target} responses"),
            ));
        }
        let n = epoll.wait(&mut events, 100)?;
        for ev in events.iter().take(n) {
            let i = ev.data as usize;
            let Some(conn) = conns.get_mut(i) else {
                continue;
            };
            // Finish any partial request first.
            if !conn.pending.is_empty() && conn.flush()? {
                set_interest(&epoll, conn, i, EPOLLIN)?;
            }
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!("server closed connection {i} mid-load"),
                        ))
                    }
                    Ok(got) => {
                        conn.decoder.feed(&buf[..got]);
                        while let Some(_frame) = conn.decoder.next_frame().map_err(|e| {
                            io::Error::new(io::ErrorKind::InvalidData, e.to_string())
                        })? {
                            done += 1;
                            conn.remaining -= 1;
                            if conn.remaining > 0 {
                                send_one(&epoll, conn, i, req)?;
                            }
                        }
                        if conn.remaining == 0 {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            }
        }
    }
    let elapsed = started.elapsed();
    let served = conns.iter().filter(|c| c.remaining == 0).count();
    Ok(DriveResult {
        served_conns: served,
        total_responses: done,
        elapsed,
    })
}

fn send_one(epoll: &Epoll, conn: &mut DriveConn, i: usize, req: &[u8]) -> io::Result<()> {
    if conn.queue_request(req)? {
        set_interest(epoll, conn, i, EPOLLIN)
    } else {
        set_interest(epoll, conn, i, EPOLLIN | EPOLLOUT)
    }
}

fn set_interest(epoll: &Epoll, conn: &mut DriveConn, i: usize, want: u32) -> io::Result<()> {
    if conn.interest != want {
        conn.interest = want;
        epoll.modify(conn.stream.as_raw_fd(), want, i as u64)?;
    }
    Ok(())
}

/// Serial warm-read p99 over a blocking connection, milliseconds.
fn bench_cached_p99(path: &Path, req: &[u8]) -> io::Result<f64> {
    let mut stream = UnixStream::connect(path)?;
    // Warm the render cache so every measured read is the cached path.
    for _ in 0..64 {
        stream.write_all(req)?;
        read_frame(&mut stream, MAX_RESPONSE)?;
    }
    let mut lat_ns = Vec::with_capacity(P99_SAMPLES);
    for _ in 0..P99_SAMPLES {
        let t0 = Instant::now();
        stream.write_all(req)?;
        let resp = read_frame(&mut stream, MAX_RESPONSE)?;
        lat_ns.push(t0.elapsed().as_nanos() as u64);
        assert!(resp.is_some(), "server closed during latency phase");
    }
    lat_ns.sort_unstable();
    let idx = ((lat_ns.len() as f64 * 0.99) as usize).min(lat_ns.len() - 1);
    Ok(lat_ns[idx] as f64 / 1e6)
}

/// Requests per second for one engine under the pipelined load, best of
/// `trials` runs against a fresh daemon each time.
fn bench_engine(threaded: bool, trials: u32, req: &[u8]) -> io::Result<f64> {
    let mut best = 0.0f64;
    for trial in 0..trials {
        let cfg = ServerConfig::builder()
            .max_connections(ENGINE_CONNS + 16)
            .rate_burst(1_000_000)
            .rate_refill_per_sec(1_000_000.0)
            .write_deadline(Duration::from_secs(30))
            .loops(1)
            .threaded(threaded)
            .build()?;
        let tag = if threaded { "thr" } else { "rea" };
        let server =
            WireServer::spawn_with_config(mk_server(64), sock(&format!("{tag}{trial}")), cfg)?;
        let r = drive(
            server.socket_path(),
            ENGINE_CONNS,
            ENGINE_REQS_PER_CONN,
            req,
        )?;
        best = best.max(r.total_responses as f64 / r.elapsed.as_secs_f64());
        server.shutdown();
    }
    Ok(best)
}

fn main() {
    let req = read_request(42, "/proc/cpuinfo");

    // Fanout + latency share one big daemon.
    let fanout_cfg = ServerConfig::builder()
        .max_connections(FANOUT_CONNS + 64)
        .rate_burst(1_000_000)
        .rate_refill_per_sec(1_000_000.0)
        .write_deadline(Duration::from_secs(30))
        .build()
        .expect("fanout config");
    let server = WireServer::spawn_with_config(mk_server(64), sock("fanout"), fanout_cfg)
        .expect("spawn fanout daemon");
    // Prime the cache so the fanout burst is served from shared images.
    {
        let mut s = UnixStream::connect(server.socket_path()).expect("prime connect");
        write_frame(&mut s, &req[4..]).expect("prime write");
        read_frame(&mut s, MAX_RESPONSE).expect("prime read");
    }
    let cached_read_p99_ms = bench_cached_p99(server.socket_path(), &req).expect("latency phase");
    let fanout = drive(server.socket_path(), FANOUT_CONNS, 1, &req).expect("fanout phase");
    server.shutdown();

    let reactor_reqs_per_sec = bench_engine(false, 2, &req).expect("reactor engine phase");
    let threaded_reqs_per_sec = bench_engine(true, 2, &req).expect("threaded engine phase");
    let reactor_vs_threaded = reactor_reqs_per_sec / threaded_reqs_per_sec.max(f64::EPSILON);

    let json = format!(
        "{{\n  \"bench\": \"wire\",\n  \
         \"fanout_conns\": {FANOUT_CONNS},\n  \
         \"fanout_served\": {},\n  \
         \"fanout_drain_secs\": {:.3},\n  \
         \"cached_read_p99_ms\": {cached_read_p99_ms:.4},\n  \
         \"reactor_reqs_per_sec\": {reactor_reqs_per_sec:.0},\n  \
         \"threaded_reqs_per_sec\": {threaded_reqs_per_sec:.0},\n  \
         \"reactor_vs_threaded\": {reactor_vs_threaded:.3},\n  \"thresholds\": {{\n    \
         \"min_fanout_served\": {MIN_FANOUT_SERVED},\n    \
         \"max_cached_read_p99_ms\": {MAX_CACHED_READ_P99_MS},\n    \
         \"min_reactor_vs_threaded\": {MIN_REACTOR_VS_THREADED}\n  }}\n}}\n",
        fanout.served_conns,
        fanout.elapsed.as_secs_f64(),
    );
    // Cargo runs bench binaries with the package as cwd; anchor the
    // report at the workspace root where ci.sh checks for it.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wire.json");
    std::fs::write(&out, &json).expect("write BENCH_wire.json");
    print!("{json}");

    let mut failed = false;
    if fanout.served_conns < MIN_FANOUT_SERVED {
        eprintln!(
            "FAIL: fanout served {} of {FANOUT_CONNS} concurrent connections",
            fanout.served_conns
        );
        failed = true;
    }
    if cached_read_p99_ms > MAX_CACHED_READ_P99_MS {
        eprintln!("FAIL: cached-read p99 {cached_read_p99_ms:.4} ms > {MAX_CACHED_READ_P99_MS} ms");
        failed = true;
    }
    if reactor_vs_threaded < MIN_REACTOR_VS_THREADED {
        eprintln!(
            "FAIL: reactor at {reactor_reqs_per_sec:.0} req/s is slower than the threaded \
             engine at {threaded_reqs_per_sec:.0} req/s (ratio {reactor_vs_threaded:.3})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("wire bench: all thresholds met");
}
