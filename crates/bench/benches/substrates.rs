//! Substrate benchmarks: how fast the simulated host itself advances —
//! the number that bounds every experiment sweep.

use arv_cgroups::Bytes;
use arv_container::{ContainerSpec, SimHost};
use arv_mem::{MemSim, MemSimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_host_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_host_step");
    for n in [1u32, 5, 10, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut host = SimHost::paper_testbed();
            let ids: Vec<_> = (0..n)
                .map(|i| host.launch(&ContainerSpec::new(format!("c{i}"), 20).cpus(10.0)))
                .collect();
            b.iter(|| {
                let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 8)).collect();
                black_box(host.step(&demands))
            })
        });
    }
    group.finish();
}

fn bench_memory_charging(c: &mut Criterion) {
    c.bench_function("mem_charge_uncharge", |b| {
        let mut mem = MemSim::new(MemSimConfig::paper_testbed());
        mem.register(
            arv_cgroups::CgroupId(0),
            arv_cgroups::MemController::unlimited().with_hard_limit(Bytes::from_gib(64)),
        );
        b.iter(|| {
            let out = mem.charge(arv_cgroups::CgroupId(0), Bytes::from_mib(64));
            black_box(out);
            mem.uncharge(arv_cgroups::CgroupId(0), Bytes::from_mib(64));
        })
    });

    c.bench_function("kswapd_step_under_pressure", |b| {
        let mut mem = MemSim::new(MemSimConfig::with_total(Bytes::from_gib(4)));
        for i in 0..8 {
            mem.register(
                arv_cgroups::CgroupId(i),
                arv_cgroups::MemController::unlimited().with_soft_limit(Bytes::from_mib(128)),
            );
            let _ = mem.charge(arv_cgroups::CgroupId(i), Bytes::from_mib(500));
        }
        b.iter(|| {
            mem.kswapd_step(arv_sim_core::SimDuration::from_millis(24));
            black_box(mem.free())
        })
    });
}

fn bench_container_lifecycle(c: &mut Criterion) {
    c.bench_function("container_launch_terminate", |b| {
        let mut host = SimHost::paper_testbed();
        b.iter(|| {
            let id = host.launch(&ContainerSpec::new("bench", 20).cpus(4.0));
            black_box(host.effective_cpu(id));
            host.terminate(id);
        })
    });
}

criterion_group!(
    benches,
    bench_host_step,
    bench_memory_charging,
    bench_container_lifecycle
);
criterion_main!(benches);
