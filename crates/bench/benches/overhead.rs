//! §5.4 overhead microbenchmarks.
//!
//! The paper reports ~1 µs per `sys_namespace` update and 5 µs / 100 µs
//! per effective-CPU / effective-memory query (their query path crosses
//! the kernel through `sysconf`; ours is an in-process atomic load, so
//! the absolute query cost is far lower — the claim that matters is that
//! both paths are negligible against the 24 ms update period).

use arv_cgroups::{Bytes, CgroupId};
use arv_resview::effective_cpu::{CpuBounds, CpuSample};
use arv_resview::effective_mem::{EffectiveMemory, EffectiveMemoryConfig, MemSample};
use arv_resview::live::{LiveRegistry, LiveSample, NsCell};
use arv_resview::EffectiveCpuConfig;
use arv_sim_core::SimDuration;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn mk_cell(reg: &LiveRegistry, id: u32) -> Arc<NsCell> {
    reg.register(
        CgroupId(id),
        CpuBounds {
            lower: 4,
            upper: 10,
        },
        EffectiveCpuConfig::default(),
        EffectiveMemory::new(
            Bytes::from_mib(500),
            Bytes::from_gib(1),
            Bytes::from_mib(1280),
            Bytes::from_mib(2560),
            EffectiveMemoryConfig::default(),
        ),
    )
}

fn sample() -> LiveSample {
    let t = SimDuration::from_millis(24);
    LiveSample {
        cpu: CpuSample {
            usage: t * 4,
            period: t,
            slack: t,
        },
        mem: MemSample {
            free: Bytes::from_gib(64),
            usage: Bytes::from_mib(480),
            reclaiming: false,
        },
    }
}

fn bench_overhead(c: &mut Criterion) {
    let registry = LiveRegistry::new();
    let cell = mk_cell(&registry, 0);
    let s = sample();

    // The paper's "update to a sys_namespace takes 1 µs".
    c.bench_function("sys_namespace_update", |b| {
        b.iter(|| cell.apply(black_box(s)))
    });

    // The container-side sysconf query (paper: 5 µs effective CPU).
    c.bench_function("query_effective_cpu", |b| {
        b.iter(|| black_box(cell.effective_cpu()))
    });

    // The memory query (paper: 100 µs via multiple sysinfo files).
    c.bench_function("query_effective_memory", |b| {
        b.iter(|| black_box(cell.effective_memory()))
    });

    // Registry lookup + query — the path a fresh process takes.
    c.bench_function("registry_lookup_and_query", |b| {
        b.iter(|| {
            let cell = registry.get(black_box(CgroupId(0))).unwrap();
            black_box(cell.effective_cpu())
        })
    });

    // Updating a full fleet of 100 namespaces, as one monitor pass does.
    let fleet_registry = LiveRegistry::new();
    let fleet: Vec<_> = (0..100).map(|i| mk_cell(&fleet_registry, i)).collect();
    c.bench_function("monitor_pass_100_containers", |b| {
        b.iter(|| {
            for cell in &fleet {
                cell.apply(black_box(s));
            }
        })
    });

    // Queries racing the updater (the no-locking claim of §5.4).
    let contended = Arc::clone(&cell);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let updater = std::thread::spawn(move || {
        let s = sample();
        while !stop2.load(std::sync::atomic::Ordering::Acquire) {
            contended.apply(s);
        }
    });
    c.bench_function("query_under_concurrent_updates", |b| {
        b.iter(|| black_box(cell.effective_cpu()))
    });
    stop.store(true, std::sync::atomic::Ordering::Release);
    updater.join().unwrap();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
