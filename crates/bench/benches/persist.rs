//! Persistence benchmarks with a machine-checkable report.
//!
//! Plain-harness companion to `fleet.rs`: it measures the numbers the
//! durability design budgets for — the cost of one journal delta
//! append (encode + CRC + store write), replay throughput through
//! `restore`, and the tax the fault-injecting store wrapper adds to a
//! clean append path — writes them to `BENCH_persist.json`, and exits
//! nonzero if any threshold is breached, so `ci.sh` can gate on it
//! with a single run.
//!
//! Thresholds are deliberately loose (an order of magnitude under the
//! release-mode numbers on a laptop): they catch algorithmic
//! regressions — a re-encode of the whole journal per append, an
//! O(journal) seek inside the store, per-byte RNG draws in the fault
//! wrapper — not machine noise.

use arv_persist::{restore, FaultyStore, Journal, Snapshot, StoreFaults, ViewState};
use std::time::Instant;

/// Delta records appended per trial.
const RECORDS: u64 = 20_000;
/// Records replayed by the restore trial.
const RESTORE_RECORDS: u64 = 10_000;

/// Ceiling for one delta append + group-commit share, nanoseconds.
/// An append is a fixed-size encode, a CRC, and a memcpy into the
/// store; debug builds land well under this, and a per-append
/// re-encode of the journal blows straight through it.
const MAX_APPEND_NS_PER_RECORD: f64 = 40_000.0;
/// Floor for records replayed per second through `restore`.
const MIN_RESTORE_RECORDS_PER_SEC: f64 = 50_000.0;
/// Ceiling on the fault-wrapper tax: the same append workload over a
/// `FaultyStore` (all probabilistic axes armed at low rates) relative
/// to the plain in-memory store. The wrapper draws O(1) random bits
/// per call, so anything past this ratio means fault injection leaked
/// a per-byte cost onto the hot path. Both sides are min-of-3.
const MAX_FAULTY_OVERHEAD_RATIO: f64 = 3.0;

fn delta(i: u64) -> ViewState {
    let mem = 256 + (i % 512);
    ViewState {
        id: (i % 64) as u32,
        e_cpu: 1 + (i % 16) as u32,
        e_mem: mem,
        e_avail: mem / 2,
        last_tick: i,
    }
}

/// Seconds for `RECORDS` appends (group-commit sync every 16) on the
/// given journal; errors from injected faults are counted, not fatal.
fn append_workload(journal: &mut Journal) -> f64 {
    let start = Instant::now();
    for i in 0..RECORDS {
        journal.set_tick(i);
        let _ = journal.append_delta(&delta(i), i);
        if i % 16 == 15 {
            let _ = journal.sync();
        }
    }
    let _ = journal.sync();
    start.elapsed().as_secs_f64()
}

/// Min-of-3 append workload over a fresh clean journal.
fn clean_append_secs() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut journal = Journal::new();
        best = best.min(append_workload(&mut journal));
    }
    best
}

/// Min-of-3 append workload over a fresh fault-injecting journal.
fn faulty_append_secs() -> f64 {
    let faults = StoreFaults {
        torn_prob: 0.01,
        write_err_prob: 0.01,
        bit_rot_prob: 0.01,
        ..StoreFaults::default()
    };
    let mut best = f64::INFINITY;
    for trial in 0..3u64 {
        // A fault can land on the header write itself; walk seeds
        // until the journal opens (deterministic per trial).
        let mut seed = trial * 1_000 + 1;
        let mut journal = loop {
            match Journal::with_store(Box::new(FaultyStore::new(seed, faults))) {
                Ok(j) => break j,
                Err(_) => seed += 1,
            }
        };
        best = best.min(append_workload(&mut journal));
    }
    best
}

/// Records replayed per second through `restore` over a journal of one
/// checkpoint plus `RESTORE_RECORDS` deltas.
fn restore_records_per_sec() -> f64 {
    let mut journal = Journal::new();
    let mut snap = Snapshot::at(0);
    for c in 0..64u64 {
        snap.entries.push(delta(c));
    }
    journal.checkpoint(&snap).expect("clean checkpoint");
    for i in 0..RESTORE_RECORDS {
        journal.append_delta(&delta(i), i).expect("clean append");
    }
    journal.sync().expect("clean sync");
    let bytes = journal.as_bytes().to_vec();

    let trials = 10u32;
    let start = Instant::now();
    let mut replayed = 0u64;
    for _ in 0..trials {
        let report = restore(&bytes);
        assert_eq!(
            report.truncated_records, 0,
            "clean journal must replay fully"
        );
        replayed += report.applied_deltas;
    }
    assert_eq!(replayed, u64::from(trials) * RESTORE_RECORDS);
    replayed as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let clean_secs = clean_append_secs();
    let append_ns_per_record = clean_secs * 1e9 / RECORDS as f64;
    let restore_per_sec = restore_records_per_sec();
    let faulty_secs = faulty_append_secs();
    let faulty_overhead_ratio = faulty_secs / clean_secs.max(f64::EPSILON);

    let json = format!(
        "{{\n  \"bench\": \"persist\",\n  \"records\": {RECORDS},\n  \
         \"append_ns_per_record\": {append_ns_per_record:.0},\n  \
         \"restore_records_per_sec\": {restore_per_sec:.0},\n  \
         \"faulty_overhead_ratio\": {faulty_overhead_ratio:.3},\n  \"thresholds\": {{\n    \
         \"max_append_ns_per_record\": {MAX_APPEND_NS_PER_RECORD:.0},\n    \
         \"min_restore_records_per_sec\": {MIN_RESTORE_RECORDS_PER_SEC:.0},\n    \
         \"max_faulty_overhead_ratio\": {MAX_FAULTY_OVERHEAD_RATIO}\n  }}\n}}\n",
    );
    // Cargo runs bench binaries with the package as cwd; anchor the
    // report at the workspace root where ci.sh checks for it.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_persist.json");
    std::fs::write(&out, &json).expect("write BENCH_persist.json");
    print!("{json}");

    let mut failed = false;
    if append_ns_per_record > MAX_APPEND_NS_PER_RECORD {
        eprintln!(
            "FAIL: journal append {append_ns_per_record:.0} ns/record > \
             {MAX_APPEND_NS_PER_RECORD:.0} ns"
        );
        failed = true;
    }
    if restore_per_sec < MIN_RESTORE_RECORDS_PER_SEC {
        eprintln!(
            "FAIL: restore {restore_per_sec:.0} records/s < {MIN_RESTORE_RECORDS_PER_SEC:.0}"
        );
        failed = true;
    }
    if faulty_overhead_ratio > MAX_FAULTY_OVERHEAD_RATIO {
        eprintln!(
            "FAIL: faulty-store overhead {faulty_overhead_ratio:.3}x > \
             {MAX_FAULTY_OVERHEAD_RATIO}x (faulty {faulty_secs:.4}s vs clean {clean_secs:.4}s)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("persist bench: all thresholds met");
}
