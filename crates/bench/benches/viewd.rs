//! `arv-viewd` serving-path microbenchmarks.
//!
//! The daemon's two serving paths bracket the §5.4 query cost: a cached
//! hit is a generation load plus an `Arc` clone out of a fixed-slot
//! cache, an uncached render builds a whole `/proc` file image from one
//! snapshot. The experiment runner (`--fig viewd`) reports the same
//! paths from the daemon's own histograms; these benches measure them
//! with Criterion statistics.

use arv_cgroups::{Bytes, CgroupId};
use arv_resview::effective_cpu::CpuBounds;
use arv_resview::effective_mem::{EffectiveMemory, EffectiveMemoryConfig};
use arv_resview::{EffectiveCpuConfig, Sysconf};
use arv_viewd::{HostSpec, ViewServer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn mk_server(containers: u32) -> ViewServer {
    let server = ViewServer::new(HostSpec::paper_testbed(), 8);
    for i in 0..containers {
        server.register(
            CgroupId(i),
            CpuBounds {
                lower: 4,
                upper: 10,
            },
            EffectiveCpuConfig::default(),
            EffectiveMemory::new(
                Bytes::from_mib(500),
                Bytes::from_gib(1),
                Bytes::from_mib(1280),
                Bytes::from_mib(2560),
                EffectiveMemoryConfig::default(),
            ),
        );
    }
    server
}

fn bench_viewd(c: &mut Criterion) {
    let server = mk_server(100);
    let client = server.client();
    let id = Some(CgroupId(42));

    // Warm the cache, then measure the steady-state hit path.
    client.read(id, "/proc/cpuinfo");
    c.bench_function("viewd_cached_hit_cpuinfo", |b| {
        b.iter(|| black_box(client.read(id, "/proc/cpuinfo")))
    });

    // Publishing before every read forces a render each time.
    let mut cpus = 4u32;
    c.bench_function("viewd_uncached_render_cpuinfo", |b| {
        b.iter(|| {
            cpus = 4 + (cpus + 1) % 6;
            let view = Bytes::from_mib(100 * u64::from(cpus));
            server.mirror(CgroupId(42), cpus, view, view);
            black_box(client.read(id, "/proc/cpuinfo"))
        })
    });

    c.bench_function("viewd_sysconf_nprocessors", |b| {
        b.iter(|| black_box(client.sysconf(id, Sysconf::NprocessorsOnln)))
    });

    // Sharded-registry lookup under a 100-container population.
    c.bench_function("viewd_lookup_miss_unknown_container", |b| {
        b.iter(|| black_box(client.read(Some(CgroupId(9999)), "/proc/cpuinfo")))
    });
}

criterion_group!(benches, bench_viewd);
criterion_main!(benches);
