//! Fleet control-plane benchmarks with a machine-checkable report.
//!
//! Unlike the Criterion benches this is a plain harness: it measures the
//! numbers the fleet design budgets for — delta-ingest throughput at
//! the controller, the cluster-rollup query cost, how many periphery
//! ticks a sequence-gap resync costs, how many ticks a promoted standby
//! needs to converge every host back to Fresh, and how many records the
//! hot standby trails the primary by in steady state — writes them to
//! `BENCH_fleet.json`, and exits nonzero if any threshold is breached,
//! so `ci.sh` can gate on it with a single run.
//!
//! Thresholds are deliberately loose (an order of magnitude under the
//! release-mode numbers on a laptop): they catch algorithmic
//! regressions — an accidental O(containers) rollup, per-entry frame
//! re-encoding — not machine noise.

use arv_fleet::{decode_frame, FleetController, FleetPolicy, Frame, Periphery, SharedLease};
use arv_persist::{Snapshot, ViewState};
use arv_telemetry::{FlightRecorder, Tracer};
use std::time::Instant;

/// Hosts × containers in the ingest fleet.
const HOSTS: u32 = 200;
const CONTAINERS: u32 = 100;
/// Incremental rounds after the initial full sync.
const ROUNDS: u32 = 20;

/// Floor for accepted delta entries per second (release builds ingest
/// millions; debug builds still clear this comfortably).
const MIN_INGEST_ENTRIES_PER_SEC: f64 = 100_000.0;
/// Ceiling for one cluster-capacity rollup, nanoseconds. The sharded
/// running totals make this O(shards); an O(containers) regression at
/// 20 000 containers blows straight through it.
const MAX_ROLLUP_QUERY_NS: f64 = 250_000.0;
/// A gap must heal in at most this many periphery observations (the
/// rejected delta that surfaces the gap, then the FULL snapshot).
const MAX_RESYNC_TICKS: u64 = 2;

/// Ceiling on the observability tax: a full ingest run with causal
/// tracing and the flight recorder armed, relative to the same run
/// with both disabled. Span folding and the waterfall observe are O(1)
/// per frame, so anything past this ratio means observability leaked
/// onto the hot path (per-entry tracing, dump freezes on clean
/// ingest). Both sides are min-of-3, which rejects scheduler noise.
const MAX_OBS_OVERHEAD_RATIO: f64 = 1.75;

/// Hosts in the replicated failover fleet (smaller than the ingest
/// fleet: the metric is convergence shape, not raw volume).
const FAILOVER_HOSTS: u32 = 32;
/// A promoted standby must converge every host back to Fresh — rollup
/// equal to ground truth, nothing partitioned — within this many
/// aggregation ticks after promotion.
const MAX_FAILOVER_TICKS_TO_FRESH: u64 = 4;
/// Ceiling on steady-state replication lag, in journal records queued
/// at the primary right before each REPL pump. One round of churn here
/// produces `FAILOVER_HOSTS × CONTAINERS` delta records; a regression
/// that re-replicates whole snapshots every round blows through 2×.
const MAX_REPL_LAG_RECORDS: u64 = 2 * (FAILOVER_HOSTS as u64) * (CONTAINERS as u64);

fn snapshot(host: u32, tick: u64, bump: u32) -> Snapshot {
    let mut snap = Snapshot::at(tick);
    for c in 0..CONTAINERS {
        let mem = 256 + u64::from((host + c) % 512);
        snap.entries.push(ViewState {
            id: c,
            e_cpu: 1 + (c + bump) % 16,
            e_mem: mem,
            e_avail: mem / 2,
            last_tick: tick,
        });
    }
    snap
}

fn pump(p: &mut Periphery, ctl: &FleetController) {
    for frame in p.take_frames() {
        if let Some(resp) = ctl.handle_frame(&frame) {
            if let Some(Frame::Ack(ack)) = decode_frame(&resp) {
                p.handle_ack(&ack);
            }
        }
    }
}

/// Accepted-entry throughput through `FleetController::handle_frame`.
fn bench_ingest(ctl: &FleetController) -> f64 {
    let mut peripheries: Vec<Periphery> = (0..HOSTS).map(Periphery::new).collect();
    let start = Instant::now();
    for round in 0..=ROUNDS {
        for (h, p) in peripheries.iter_mut().enumerate() {
            p.observe(&snapshot(h as u32, u64::from(round) + 1, round), false, 0);
            pump(p, ctl);
        }
        ctl.advance_tick();
    }
    let entries = ctl.metrics().snapshot().delta_entries;
    entries as f64 / start.elapsed().as_secs_f64()
}

/// Wall-clock seconds for one full ingest run (every host, every
/// round), min over 3 trials with a fresh controller each, with the
/// observability plane armed or disabled.
fn ingest_elapsed_secs(traced: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut ctl = FleetController::new(64, FleetPolicy::default());
        if traced {
            ctl.set_tracer(Tracer::bounded(16_384));
            ctl.set_flight_recorder(FlightRecorder::bounded(8));
        }
        let mut peripheries: Vec<Periphery> = (0..HOSTS).map(Periphery::new).collect();
        let start = Instant::now();
        for round in 0..=ROUNDS {
            for (h, p) in peripheries.iter_mut().enumerate() {
                p.observe(&snapshot(h as u32, u64::from(round) + 1, round), false, 0);
                pump(p, &ctl);
            }
            ctl.advance_tick();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Mean cost of one cluster-capacity rollup over the loaded index.
fn bench_rollup(ctl: &FleetController) -> f64 {
    let iters = 2_000u32;
    let start = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        acc = acc.wrapping_add(ctl.cluster_capacity().cpu);
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    assert!(acc > 0, "rollup must not be optimised away");
    ns
}

/// Observations from first dropped frame to totals matching again.
fn bench_resync_ticks() -> u64 {
    let ctl = FleetController::new(8, FleetPolicy::default());
    let mut p = Periphery::new(1);
    p.observe(&snapshot(1, 1, 0), false, 0);
    pump(&mut p, &ctl);

    // Lose one frame: the outbox is drained on the floor.
    p.observe(&snapshot(1, 2, 1), false, 0);
    let dropped = p.take_frames();
    assert!(!dropped.is_empty(), "the drop must lose a real frame");

    let mut ticks = 0u64;
    loop {
        ticks += 1;
        p.observe(&snapshot(1, 2 + ticks, 1), false, 0);
        pump(&mut p, &ctl);
        let want: u64 = snapshot(1, 0, 1)
            .entries
            .iter()
            .map(|e| u64::from(e.e_cpu))
            .sum();
        if ctl.cluster_capacity().cpu == want {
            return ticks;
        }
        assert!(ticks < 16, "resync never converged");
    }
}

/// Kill a replicated primary mid-stream and measure the failover shape:
/// aggregation ticks from promotion until every host is Fresh again on
/// the standby, plus the peak steady-state replication lag (records
/// queued at the primary right before each REPL pump).
fn bench_failover() -> (u64, u64) {
    let lease = SharedLease::new();
    let primary = FleetController::new(8, FleetPolicy::default());
    primary.attach_lease(lease.clone(), 1, 3);
    primary.enable_replication();
    let standby = FleetController::new(8, FleetPolicy::default());
    standby.attach_lease(lease, 2, 3);

    let mut peripheries: Vec<Periphery> = (0..FAILOVER_HOSTS).map(Periphery::new).collect();
    let mut peak_lag = 0u64;
    for round in 1..=6u64 {
        for (h, p) in peripheries.iter_mut().enumerate() {
            p.observe(&snapshot(h as u32, round, round as u32), false, 0);
            pump(p, &primary);
        }
        // Steady-state lag: what a standby trails by if the primary
        // dies right now. The first round carries the checkpoint that
        // seeds the stream, so it is not steady state.
        if round > 1 {
            peak_lag = peak_lag.max(primary.repl_backlog_records());
        }
        for frame in primary.take_repl_frames() {
            if let Some(resp) = standby.handle_frame(&frame) {
                if let Some(Frame::Ack(ack)) = decode_frame(&resp) {
                    primary.handle_repl_ack(&ack);
                }
            }
        }
        primary.advance_tick();
        standby.advance_tick();
    }

    // Crash: the primary stops ticking with the lease held; the standby
    // keeps ticking and promotes itself once the lease expires.
    let mut waited = 0u64;
    while !standby.is_leader() {
        standby.advance_tick();
        waited += 1;
        assert!(waited < 64, "standby never promoted");
    }

    // Ticks from promotion until the promoted rollup is Fresh again:
    // every periphery reconnects (re-HELLO + FULL) and ground truth
    // must match with nothing partitioned.
    let want_cpu: u64 = (0..FAILOVER_HOSTS)
        .map(|h| {
            snapshot(h, 0, 6)
                .entries
                .iter()
                .map(|e| u64::from(e.e_cpu))
                .sum::<u64>()
        })
        .sum();
    for p in peripheries.iter_mut() {
        p.on_reconnect();
    }
    let mut ticks = 0u64;
    loop {
        ticks += 1;
        for (h, p) in peripheries.iter_mut().enumerate() {
            p.observe(&snapshot(h as u32, 100 + ticks, 6), false, 0);
            pump(p, &standby);
        }
        standby.advance_tick();
        let r = standby.cluster_capacity();
        if r.partitioned == 0
            && r.cpu == want_cpu
            && r.containers == u64::from(FAILOVER_HOSTS) * u64::from(CONTAINERS)
        {
            return (ticks, peak_lag);
        }
        assert!(ticks < 32, "failover never converged to Fresh");
    }
}

fn main() {
    let ctl = FleetController::new(64, FleetPolicy::default());
    let ingest_entries_per_sec = bench_ingest(&ctl);
    let rollup_query_ns = bench_rollup(&ctl);
    let resync_ticks = bench_resync_ticks();
    let (failover_ticks_to_fresh, repl_lag_records) = bench_failover();
    let traced_secs = ingest_elapsed_secs(true);
    let untraced_secs = ingest_elapsed_secs(false);
    let obs_overhead_ratio = traced_secs / untraced_secs.max(f64::EPSILON);

    let json = format!(
        "{{\n  \"bench\": \"fleet\",\n  \"hosts\": {HOSTS},\n  \"containers\": {},\n  \
         \"ingest_entries_per_sec\": {ingest_entries_per_sec:.0},\n  \
         \"rollup_query_ns\": {rollup_query_ns:.0},\n  \
         \"periphery_resync_ticks\": {resync_ticks},\n  \
         \"failover_ticks_to_fresh\": {failover_ticks_to_fresh},\n  \
         \"repl_lag_records\": {repl_lag_records},\n  \
         \"obs_overhead_ratio\": {obs_overhead_ratio:.3},\n  \"thresholds\": {{\n    \
         \"min_ingest_entries_per_sec\": {MIN_INGEST_ENTRIES_PER_SEC:.0},\n    \
         \"max_rollup_query_ns\": {MAX_ROLLUP_QUERY_NS:.0},\n    \
         \"max_resync_ticks\": {MAX_RESYNC_TICKS},\n    \
         \"max_failover_ticks_to_fresh\": {MAX_FAILOVER_TICKS_TO_FRESH},\n    \
         \"max_repl_lag_records\": {MAX_REPL_LAG_RECORDS},\n    \
         \"max_obs_overhead_ratio\": {MAX_OBS_OVERHEAD_RATIO}\n  }}\n}}\n",
        u64::from(HOSTS) * u64::from(CONTAINERS),
    );
    // Cargo runs bench binaries with the package as cwd; anchor the
    // report at the workspace root where ci.sh checks for it.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet.json");
    std::fs::write(&out, &json).expect("write BENCH_fleet.json");
    print!("{json}");

    let mut failed = false;
    if ingest_entries_per_sec < MIN_INGEST_ENTRIES_PER_SEC {
        eprintln!(
            "FAIL: ingest {ingest_entries_per_sec:.0} entries/s < {MIN_INGEST_ENTRIES_PER_SEC:.0}"
        );
        failed = true;
    }
    if rollup_query_ns > MAX_ROLLUP_QUERY_NS {
        eprintln!("FAIL: rollup query {rollup_query_ns:.0} ns > {MAX_ROLLUP_QUERY_NS:.0} ns");
        failed = true;
    }
    if resync_ticks > MAX_RESYNC_TICKS {
        eprintln!("FAIL: resync took {resync_ticks} ticks > {MAX_RESYNC_TICKS}");
        failed = true;
    }
    if failover_ticks_to_fresh > MAX_FAILOVER_TICKS_TO_FRESH {
        eprintln!(
            "FAIL: failover took {failover_ticks_to_fresh} ticks to Fresh > \
             {MAX_FAILOVER_TICKS_TO_FRESH}"
        );
        failed = true;
    }
    if repl_lag_records > MAX_REPL_LAG_RECORDS {
        eprintln!("FAIL: replication lag {repl_lag_records} records > {MAX_REPL_LAG_RECORDS}");
        failed = true;
    }
    if obs_overhead_ratio > MAX_OBS_OVERHEAD_RATIO {
        eprintln!(
            "FAIL: observability overhead {obs_overhead_ratio:.3}x > {MAX_OBS_OVERHEAD_RATIO}x \
             (traced {traced_secs:.4}s vs untraced {untraced_secs:.4}s)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("fleet bench: all thresholds met");
}
