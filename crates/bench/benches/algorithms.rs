//! Microbenchmarks of the paper's two algorithms and their static-bound
//! computation, isolated from any simulation machinery.

use arv_cgroups::{Bytes, CpuController, CpuSet};
use arv_resview::effective_cpu::{CpuBounds, CpuSample, EffectiveCpu};
use arv_resview::effective_mem::{EffectiveMemory, EffectiveMemoryConfig, MemSample};
use arv_resview::EffectiveCpuConfig;
use arv_sim_core::SimDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_algorithm1(c: &mut Criterion) {
    let t = SimDuration::from_millis(24);
    let mut e = EffectiveCpu::new(
        CpuBounds {
            lower: 4,
            upper: 10,
        },
        EffectiveCpuConfig::default(),
    );
    let sample = CpuSample {
        usage: t * 4,
        period: t,
        slack: t,
    };
    c.bench_function("algorithm1_effective_cpu_update", |b| {
        b.iter(|| black_box(e.update(black_box(sample))))
    });
}

fn bench_algorithm2(c: &mut Criterion) {
    let mut e = EffectiveMemory::new(
        Bytes::from_gib(15),
        Bytes::from_gib(30),
        Bytes::from_mib(1280),
        Bytes::from_mib(2560),
        EffectiveMemoryConfig::default(),
    );
    let sample = MemSample {
        free: Bytes::from_gib(80),
        usage: Bytes::from_gib(14),
        reclaiming: false,
    };
    c.bench_function("algorithm2_effective_memory_update", |b| {
        b.iter(|| black_box(e.update(black_box(sample))))
    });
}

fn bench_bounds(c: &mut Criterion) {
    let online = CpuSet::first_n(20);
    let cpu = CpuController::unlimited(20)
        .with_quota_cpus(10.0)
        .with_shares(1024);
    c.bench_function("cpu_bounds_compute", |b| {
        b.iter(|| black_box(CpuBounds::compute(black_box(&cpu), 5 * 1024, online)))
    });
}

fn bench_cfs_allocation(c: &mut Criterion) {
    use arv_cfs::{CfsSim, GroupDemand};
    let mut group = c.benchmark_group("cfs_allocate");
    for n in [2u32, 8, 32, 128] {
        let cfs = CfsSim::with_cpus(20);
        let demands: Vec<GroupDemand> = (0..n)
            .map(|i| {
                GroupDemand::cpu_bound(
                    arv_cgroups::CgroupId(i),
                    8,
                    1024 * (1 + u64::from(i % 4)),
                    10.0,
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &demands, |b, d| {
            b.iter(|| black_box(cfs.allocate(SimDuration::from_millis(24), d)))
        });
    }
    group.finish();
}

fn bench_task_queue(c: &mut Criterion) {
    use arv_jvm::tasks::{decompose_minor, makespan, GcTaskQueue};
    let mut group = c.benchmark_group("gc_task_queue_makespan");
    for workers in [4u32, 15] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut q = GcTaskQueue::new();
                    q.refill(decompose_minor(SimDuration::from_millis(100), 64, workers));
                    black_box(makespan(&mut q, workers))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_algorithm2,
    bench_bounds,
    bench_cfs_allocation,
    bench_task_queue
);
criterion_main!(benches);
