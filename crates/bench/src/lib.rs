//! Criterion benches live in benches/; see the workspace README.
