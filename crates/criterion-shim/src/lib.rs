//! A small, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The CI containers for this workspace have **no crates.io access**, so
//! the real `criterion` cannot be resolved. This crate implements the
//! subset of its API our benches use — `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId::from_parameter`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple calibrated timing loop
//! instead of criterion's statistical machinery. Reported numbers are
//! mean wall-clock per iteration; good enough to compare paths and spot
//! regressions, not a substitute for real confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to each registered bench function.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.measurement_time, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'c> {
    name: String,
    measurement_time: Duration,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Shrink/grow the per-bench sample budget. The shim only scales its
    /// measurement window: smaller sample counts mean a shorter window.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let scaled = (self.measurement_time.as_millis() as u64).min(20 * n as u64);
        self.measurement_time = Duration::from_millis(scaled.max(20));
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<N: Display, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.measurement_time, &mut f);
        self
    }

    /// Run one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.measurement_time, &mut |b| f(b, input));
        self
    }

    /// End the group (no-op in the shim; matches the real API).
    pub fn finish(self) {}
}

/// A benchmark identifier (parameter label inside a group).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just the parameter value.
    pub fn from_parameter<P: Display>(p: P) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new<N: Display, P: Display>(name: N, p: P) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Timing loop handle handed to each bench closure.
#[derive(Debug)]
pub struct Bencher {
    window: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over enough iterations to fill the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost estimate.
        let start = Instant::now();
        black_box(f());
        let probe = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(5).as_nanos() / probe.as_nanos()).clamp(1, 1 << 20);

        let start = Instant::now();
        let mut n = 0u64;
        while start.elapsed() < self.window {
            for _ in 0..batch {
                black_box(f());
            }
            n += batch as u64;
        }
        self.iters = n.max(1);
        self.elapsed = start.elapsed();
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.elapsed.as_nanos() as f64 / self.iters as f64
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, window: Duration, f: &mut F) {
    let mut b = Bencher {
        window,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.ns_per_iter();
    let (value, unit) = if ns >= 1_000_000.0 {
        (ns / 1_000_000.0, "ms")
    } else if ns >= 1_000.0 {
        (ns / 1_000.0, "µs")
    } else {
        (ns, "ns")
    };
    println!(
        "{name:<44} time: {value:>10.3} {unit}/iter ({} iters)",
        b.iters
    );
}

/// Define the function Criterion invokes for a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_parameterized_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut hits = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| {
                hits += u64::from(n);
            })
        });
        group.finish();
        assert!(hits >= 4);
    }
}
