//! Small statistics helpers shared by experiment reports.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of strictly positive values; 0.0 for an empty slice.
///
/// Panics if any value is non-positive — normalized performance ratios, the
/// only inputs we feed this, are positive by construction.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Sample standard deviation; 0.0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// `value / baseline`, the "normalized to baseline" metric the paper plots.
/// Returns 0.0 when the baseline is zero (plotted as a missing bar).
pub fn normalize(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline
    }
}

/// Relative improvement of `new` over `old` for lower-is-better metrics,
/// e.g. 0.49 means "49% faster".
pub fn improvement(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (old - new) / old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_of_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_non_positive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn stddev_of_values() {
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn normalize_and_improvement() {
        assert_eq!(normalize(5.0, 10.0), 0.5);
        assert_eq!(normalize(5.0, 0.0), 0.0);
        assert!((improvement(10.0, 5.1) - 0.49).abs() < 1e-12);
        assert_eq!(improvement(0.0, 5.0), 0.0);
    }
}
