//! Small statistics helpers shared by experiment reports, plus a
//! thread-safe latency histogram for live measurement paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of strictly positive values; 0.0 for an empty slice.
///
/// Panics if any value is non-positive — normalized performance ratios, the
/// only inputs we feed this, are positive by construction.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Sample standard deviation; 0.0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// `value / baseline`, the "normalized to baseline" metric the paper plots.
/// Returns 0.0 when the baseline is zero (plotted as a missing bar).
pub fn normalize(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        value / baseline
    }
}

/// Relative improvement of `new` over `old` for lower-is-better metrics,
/// e.g. 0.49 means "49% faster".
pub fn improvement(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (old - new) / old
    }
}

/// A lock-free latency histogram with power-of-two buckets.
///
/// Bucket `i` counts samples whose value (typically nanoseconds) has
/// `i` significant bits, i.e. lands in `[2^(i−1), 2^i)`; bucket 0 counts
/// zeros. Recording is a single relaxed `fetch_add`, so hot query paths
/// can record without perturbing what they measure. Precision is the
/// usual factor-of-two bucketing — good enough for the order-of-magnitude
/// comparisons the paper's §5.4 overhead table makes.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 65],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Mean of all recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Upper edge of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`), or 0 when empty. `quantile(0.5)` is a median estimate
    /// within a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_edge(i);
            }
        }
        u64::MAX
    }

    /// Highest non-empty bucket's upper edge (0 when empty).
    pub fn max_bucket(&self) -> u64 {
        for i in (0..self.buckets.len()).rev() {
            if self.buckets[i].load(Ordering::Relaxed) > 0 {
                return bucket_edge(i);
            }
        }
        0
    }
}

/// Exclusive upper edge of bucket `i` (saturated for the top bucket).
fn bucket_edge(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => 1u64 << i,
        _ => u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_of_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_non_positive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn stddev_of_values() {
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn normalize_and_improvement() {
        assert_eq!(normalize(5.0, 10.0), 0.5);
        assert_eq!(normalize(5.0, 0.0), 0.0);
        assert!((improvement(10.0, 5.1) - 0.49).abs() < 1e-12);
        assert_eq!(improvement(0.0, 5.0), 0.0);
    }

    #[test]
    fn histogram_counts_and_mean() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        for v in [100, 200, 400] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 233.333).abs() < 0.01);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(1000); // bucket [512, 1024) → edge 1024
        }
        h.record(1_000_000);
        assert_eq!(h.quantile(0.5), 1024);
        assert_eq!(h.quantile(0.99), 1024);
        assert!(h.quantile(1.0) >= 1_000_000);
        assert!(h.max_bucket() >= 1_000_000);
    }

    #[test]
    fn histogram_extremes() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max_bucket(), u64::MAX);
    }

    mod quantile_props {
        use super::*;
        use proptest::prelude::*;

        /// Upper edge of the bucket a value lands in.
        fn edge_of(value: u64) -> u64 {
            bucket_edge((64 - value.leading_zeros()) as usize)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// `quantile` is monotone non-decreasing in `q`, and every
            /// quantile lies within the edges of the lowest and highest
            /// buckets that actually received a sample.
            #[test]
            fn quantile_is_monotone_and_bounded(
                values in prop::collection::vec(0u64..(1u64 << 48), 1..64),
                // Deliberately past 1.0: `quantile` clamps internally.
                mut qs in prop::collection::vec(0.0f64..1.25, 2..8)
            ) {
                let h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                qs.sort_by(f64::total_cmp);
                let lo = values.iter().copied().map(edge_of).min().unwrap_or(0);
                let hi = h.max_bucket();
                let mut prev = 0u64;
                for &q in &qs {
                    let e = h.quantile(q);
                    prop_assert!(e >= prev, "quantile regressed: q={q} gave {e} after {prev}");
                    prop_assert!(e >= lo, "quantile {e} below lowest recorded edge {lo}");
                    prop_assert!(e <= hi, "quantile {e} above highest recorded edge {hi}");
                    prev = e;
                }
            }

            /// An empty histogram answers 0 for every quantile; `q`
            /// outside `[0, 1]` is clamped, never panics.
            #[test]
            fn quantile_handles_empty_and_out_of_range(q in -2.0f64..3.0) {
                let h = Histogram::new();
                prop_assert_eq!(h.quantile(q), 0);
                h.record(777);
                let clamped = h.quantile(q);
                prop_assert_eq!(clamped, 1024); // bucket [512, 1024)
            }
        }
    }

    #[test]
    fn histogram_is_shareable_across_threads() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for v in 1..=1000u64 {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
