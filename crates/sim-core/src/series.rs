//! Time-series recording for experiment traces.
//!
//! Figures 8(b) and 12 of the paper are traces (GC-thread count over
//! collections; used/committed/VirtualMax memory over time). Experiments
//! record those through [`TimeSeries`], which also offers simple
//! down-sampling so reports stay readable.

use crate::time::SimTime;

/// A named sequence of `(time, value)` samples.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a sample. Samples must be pushed in non-decreasing time order.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.samples.last().map_or(true, |(lt, _)| *lt <= t),
            "samples must be time-ordered"
        );
        self.samples.push((t, v));
    }

    /// All samples, time-ordered.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Most recent sample value.
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|(_, v)| *v)
    }

    /// Largest sample value.
    pub fn max_value(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|(_, v)| *v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Smallest sample value.
    pub fn min_value(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|(_, v)| *v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Keep at most `n` evenly spaced samples (always keeping the last).
    pub fn downsample(&self, n: usize) -> TimeSeries {
        assert!(n > 0, "downsample target must be positive");
        if self.samples.len() <= n {
            return self.clone();
        }
        let mut out = TimeSeries::new(self.name.clone());
        let step = (self.samples.len() - 1) as f64 / (n - 1).max(1) as f64;
        for i in 0..n {
            let idx = ((i as f64 * step).round() as usize).min(self.samples.len() - 1);
            let (t, v) = self.samples[idx];
            if out.samples.last().map_or(true, |(lt, _)| *lt < t) || out.samples.is_empty() {
                out.push(t, v);
            }
        }
        out
    }

    /// Value at or before `t` (step interpolation); `None` before first sample.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.samples.binary_search_by(|(st, _)| st.cmp(&t)) {
            Ok(i) => Some(self.samples[i].1),
            Err(0) => None,
            Err(i) => Some(self.samples[i - 1].1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut s = TimeSeries::new("mem");
        for i in 0..10u64 {
            s.push(SimTime(i * 100), i as f64);
        }
        s
    }

    #[test]
    fn push_and_extents() {
        let s = series();
        assert_eq!(s.len(), 10);
        assert_eq!(s.last_value(), Some(9.0));
        assert_eq!(s.max_value(), Some(9.0));
        assert_eq!(s.min_value(), Some(0.0));
    }

    #[test]
    fn value_at_uses_step_interpolation() {
        let s = series();
        assert_eq!(s.value_at(SimTime(0)), Some(0.0));
        assert_eq!(s.value_at(SimTime(150)), Some(1.0));
        assert_eq!(s.value_at(SimTime(900)), Some(9.0));
        assert_eq!(s.value_at(SimTime(5_000)), Some(9.0));
    }

    #[test]
    fn value_before_first_sample_is_none() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime(10), 1.0);
        assert_eq!(s.value_at(SimTime(9)), None);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let s = series();
        let d = s.downsample(4);
        assert!(d.len() <= 4);
        assert_eq!(d.samples().first().unwrap().1, 0.0);
        assert_eq!(d.samples().last().unwrap().1, 9.0);
    }

    #[test]
    fn downsample_of_short_series_is_identity() {
        let s = series();
        assert_eq!(s.downsample(100).len(), s.len());
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_order_push_panics_in_debug() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime(10), 1.0);
        s.push(SimTime(5), 2.0);
    }
}
