//! Deterministic fault injection for the view pipeline.
//!
//! A [`FaultPlan`] is a seeded source of faults covering every stage of
//! the pipeline — event delivery (drop / duplicate / reorder), the
//! monitor itself (stall windows), publication (delay windows), the
//! wire protocol (corrupt / truncate / reset frames), and the storage
//! layer (torn / failed / refused appends, bit rot, sync stalls —
//! mirrored 1:1 into an `arv_persist` `FaultyStore`). Because every
//! decision flows through a [`SimRng`] forked from the
//! experiment seed, a chaos run is bit-for-bit reproducible: the same
//! seed injects the same faults at the same ticks, so recovery
//! invariants can be asserted exactly.

use crate::rng::SimRng;

/// Probabilities and schedules for one fault campaign.
///
/// Probabilities are per-item (per event, per frame); schedules are
/// half-open tick windows `[start, start + duration)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Probability an event is dropped in transit.
    pub drop_prob: f64,
    /// Probability an event is delivered twice.
    pub dup_prob: f64,
    /// Probability an adjacent pair of events is swapped.
    pub reorder_prob: f64,
    /// Probability a wire frame has one byte flipped.
    pub corrupt_prob: f64,
    /// Probability a wire frame is truncated.
    pub truncate_prob: f64,
    /// Monitor stall window: `(first_tick, duration_ticks)`.
    pub stall_at: Option<(u64, u64)>,
    /// Publish-delay window: `(first_tick, duration_ticks)`.
    pub publish_delay_at: Option<(u64, u64)>,
    /// Daemon crash window: `(crash_tick, downtime_ticks)`. The daemon
    /// is down for the window and warm-restarts from its journal at the
    /// first tick past it.
    pub crash_at: Option<(u64, u64)>,
    /// Client-flood window: `(first_tick, duration_ticks)` during which
    /// [`FaultConfig::flood_clients`] greedy clients hammer the daemon.
    pub flood_at: Option<(u64, u64)>,
    /// Number of concurrent flooding clients during the flood window.
    pub flood_clients: u32,
    /// Fleet partition window: `(first_tick, duration_ticks)` during
    /// which a periphery's frames never reach the controller (the
    /// controller serves its last-good contribution flagged degraded).
    pub partition_at: Option<(u64, u64)>,
    /// Fleet lag: every periphery frame is delivered this many ticks
    /// late (a lagging host; zero = on time).
    pub lag_ticks: u64,
    /// Fleet controller crash window: `(crash_tick, downtime_ticks)`.
    /// The controller is down for the window and a replacement
    /// warm-restarts from the journal at the first tick past it.
    pub controller_crash_at: Option<(u64, u64)>,
    /// Replicated-fleet primary kill: `(kill_tick, downtime_ticks)`.
    /// Unlike [`FaultConfig::controller_crash_at`] there is no
    /// journal warm-restart — peripheries walk to a hot standby, which
    /// promotes itself once the primary's lease expires.
    pub primary_crash_at: Option<(u64, u64)>,
    /// Lease-stall window: `(first_tick, duration_ticks)` during which
    /// the primary cannot renew its lease (a GC pause / disk hiccup)
    /// while still serving traffic — the split-brain scenario epoch
    /// fencing must win.
    pub lease_stall_at: Option<(u64, u64)>,
    /// Replication-lag window: `(first_tick, duration_ticks)` during
    /// which REPL frames queue at the primary instead of reaching the
    /// standby (they drain, in order, after the window).
    pub repl_lag_at: Option<(u64, u64)>,
    /// Probability a journal/lease store append is torn short (a strict
    /// prefix reaches the medium before the error). Consumers feed the
    /// `store_*` axes into an `arv_persist` `FaultyStore` 1:1.
    pub store_torn_prob: f64,
    /// Probability a store append fails outright, writing nothing.
    pub store_write_err_prob: f64,
    /// Disk-full window: `(first_tick, duration_ticks)` during which
    /// every store append is refused with a no-space error.
    pub store_full_at: Option<(u64, u64)>,
    /// Probability a store append flips one bit somewhere in the
    /// already-written file (latent media decay surfacing under load).
    pub store_bit_rot_prob: f64,
    /// Sync-stall window: `(first_tick, duration_ticks)` during which
    /// `sync` fails — the durable watermark freezes, so a crash inside
    /// the window loses everything appended since it opened.
    pub store_sync_stall_at: Option<(u64, u64)>,
}

impl FaultConfig {
    /// A plan that injects nothing (useful for reference twins).
    pub fn quiet() -> FaultConfig {
        FaultConfig::default()
    }
}

/// Counters for what the plan actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Events dropped.
    pub dropped: u64,
    /// Events duplicated.
    pub duplicated: u64,
    /// Adjacent event pairs swapped.
    pub reordered: u64,
    /// Wire frames with a corrupted byte.
    pub corrupted: u64,
    /// Wire frames truncated.
    pub truncated: u64,
}

impl FaultStats {
    /// Total number of injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.reordered + self.corrupted + self.truncated
    }
}

/// A seeded, replayable fault injector.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: SimRng,
    cfg: FaultConfig,
    stats: FaultStats,
}

impl FaultPlan {
    /// A plan drawing decisions from `seed` under `cfg`.
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            rng: SimRng::seed_from_u64(seed),
            cfg,
            stats: FaultStats::default(),
        }
    }

    /// The configuration this plan runs under.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// What has been injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether the monitor is stalled at `tick`.
    pub fn monitor_stalled(&self, tick: u64) -> bool {
        in_window(self.cfg.stall_at, tick)
    }

    /// Whether publishes are delayed at `tick`.
    pub fn publish_delayed(&self, tick: u64) -> bool {
        in_window(self.cfg.publish_delay_at, tick)
    }

    /// Whether the daemon is crashed (down) at `tick`.
    pub fn crashed(&self, tick: u64) -> bool {
        in_window(self.cfg.crash_at, tick)
    }

    /// The tick the daemon warm-restarts at (first tick past the crash
    /// window), if a crash is scheduled.
    pub fn restart_tick(&self) -> Option<u64> {
        self.cfg
            .crash_at
            .map(|(start, dur)| start.saturating_add(dur))
    }

    /// Number of flooding clients active at `tick` (zero outside the
    /// flood window).
    pub fn flood_clients(&self, tick: u64) -> u32 {
        if in_window(self.cfg.flood_at, tick) {
            self.cfg.flood_clients
        } else {
            0
        }
    }

    /// Whether the fleet periphery is partitioned from the controller
    /// at `tick` (its frames are dropped in transit).
    pub fn partitioned(&self, tick: u64) -> bool {
        in_window(self.cfg.partition_at, tick)
    }

    /// How many ticks late every fleet frame arrives (a lagging host).
    pub fn frame_lag(&self) -> u64 {
        self.cfg.lag_ticks
    }

    /// Whether the fleet controller is crashed (down) at `tick`.
    pub fn controller_crashed(&self, tick: u64) -> bool {
        in_window(self.cfg.controller_crash_at, tick)
    }

    /// The tick a replacement controller warm-restarts from the journal
    /// (first tick past the crash window), if a crash is scheduled.
    pub fn controller_restart_tick(&self) -> Option<u64> {
        self.cfg
            .controller_crash_at
            .map(|(start, dur)| start.saturating_add(dur))
    }

    /// Whether the replicated-fleet primary is dead at `tick`.
    pub fn primary_crashed(&self, tick: u64) -> bool {
        in_window(self.cfg.primary_crash_at, tick)
    }

    /// The tick the primary is killed at, if a kill is scheduled.
    pub fn primary_kill_tick(&self) -> Option<u64> {
        self.cfg.primary_crash_at.map(|(start, _)| start)
    }

    /// Whether the primary's lease renewals are stalled at `tick`.
    pub fn lease_stalled(&self, tick: u64) -> bool {
        in_window(self.cfg.lease_stall_at, tick)
    }

    /// Whether REPL frames queue at the primary (replication lag) at
    /// `tick`.
    pub fn repl_lagged(&self, tick: u64) -> bool {
        in_window(self.cfg.repl_lag_at, tick)
    }

    /// Whether the storage device is out of space at `tick`.
    pub fn store_full(&self, tick: u64) -> bool {
        in_window(self.cfg.store_full_at, tick)
    }

    /// Whether store syncs stall (the durable watermark freezes) at
    /// `tick`.
    pub fn store_sync_stalled(&self, tick: u64) -> bool {
        in_window(self.cfg.store_sync_stall_at, tick)
    }

    /// Whether any storage-fault axis is configured at all (probability
    /// nonzero or a window scheduled) — campaigns use this to decide
    /// whether hosts need fault-injecting stores.
    pub fn has_store_faults(&self) -> bool {
        self.cfg.store_torn_prob > 0.0
            || self.cfg.store_write_err_prob > 0.0
            || self.cfg.store_bit_rot_prob > 0.0
            || self.cfg.store_full_at.is_some()
            || self.cfg.store_sync_stall_at.is_some()
    }

    /// Apply drop / duplicate / reorder faults to a queue of events.
    ///
    /// Order of passes is fixed (drop, duplicate, reorder) so a given
    /// seed always mangles a given queue the same way.
    pub fn mangle_queue<T: Clone>(&mut self, queue: &mut Vec<T>) {
        if self.cfg.drop_prob > 0.0 {
            queue.retain(|_| {
                let keep = self.rng.unit() >= self.cfg.drop_prob;
                if !keep {
                    self.stats.dropped += 1;
                }
                keep
            });
        }
        if self.cfg.dup_prob > 0.0 {
            let mut doubled = Vec::with_capacity(queue.len());
            for item in queue.drain(..) {
                let dup = self.rng.unit() < self.cfg.dup_prob;
                if dup {
                    self.stats.duplicated += 1;
                    doubled.push(item.clone());
                }
                doubled.push(item);
            }
            *queue = doubled;
        }
        if self.cfg.reorder_prob > 0.0 && queue.len() >= 2 {
            for i in 0..queue.len() - 1 {
                if self.rng.unit() < self.cfg.reorder_prob {
                    queue.swap(i, i + 1);
                    self.stats.reordered += 1;
                }
            }
        }
    }

    /// Apply corruption / truncation faults to a wire frame in place.
    ///
    /// Returns `true` if the frame was touched. An empty frame is left
    /// alone (nothing to mangle).
    pub fn mangle_frame(&mut self, frame: &mut Vec<u8>) -> bool {
        if frame.is_empty() {
            return false;
        }
        let mut touched = false;
        if self.cfg.corrupt_prob > 0.0 && self.rng.unit() < self.cfg.corrupt_prob {
            let idx = self.rng.range_u64(0, frame.len() as u64) as usize;
            let bit = self.rng.range_u64(0, 8) as u8;
            frame[idx] ^= 1 << bit;
            self.stats.corrupted += 1;
            touched = true;
        }
        if self.cfg.truncate_prob > 0.0
            && self.rng.unit() < self.cfg.truncate_prob
            && frame.len() > 1
        {
            let keep = self.rng.range_u64(1, frame.len() as u64) as usize;
            frame.truncate(keep);
            self.stats.truncated += 1;
            touched = true;
        }
        touched
    }
}

fn in_window(window: Option<(u64, u64)>, tick: u64) -> bool {
    match window {
        Some((start, dur)) => tick >= start && tick < start.saturating_add(dur),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy() -> FaultConfig {
        FaultConfig {
            drop_prob: 0.3,
            dup_prob: 0.2,
            reorder_prob: 0.2,
            corrupt_prob: 0.5,
            truncate_prob: 0.3,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn same_seed_mangles_identically() {
        let mut a = FaultPlan::new(11, lossy());
        let mut b = FaultPlan::new(11, lossy());
        for round in 0..20 {
            let mut qa: Vec<u64> = (0..16).map(|i| round * 100 + i).collect();
            let mut qb = qa.clone();
            a.mangle_queue(&mut qa);
            b.mangle_queue(&mut qb);
            assert_eq!(qa, qb);
            let mut fa: Vec<u8> = (0..32).map(|i| i as u8).collect();
            let mut fb = fa.clone();
            a.mangle_frame(&mut fa);
            b.mangle_frame(&mut fb);
            assert_eq!(fa, fb);
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "lossy plan injected nothing");
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let mut p = FaultPlan::new(3, FaultConfig::quiet());
        let mut q: Vec<u32> = (0..64).collect();
        let orig = q.clone();
        p.mangle_queue(&mut q);
        assert_eq!(q, orig);
        let mut f = vec![1u8, 2, 3, 4];
        assert!(!p.mangle_frame(&mut f));
        assert_eq!(f, vec![1, 2, 3, 4]);
        assert_eq!(p.stats().total(), 0);
    }

    #[test]
    fn stall_and_delay_windows_are_half_open() {
        let cfg = FaultConfig {
            stall_at: Some((10, 4)),
            publish_delay_at: Some((20, 1)),
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(0, cfg);
        assert!(!p.monitor_stalled(9));
        assert!(p.monitor_stalled(10));
        assert!(p.monitor_stalled(13));
        assert!(!p.monitor_stalled(14));
        assert!(p.publish_delayed(20));
        assert!(!p.publish_delayed(21));
    }

    #[test]
    fn crash_and_flood_windows_are_half_open() {
        let cfg = FaultConfig {
            crash_at: Some((30, 5)),
            flood_at: Some((10, 3)),
            flood_clients: 8,
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(0, cfg);
        assert!(!p.crashed(29));
        assert!(p.crashed(30));
        assert!(p.crashed(34));
        assert!(!p.crashed(35));
        assert_eq!(p.restart_tick(), Some(35));
        assert_eq!(p.flood_clients(9), 0);
        assert_eq!(p.flood_clients(10), 8);
        assert_eq!(p.flood_clients(12), 8);
        assert_eq!(p.flood_clients(13), 0);
        let quiet = FaultPlan::new(0, FaultConfig::quiet());
        assert!(!quiet.crashed(0));
        assert_eq!(quiet.restart_tick(), None);
        assert_eq!(quiet.flood_clients(0), 0);
    }

    #[test]
    fn fleet_windows_are_half_open() {
        let cfg = FaultConfig {
            partition_at: Some((5, 3)),
            lag_ticks: 2,
            controller_crash_at: Some((20, 4)),
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(0, cfg);
        assert!(!p.partitioned(4));
        assert!(p.partitioned(5));
        assert!(p.partitioned(7));
        assert!(!p.partitioned(8));
        assert_eq!(p.frame_lag(), 2);
        assert!(!p.controller_crashed(19));
        assert!(p.controller_crashed(20));
        assert!(p.controller_crashed(23));
        assert!(!p.controller_crashed(24));
        assert_eq!(p.controller_restart_tick(), Some(24));
        let quiet = FaultPlan::new(0, FaultConfig::quiet());
        assert!(!quiet.partitioned(0));
        assert_eq!(quiet.frame_lag(), 0);
        assert_eq!(quiet.controller_restart_tick(), None);
    }

    #[test]
    fn replication_windows_are_half_open() {
        let cfg = FaultConfig {
            primary_crash_at: Some((40, 1000)),
            lease_stall_at: Some((10, 6)),
            repl_lag_at: Some((30, 5)),
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(0, cfg);
        assert!(!p.primary_crashed(39));
        assert!(p.primary_crashed(40));
        assert!(p.primary_crashed(1039));
        assert!(!p.primary_crashed(1040));
        assert_eq!(p.primary_kill_tick(), Some(40));
        assert!(!p.lease_stalled(9));
        assert!(p.lease_stalled(10));
        assert!(p.lease_stalled(15));
        assert!(!p.lease_stalled(16));
        assert!(!p.repl_lagged(29));
        assert!(p.repl_lagged(30));
        assert!(p.repl_lagged(34));
        assert!(!p.repl_lagged(35));
        let quiet = FaultPlan::new(0, FaultConfig::quiet());
        assert!(!quiet.primary_crashed(0));
        assert!(!quiet.lease_stalled(0));
        assert!(!quiet.repl_lagged(0));
        assert_eq!(quiet.primary_kill_tick(), None);
    }

    #[test]
    fn store_windows_are_half_open() {
        let cfg = FaultConfig {
            store_full_at: Some((12, 3)),
            store_sync_stall_at: Some((20, 2)),
            ..FaultConfig::default()
        };
        let p = FaultPlan::new(0, cfg);
        assert!(!p.store_full(11));
        assert!(p.store_full(12));
        assert!(p.store_full(14));
        assert!(!p.store_full(15));
        assert!(!p.store_sync_stalled(19));
        assert!(p.store_sync_stalled(20));
        assert!(p.store_sync_stalled(21));
        assert!(!p.store_sync_stalled(22));
        assert!(p.has_store_faults());
        let quiet = FaultPlan::new(0, FaultConfig::quiet());
        assert!(!quiet.store_full(0));
        assert!(!quiet.store_sync_stalled(0));
        assert!(!quiet.has_store_faults());
    }

    #[test]
    fn truncation_never_empties_or_grows_the_frame() {
        let cfg = FaultConfig {
            truncate_prob: 1.0,
            ..FaultConfig::default()
        };
        let mut p = FaultPlan::new(77, cfg);
        for len in 2..40usize {
            let mut f = vec![0xABu8; len];
            p.mangle_frame(&mut f);
            assert!(!f.is_empty() && f.len() < len);
        }
    }
}
