//! Seeded randomness for workload jitter.
//!
//! All stochastic behaviour in the reproduction (e.g. small variation in
//! per-iteration allocation sizes) flows through [`SimRng`], which is
//! seeded explicitly so every experiment run is bit-for-bit reproducible.
//! The generator is a splitmix64 core (Steele et al., "Fast splittable
//! pseudorandom number generators") — tiny, dependency-free, and with
//! full 64-bit avalanche per output, which is all simulation jitter
//! needs.

/// Deterministic random source for simulations.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

/// splitmix64: one full-avalanche 64-bit output per step.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // One warm-up step decorrelates small consecutive seeds.
        let mut state = seed;
        splitmix64(&mut state);
        SimRng { state }
    }

    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Derive an independent child RNG (e.g. one per container) so adding a
    /// consumer does not perturb the stream seen by others.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let s: u64 = self.next_u64();
        SimRng::seed_from_u64(s ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        let span = hi - lo;
        // Multiply-shift bounded sampling (Lemire); the slight modulo bias
        // of a 64-bit product is irrelevant for simulation jitter.
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }

    /// Multiplicative jitter in `[1-amp, 1+amp]`.
    pub fn jitter(&mut self, amp: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&amp));
        1.0 + amp * (2.0 * self.unit() - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_children_are_independent_of_sibling_count() {
        // Fork order determines child seeds, so the first child's stream is
        // identical whether or not more children are forked afterwards.
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut c1 = parent1.fork(0);
        let _c2 = parent1.fork(1);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut d1 = parent2.fork(0);
        for _ in 0..32 {
            assert_eq!(c1.range_u64(0, 1 << 40), d1.range_u64(0, 1 << 40));
        }
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn jitter_stays_within_amplitude() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let j = r.jitter(0.1);
            assert!((0.9..=1.1).contains(&j));
        }
    }
}
