//! Simulated time: absolute instants and durations in microseconds.
//!
//! Microsecond resolution matches the units the paper reasons in
//! (`cfs_period_us`, `cfs_quota_us`, the measured 1 µs namespace-update
//! cost) while `u64` gives more than half a million simulated years of
//! range — overflow is a programming error and is checked in debug builds.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation timeline, in microseconds since
/// simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The zero value.
    pub const ZERO: SimTime = SimTime(0);

    #[inline]
    /// The value in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    #[inline]
    /// The value in milliseconds, as floating point.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    /// The value in seconds, as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`. Panics (debug) if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    #[inline]
    /// Elapsed since `earlier`, clamped at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero value.
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    #[inline]
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    #[inline]
    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    #[inline]
    /// Construct from (non-negative, finite) seconds.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        debug_assert!(s >= 0.0 && s.is_finite());
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    #[inline]
    /// The value in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    #[inline]
    /// The value in milliseconds, as floating point.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    /// The value in seconds, as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    #[inline]
    /// Whether the value is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    #[inline]
    /// Subtraction clamped at zero.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    #[inline]
    /// The smaller of the two values.
    pub fn min(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.min(rhs.0))
    }

    #[inline]
    /// The larger of the two values.
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest microsecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0 && factor.is_finite());
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Ratio of two durations as `f64`; zero denominator yields 0.0.
    #[inline]
    pub fn ratio(self, denom: SimDuration) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::ZERO + SimDuration::from_millis(24);
        assert_eq!(t.as_micros(), 24_000);
    }

    #[test]
    fn duration_conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn since_computes_elapsed() {
        let a = SimTime(1_000);
        let b = SimTime(4_500);
        assert_eq!(b.since(a), SimDuration(3_500));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration(10).mul_f64(0.26).as_micros(), 3);
        assert_eq!(SimDuration(100).mul_f64(1.5).as_micros(), 150);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(SimDuration(5).ratio(SimDuration::ZERO), 0.0);
        assert!((SimDuration(1).ratio(SimDuration(4)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [SimDuration(1), SimDuration(2), SimDuration(3)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration(6));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", SimDuration(12)), "12us");
        assert_eq!(format!("{}", SimDuration(12_000)), "12.000ms");
        assert_eq!(format!("{}", SimDuration(1_200_000)), "1.200s");
    }
}
