//! Deterministic discrete-time simulation kernel.
//!
//! Every component of the reproduction (the CFS-like scheduler, the memory
//! manager, the simulated JVM/OpenMP runtimes) advances on a shared
//! [`SimClock`] in *scheduling periods*, mirroring how the paper's
//! `sys_namespace` update timer is tied to the Linux CFS scheduling period
//! (24 ms for up to 8 runnable tasks, `3 ms × n_tasks` beyond that; §3.2 of
//! the paper).
//!
//! The kernel is intentionally small: time arithmetic, a clock, a seeded
//! RNG, an event queue for timers, and trace/statistics helpers shared by
//! the experiment harnesses. All simulations are exactly reproducible for a
//! given seed — no wall-clock time or OS entropy is consulted anywhere.

#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod faults;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use clock::SimClock;
pub use events::{EventQueue, TimerId};
pub use faults::{FaultConfig, FaultPlan, FaultStats};
pub use rng::SimRng;
pub use series::TimeSeries;
pub use time::{SimDuration, SimTime};
