//! A minimal timer/event queue for simulations.
//!
//! Components such as the `sys_namespace` update timer or the elastic-heap
//! 10-second adjustment poll register timers here; the simulation driver
//! pops due events after each clock step. Ties are broken by registration
//! order so runs are deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle identifying a scheduled timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug)]
struct Entry<E> {
    due: SimTime,
    seq: u64,
    id: TimerId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with the registration sequence as the deterministic tie-breaker.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timed events carrying payloads of type `E`.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    cancelled: Vec<TimerId>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: Vec::new(),
        }
    }
}

impl<E> EventQueue<E> {
    /// A fresh, empty value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `payload` to fire at `due`; returns a handle for cancellation.
    pub fn schedule(&mut self, due: SimTime, payload: E) -> TimerId {
        let id = TimerId(self.next_seq);
        self.heap.push(Entry {
            due,
            seq: self.next_seq,
            id,
            payload,
        });
        self.next_seq += 1;
        id
    }

    /// Cancel a previously scheduled timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        self.cancelled.push(id);
    }

    /// Pop the next event due at or before `now`, if any.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        while let Some(top) = self.heap.peek() {
            if top.due > now {
                return None;
            }
            let entry = self.heap.pop().expect("peeked entry exists");
            if let Some(pos) = self.cancelled.iter().position(|c| *c == entry.id) {
                self.cancelled.swap_remove(pos);
                continue;
            }
            return Some((entry.due, entry.payload));
        }
        None
    }

    /// Earliest pending due time, ignoring cancelled entries.
    pub fn next_due(&mut self) -> Option<SimTime> {
        while let Some(top) = self.heap.peek() {
            if let Some(pos) = self.cancelled.iter().position(|c| *c == top.id) {
                self.cancelled.swap_remove(pos);
                self.heap.pop();
                continue;
            }
            return Some(top.due);
        }
        None
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.heap.len() <= self.cancelled.len()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop_due(SimTime(100)) {
            out.push(e);
        }
        assert_eq!(out, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_registration_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), 1);
        q.schedule(SimTime(5), 2);
        q.schedule(SimTime(5), 3);
        assert_eq!(q.pop_due(SimTime(5)).unwrap().1, 1);
        assert_eq!(q.pop_due(SimTime(5)).unwrap().1, 2);
        assert_eq!(q.pop_due(SimTime(5)).unwrap().1, 3);
    }

    #[test]
    fn future_events_do_not_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(50), ());
        assert!(q.pop_due(SimTime(49)).is_none());
        assert!(q.pop_due(SimTime(50)).is_some());
    }

    #[test]
    fn cancelled_events_are_skipped() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), "a");
        q.schedule(SimTime(2), "b");
        q.cancel(a);
        assert_eq!(q.pop_due(SimTime(10)).unwrap().1, "b");
        assert!(q.pop_due(SimTime(10)).is_none());
    }

    #[test]
    fn next_due_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime(1), ());
        q.schedule(SimTime(7), ());
        q.cancel(a);
        assert_eq!(q.next_due(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
