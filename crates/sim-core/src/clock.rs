//! The shared simulation clock and the CFS scheduling-period rule.
//!
//! The paper ties the `sys_namespace` update interval to the Linux CFS
//! scheduling period: "When there are no more than 8 tasks, the scheduling
//! period is set to 24 ms. Otherwise, the period is set to
//! 3 ms × num_of_tasks" (§3.2). [`sched_period`] encodes exactly that rule
//! and the whole simulation advances in those periods.

use crate::time::{SimDuration, SimTime};

/// Linux CFS default `sched_latency`: 24 ms.
pub const BASE_SCHED_PERIOD: SimDuration = SimDuration::from_millis(24);
/// Linux CFS default `sched_min_granularity`: 3 ms.
pub const MIN_GRANULARITY: SimDuration = SimDuration::from_millis(3);
/// Task count above which the period stretches (`sched_nr_latency`).
pub const NR_LATENCY: u32 = 8;

/// Scheduling-period length for `n_runnable` runnable tasks, following the
/// Linux CFS rule quoted in §3.2 of the paper.
#[inline]
pub fn sched_period(n_runnable: u32) -> SimDuration {
    if n_runnable <= NR_LATENCY {
        BASE_SCHED_PERIOD
    } else {
        MIN_GRANULARITY * u64::from(n_runnable)
    }
}

/// Monotonic simulation clock.
///
/// The clock only moves forward, in explicit steps; nothing in the
/// simulation reads wall-clock time.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
    periods: u64,
}

impl SimClock {
    /// A fresh, empty value.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated instant.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of `advance` steps taken so far.
    #[inline]
    pub fn periods_elapsed(&self) -> u64 {
        self.periods
    }

    /// Advance the clock by one step of length `dt` and return the new time.
    pub fn advance(&mut self, dt: SimDuration) -> SimTime {
        debug_assert!(!dt.is_zero(), "clock must advance by a positive step");
        self.now += dt;
        self.periods += 1;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_is_24ms_up_to_8_tasks() {
        for n in 0..=8 {
            assert_eq!(sched_period(n), SimDuration::from_millis(24));
        }
    }

    #[test]
    fn period_stretches_beyond_8_tasks() {
        assert_eq!(sched_period(9), SimDuration::from_millis(27));
        assert_eq!(sched_period(20), SimDuration::from_millis(60));
        assert_eq!(sched_period(100), SimDuration::from_millis(300));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_millis(24));
        c.advance(SimDuration::from_millis(24));
        assert_eq!(c.now().as_micros(), 48_000);
        assert_eq!(c.periods_elapsed(), 2);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn zero_advance_is_rejected() {
        SimClock::new().advance(SimDuration::ZERO);
    }
}
