//! The simulated host: all substrates advancing in lock-step.

use arv_cfs::{Allocation, CfsSim, GroupDemand, Loadavg, UsageLedger};
use arv_cgroups::{Bytes, CgroupId, CgroupManager, CgroupSpec};
use arv_mem::{ChargeOutcome, MemSim, MemSimConfig};
use arv_resview::effective_cpu::EffectiveCpuConfig;
use arv_resview::effective_mem::EffectiveMemoryConfig;
use arv_resview::namespace::Pid;
use arv_resview::{HostView, NsMonitor, Sysconf, VirtualSysfs};
use arv_sim_core::{clock::sched_period, SimClock, SimDuration, SimTime};
use std::collections::BTreeMap;

use crate::spec::ContainerSpec;

/// What one scheduling-period step produced.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Length of the period that just elapsed.
    pub period: SimDuration,
    /// The CPU allocation for the period.
    pub alloc: Allocation,
    /// Simulated time after the step.
    pub now: SimTime,
}

#[derive(Debug, Clone)]
struct ContainerMeta {
    name: String,
    init_pid: Pid,
}

/// The simulated host machine.
///
/// Owns the cgroup manager, scheduler, memory manager, usage accounting,
/// load average, and the `ns_monitor`, and advances them together one
/// scheduling period at a time via [`SimHost::step`].
#[derive(Debug)]
pub struct SimHost {
    clock: SimClock,
    cgm: CgroupManager,
    cfs: CfsSim,
    mem: MemSim,
    monitor: NsMonitor,
    ledger: UsageLedger,
    loadavg: Loadavg,
    containers: BTreeMap<CgroupId, ContainerMeta>,
    next_pid: u32,
    update_timer_elapsed: SimDuration,
}

impl SimHost {
    /// A host with `cpus` CPUs and `memory` physical memory.
    pub fn new(cpus: u32, memory: Bytes) -> SimHost {
        SimHost::with_view_configs(
            cpus,
            memory,
            EffectiveCpuConfig::default(),
            EffectiveMemoryConfig::default(),
        )
    }

    /// A host with explicit resource-view tunables (ablation studies).
    pub fn with_view_configs(
        cpus: u32,
        memory: Bytes,
        cpu_cfg: EffectiveCpuConfig,
        mem_cfg: EffectiveMemoryConfig,
    ) -> SimHost {
        let cfs = CfsSim::with_cpus(cpus);
        let mem = MemSim::new(MemSimConfig::with_total(memory));
        let monitor = NsMonitor::new(cfs.online(), memory, *mem.watermarks(), cpu_cfg, mem_cfg);
        SimHost {
            clock: SimClock::new(),
            cgm: CgroupManager::new(),
            cfs,
            mem,
            monitor,
            ledger: UsageLedger::new(),
            loadavg: Loadavg::one_min(),
            containers: BTreeMap::new(),
            next_pid: 1000,
            update_timer_elapsed: SimDuration::ZERO,
        }
    }

    /// The paper's testbed: dual 10-core Xeon (20 cores), 128 GB memory.
    pub fn paper_testbed() -> SimHost {
        SimHost::new(20, Bytes::from_gib(128))
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Number of online CPUs on the host.
    pub fn online_cpus(&self) -> u32 {
        self.cfs.online_count()
    }

    /// Physical memory size of the host.
    pub fn total_memory(&self) -> Bytes {
        self.mem.total()
    }

    /// Launch a container: create its cgroup and memory accounting, let
    /// `ns_monitor` build its `sys_namespace`, then model the §3.2 init
    /// handoff — the setup init `exec`s into the user command and the
    /// namespace is re-owned by the new init.
    pub fn launch(&mut self, spec: &ContainerSpec) -> CgroupId {
        let id = self.cgm.create(CgroupSpec::new(spec.cpu, spec.mem));
        self.mem.register(id, spec.mem);
        self.monitor.sync(&mut self.cgm);

        let new_init = Pid(self.next_pid);
        self.next_pid += 1;
        let ns = self
            .monitor
            .namespace_mut(id)
            .expect("sync created the namespace");
        ns.transfer_ownership(new_init);

        self.containers.insert(
            id,
            ContainerMeta {
                name: spec.name.clone(),
                init_pid: new_init,
            },
        );
        id
    }

    /// Terminate a container, releasing every resource it held.
    pub fn terminate(&mut self, id: CgroupId) {
        if self.containers.remove(&id).is_some() {
            self.cgm.remove(id);
            self.mem.unregister(id);
            self.ledger.forget(id);
            self.monitor.sync(&mut self.cgm);
        }
    }

    /// Adjust a live container's resources (`docker update`).
    pub fn update_limits(&mut self, id: CgroupId, spec: &ContainerSpec) {
        assert!(self.containers.contains_key(&id), "unknown container");
        self.cgm.update(id, CgroupSpec::new(spec.cpu, spec.mem));
        self.mem.set_limits(id, spec.mem);
        self.monitor.sync(&mut self.cgm);
    }

    /// The container's name, if it exists.
    pub fn container_name(&self, id: CgroupId) -> Option<&str> {
        self.containers.get(&id).map(|m| m.name.as_str())
    }

    /// Number of live containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Pid of the container's (post-exec) init process — the namespace
    /// owner.
    pub fn init_pid(&self, id: CgroupId) -> Option<Pid> {
        self.containers.get(&id).map(|m| m.init_pid)
    }

    /// Shortest allowed simulation step (bounds event-driven stepping).
    pub const MIN_STEP: SimDuration = SimDuration::from_micros(500);

    /// Advance one scheduling period. `demands` carries each running
    /// container's CPU request; the period length follows the CFS rule
    /// from the total runnable count.
    pub fn step(&mut self, demands: &[GroupDemand]) -> StepOutcome {
        self.step_capped(demands, SimDuration(u64::MAX))
    }

    /// Advance one step of at most `cap` (event-driven stepping: workload
    /// drivers cap the step at their next event — eden full, GC end,
    /// region end). The `sys_namespace` update timer still fires once per
    /// CFS scheduling period, over the accumulated usage window.
    pub fn step_capped(&mut self, demands: &[GroupDemand], cap: SimDuration) -> StepOutcome {
        let total_runnable: u32 = demands.iter().map(|d| d.runnable).sum();
        let sched = sched_period(total_runnable.max(1));
        let period = sched.min(cap).max(Self::MIN_STEP);

        let alloc = self.cfs.allocate(period, demands);
        self.ledger.record(&alloc);
        self.mem.kswapd_step(period);
        self.monitor.sync(&mut self.cgm);
        self.update_timer_elapsed += period;
        if self.update_timer_elapsed >= sched {
            self.monitor.tick_window(&self.ledger, &self.mem);
            self.ledger.reset_window();
            self.update_timer_elapsed = SimDuration::ZERO;
        }
        self.loadavg.observe(total_runnable, period);
        let now = self.clock.advance(period);

        StepOutcome { period, alloc, now }
    }

    /// Build a CPU-bound demand for a container from its cgroup settings.
    pub fn demand(&self, id: CgroupId, runnable: u32) -> GroupDemand {
        let spec = self.cgm.get(id).expect("unknown container");
        GroupDemand::cpu_bound(
            id,
            runnable,
            spec.cpu.shares,
            spec.cpu.cpu_cap(self.cfs.online()),
        )
    }

    /// Effective CPU from the container's `sys_namespace`.
    pub fn effective_cpu(&self, id: CgroupId) -> u32 {
        self.monitor
            .effective_cpu(id)
            .expect("container has a namespace")
    }

    /// Effective memory from the container's `sys_namespace`.
    pub fn effective_memory(&self, id: CgroupId) -> Bytes {
        self.monitor
            .effective_memory(id)
            .expect("container has a namespace")
    }

    /// The virtual sysfs front-end over the current host state.
    pub fn sysfs(&self) -> VirtualSysfs<'_> {
        VirtualSysfs::new(
            &self.monitor,
            HostView {
                online_cpus: self.cfs.online_count(),
                total_memory: self.mem.total(),
                free_memory: self.mem.free(),
            },
        )
    }

    /// `sysconf` as seen from inside `caller` (or the host for `None`).
    pub fn sysconf(&self, caller: Option<CgroupId>, q: Sysconf) -> u64 {
        self.sysfs().sysconf(caller, q)
    }

    /// 1-minute load average — the `getloadavg()[0]` series libgomp's
    /// dynamic-thread heuristic reads.
    pub fn loadavg(&self) -> f64 {
        self.loadavg.value()
    }

    /// Prime the load average to a steady-state value (experiments that
    /// start mid-workload would otherwise wait out the EWMA warm-up).
    pub fn prime_loadavg(&mut self, value: f64) {
        self.loadavg = Loadavg::primed(arv_cfs::loadavg::ONE_MINUTE, value);
    }

    // --- memory pass-throughs for workload models ---

    /// Charge container memory (allocation / heap commit).
    pub fn charge(&mut self, id: CgroupId, amount: Bytes) -> ChargeOutcome {
        self.mem.charge(id, amount)
    }

    /// Release container memory (heap shrink / free).
    pub fn uncharge(&mut self, id: CgroupId, amount: Bytes) {
        self.mem.uncharge(id, amount)
    }

    /// The container's resident memory (`memory.usage_in_bytes`).
    pub fn memory_usage(&self, id: CgroupId) -> Bytes {
        self.mem.usage(id)
    }

    /// Fraction of the container's footprint on swap.
    pub fn swapped_fraction(&self, id: CgroupId) -> f64 {
        self.mem.swapped_fraction(id)
    }

    /// System-wide free physical memory.
    pub fn free_memory(&self) -> Bytes {
        self.mem.free()
    }

    /// The memory manager.
    pub fn mem(&self) -> &MemSim {
        &self.mem
    }

    /// The CPU scheduler.
    pub fn cfs(&self) -> &CfsSim {
        &self.cfs
    }

    /// The CPU usage ledger.
    pub fn ledger(&self) -> &UsageLedger {
        &self.ledger
    }

    /// The `ns_monitor`.
    pub fn monitor(&self) -> &NsMonitor {
        &self.monitor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_resview::Sysconf;

    fn five_paper_containers(host: &mut SimHost) -> Vec<CgroupId> {
        (0..5)
            .map(|i| {
                host.launch(
                    &ContainerSpec::new(format!("dacapo-{i}"), 20)
                        .cpus(10.0)
                        .cpu_shares(1024),
                )
            })
            .collect()
    }

    #[test]
    fn launch_creates_namespace_and_transfers_ownership() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c0", 20));
        let ns = host.monitor().namespace(id).unwrap();
        assert_eq!(ns.owner(), host.init_pid(id).unwrap());
        assert_eq!(host.container_name(id), Some("c0"));
    }

    #[test]
    fn effective_cpu_converges_to_fair_share_under_contention() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        // All five fully loaded: no slack → everyone sits at the lower
        // bound of 4, which is exactly the fair share.
        for _ in 0..50 {
            let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
            host.step(&demands);
        }
        for id in &ids {
            assert_eq!(host.effective_cpu(*id), 4);
        }
    }

    #[test]
    fn effective_cpu_expands_when_neighbours_go_idle() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        // Only container 0 runs; the other four are idle.
        for _ in 0..50 {
            let demands = vec![host.demand(ids[0], 20)];
            host.step(&demands);
        }
        // Work conservation lets it climb to its 10-core quota.
        assert_eq!(host.effective_cpu(ids[0]), 10);
    }

    #[test]
    fn effective_cpu_contracts_when_neighbours_return() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        for _ in 0..50 {
            let demands = vec![host.demand(ids[0], 20)];
            host.step(&demands);
        }
        assert_eq!(host.effective_cpu(ids[0]), 10);
        for _ in 0..50 {
            let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
            host.step(&demands);
        }
        assert_eq!(host.effective_cpu(ids[0]), 4);
    }

    #[test]
    fn sysconf_inside_vs_outside_container() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        for _ in 0..10 {
            let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
            host.step(&demands);
        }
        assert_eq!(host.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 4);
        assert_eq!(host.sysconf(None, Sysconf::NprocessorsOnln), 20);
    }

    #[test]
    fn terminate_releases_resources_and_bounds() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        host.charge(ids[1], Bytes::from_gib(2));
        for id in &ids[1..] {
            host.terminate(*id);
        }
        assert_eq!(host.container_count(), 1);
        assert_eq!(host.free_memory(), host.total_memory());
        // Alone now: lower bound returns to the 10-core quota.
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
        assert_eq!(
            host.monitor().namespace(ids[0]).unwrap().cpu_bounds().lower,
            10
        );
    }

    #[test]
    fn update_limits_propagates_to_namespace() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20).cpus(10.0));
        host.update_limits(
            id,
            &ContainerSpec::new("c", 20)
                .cpus(2.0)
                .memory(Bytes::from_gib(1)),
        );
        let ns = host.monitor().namespace(id).unwrap();
        assert_eq!(ns.cpu_bounds().upper, 2);
        assert_eq!(host.effective_memory(id), Bytes::from_gib(1));
    }

    #[test]
    fn step_advances_clock_by_cfs_period_rule() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        // 4 runnable ≤ 8 → 24 ms.
        let out = host.step(&[host.demand(id, 4)]);
        assert_eq!(out.period, SimDuration::from_millis(24));
        // 20 runnable → 3 ms × 20 = 60 ms.
        let out = host.step(&[host.demand(id, 20)]);
        assert_eq!(out.period, SimDuration::from_millis(60));
        assert_eq!(host.now().as_micros(), 84_000);
    }

    #[test]
    fn loadavg_rises_under_sustained_load() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        assert_eq!(host.loadavg(), 0.0);
        for _ in 0..1000 {
            let d = host.demand(id, 20);
            host.step(&[d]);
        }
        assert!(host.loadavg() > 1.0);
        host.prime_loadavg(20.0);
        assert_eq!(host.loadavg(), 20.0);
    }

    #[test]
    fn step_capped_respects_cap_and_floor() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        // Cap below the scheduling period shortens the step …
        let out = host.step_capped(&[host.demand(id, 4)], SimDuration::from_millis(3));
        assert_eq!(out.period, SimDuration::from_millis(3));
        // … but never below MIN_STEP.
        let out = host.step_capped(&[host.demand(id, 4)], SimDuration::from_micros(1));
        assert_eq!(out.period, SimHost::MIN_STEP);
        // A huge cap falls back to the CFS period rule.
        let out = host.step_capped(&[host.demand(id, 4)], SimDuration::from_secs(10));
        assert_eq!(out.period, SimDuration::from_millis(24));
    }

    #[test]
    fn update_timer_fires_once_per_scheduling_period_under_short_steps() {
        // Many 1 ms steps: the view may only move after a full 24 ms of
        // accumulated window, exactly as with native-period stepping.
        let mut host = SimHost::paper_testbed();
        for _ in 0..4 {
            host.launch(&ContainerSpec::new("x", 20).cpus(10.0));
        }
        // Launched into a 5-way share, the view is born at the 4-CPU
        // lower bound and has a 10-CPU quota to climb to.
        let a = host.launch(&ContainerSpec::new("a", 20).cpus(10.0));
        assert_eq!(host.effective_cpu(a), 4);
        let mut changes = 0;
        let mut last = host.effective_cpu(a);
        for _ in 0..48 {
            let d = host.demand(a, 20);
            host.step_capped(&[d], SimDuration::from_millis(1));
            if host.effective_cpu(a) != last {
                changes += 1;
                last = host.effective_cpu(a);
            }
        }
        // 48 ms of 1 ms steps = at most 2 update-timer firings.
        assert!(changes <= 2, "view moved {changes} times in 48 ms");
    }

    #[test]
    fn terminate_unknown_container_is_noop() {
        let mut host = SimHost::paper_testbed();
        host.terminate(CgroupId(77));
        assert_eq!(host.container_count(), 0);
    }
}
