//! The simulated host: all substrates advancing in lock-step.

use arv_cfs::{Allocation, CfsSim, GroupDemand, Loadavg, UsageLedger};
use arv_cgroups::{Bytes, CgroupId, CgroupManager, CgroupSpec, EventPipe, DEFAULT_PIPE_CAPACITY};
use arv_fleet::Periphery;
use arv_mem::{ChargeOutcome, MemSim, MemSimConfig};
use arv_persist::{Journal, RestoreReport, Store};
use arv_resview::effective_cpu::EffectiveCpuConfig;
use arv_resview::effective_mem::EffectiveMemoryConfig;
use arv_resview::namespace::Pid;
use arv_resview::{
    CpuBounds, EffectiveMemory, HostView, NsMonitor, RecoverOutcome, StalenessPolicy, Sysconf,
    Verdict, VirtualSysfs, Watchdog, WatchdogConfig, WatchdogStats,
};
use arv_sim_core::{clock::sched_period, FaultPlan, FaultStats, SimClock, SimDuration, SimTime};
use arv_telemetry::PipelineEvent;
use arv_viewd::{HostSpec, ViewServer};
use std::collections::BTreeMap;

use crate::spec::ContainerSpec;

/// What one scheduling-period step produced.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// Length of the period that just elapsed.
    pub period: SimDuration,
    /// The CPU allocation for the period.
    pub alloc: Allocation,
    /// Simulated time after the step.
    pub now: SimTime,
}

#[derive(Debug, Clone)]
struct ContainerMeta {
    name: String,
    init_pid: Pid,
}

/// Journal state of the monitor daemon: the append-only on-disk log
/// that survives a crash, plus the compaction cadence and the
/// durability degradation ladder. When the backing store errors, the
/// host flips onto a flagged in-memory fallback journal (RAM dies
/// with the process, so it is explicitly *not* durable) and retries a
/// full checkpoint every tick until the store recovers.
#[derive(Debug)]
struct JournalState {
    journal: Journal,
    checkpoint_every: u64,
    /// In-memory stand-in kept current while the store is erroring.
    fallback: Option<Journal>,
    /// Whether the host is on the degraded rung of the ladder.
    durability_lost: bool,
    /// Store errors absorbed since journaling was enabled.
    io_errors: u64,
}

/// What a warm restart recovered (see [`SimHost::crash_restart`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreEvent {
    /// Update-timer tick the restart happened at.
    pub tick: u64,
    /// What the journal replay salvaged (torn tails, applied deltas).
    pub report: RestoreReport,
    /// How the monitor reconciled the snapshot against live cgroups,
    /// or `None` when no valid checkpoint survived (cold resync).
    pub outcome: Option<RecoverOutcome>,
}

/// The simulated host machine.
///
/// Owns the cgroup manager, scheduler, memory manager, usage accounting,
/// load average, and the `ns_monitor`, and advances them together one
/// scheduling period at a time via [`SimHost::step`].
///
/// Cgroup events reach the monitor through a bounded [`EventPipe`]
/// rather than a direct call, and a [`Watchdog`] audits the delivery:
/// dropped or overflowed events (and monitor stalls injected via
/// [`SimHost::inject_monitor_stall`] or a [`FaultPlan`]) are detected
/// and repaired by a full [`NsMonitor::resync`].
#[derive(Debug)]
pub struct SimHost {
    clock: SimClock,
    cgm: CgroupManager,
    cfs: CfsSim,
    mem: MemSim,
    monitor: NsMonitor,
    ledger: UsageLedger,
    loadavg: Loadavg,
    containers: BTreeMap<CgroupId, ContainerMeta>,
    next_pid: u32,
    update_timer_elapsed: SimDuration,
    cpu_cfg: EffectiveCpuConfig,
    mem_cfg: EffectiveMemoryConfig,
    viewd: Option<ViewServer>,
    pipe: EventPipe,
    watchdog: Watchdog,
    fault_plan: Option<FaultPlan>,
    // Remaining update-timer firings the monitor sleeps through.
    stall_ticks: u64,
    // Remaining update-timer firings whose viewd publish is suppressed.
    delay_publish_ticks: u64,
    journal: Option<JournalState>,
    last_restore: Option<RestoreEvent>,
    periphery: Option<Periphery>,
}

impl SimHost {
    /// A host with `cpus` CPUs and `memory` physical memory.
    pub fn new(cpus: u32, memory: Bytes) -> SimHost {
        SimHost::with_view_configs(
            cpus,
            memory,
            EffectiveCpuConfig::default(),
            EffectiveMemoryConfig::default(),
        )
    }

    /// A host with explicit resource-view tunables (ablation studies).
    pub fn with_view_configs(
        cpus: u32,
        memory: Bytes,
        cpu_cfg: EffectiveCpuConfig,
        mem_cfg: EffectiveMemoryConfig,
    ) -> SimHost {
        let cfs = CfsSim::with_cpus(cpus);
        let mem = MemSim::new(MemSimConfig::with_total(memory));
        let monitor = NsMonitor::new(cfs.online(), memory, *mem.watermarks(), cpu_cfg, mem_cfg);
        SimHost {
            clock: SimClock::new(),
            cgm: CgroupManager::new(),
            cfs,
            mem,
            monitor,
            ledger: UsageLedger::new(),
            loadavg: Loadavg::one_min(),
            containers: BTreeMap::new(),
            next_pid: 1000,
            update_timer_elapsed: SimDuration::ZERO,
            cpu_cfg,
            mem_cfg,
            viewd: None,
            pipe: EventPipe::new(DEFAULT_PIPE_CAPACITY),
            watchdog: Watchdog::new(WatchdogConfig::default()),
            fault_plan: None,
            stall_ticks: 0,
            delay_publish_ticks: 0,
            journal: None,
            last_restore: None,
            periphery: None,
        }
    }

    /// The paper's testbed: dual 10-core Xeon (20 cores), 128 GB memory.
    pub fn paper_testbed() -> SimHost {
        SimHost::new(20, Bytes::from_gib(128))
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Number of online CPUs on the host.
    pub fn online_cpus(&self) -> u32 {
        self.cfs.online_count()
    }

    /// Physical memory size of the host.
    pub fn total_memory(&self) -> Bytes {
        self.mem.total()
    }

    /// Launch a container: create its cgroup and memory accounting, let
    /// `ns_monitor` build its `sys_namespace`, then model the §3.2 init
    /// handoff — the setup init `exec`s into the user command and the
    /// namespace is re-owned by the new init.
    pub fn launch(&mut self, spec: &ContainerSpec) -> CgroupId {
        let id = self.cgm.create(CgroupSpec::new(spec.cpu, spec.mem));
        self.mem.register(id, spec.mem);
        self.pump_events();

        let new_init = Pid(self.next_pid);
        self.next_pid += 1;
        // Under a fault (stalled monitor, dropped Created event) the
        // namespace may not exist yet; the watchdog's resync recreates
        // it and ownership is restored from the container table then.
        if let Some(ns) = self.monitor.namespace_mut(id) {
            ns.transfer_ownership(new_init);
        }

        self.containers.insert(
            id,
            ContainerMeta {
                name: spec.name.clone(),
                init_pid: new_init,
            },
        );
        if let Some(server) = self.viewd.clone() {
            self.viewd_register(&server, id);
            // A launch changes the share denominator, so every
            // container's bounds (and clamped views) may have moved.
            self.viewd_mirror_all();
        }
        id
    }

    /// Terminate a container, releasing every resource it held.
    pub fn terminate(&mut self, id: CgroupId) {
        if self.containers.remove(&id).is_some() {
            self.cgm.remove(id);
            self.mem.unregister(id);
            self.ledger.forget(id);
            self.pump_events();
            if !self.monitor_stalled() && self.journal.is_some() {
                let tick = self.monitor.now_tick();
                let snap = self.monitor.snapshot();
                let js = self.journal.as_mut().expect("presence checked above");
                // Group-commit the removal immediately: a crash
                // before the next timer firing must not resurrect
                // the container.
                let errored = js.journal.append_remove(id.0).is_err() || js.journal.sync().is_err();
                if let Some(fb) = &mut js.fallback {
                    let _ = fb.append_remove(id.0);
                }
                self.journal_ladder(errored, false, &snap, tick);
            }
            if let Some(server) = &self.viewd {
                server.unregister(id);
                self.viewd_mirror_all();
            }
        }
    }

    /// Adjust a live container's resources (`docker update`).
    pub fn update_limits(&mut self, id: CgroupId, spec: &ContainerSpec) {
        assert!(self.containers.contains_key(&id), "unknown container");
        self.cgm.update(id, CgroupSpec::new(spec.cpu, spec.mem));
        self.mem.set_limits(id, spec.mem);
        self.pump_events();
        self.viewd_mirror_all();
    }

    // --- fault-tolerant event pipeline ---

    /// Route pending cgroup events through the bounded pipe into the
    /// monitor, and let the watchdog audit the delivery. When the
    /// monitor is stalled, events pile up in the pipe (possibly
    /// overflowing it) instead of being delivered.
    fn pump_events(&mut self) {
        for ev in self.cgm.drain_events() {
            self.pipe.push(ev);
        }
        if self.monitor_stalled() {
            return;
        }
        let mut events = self.pipe.drain();
        if let Some(plan) = &mut self.fault_plan {
            plan.mangle_queue(&mut events);
        }
        let report = self.monitor.ingest(&events, &self.cgm);
        let overflow = self.pipe.take_overflow_dropped();
        if self.watchdog.after_ingest(&report, overflow) == Verdict::Resync {
            self.resync_now();
        }
    }

    /// Rebuild monitor state from the cgroup hierarchy: recreate missing
    /// namespaces, drop orphans, recompute every bound, realign the
    /// event sequence, and restore namespace ownership from the
    /// container table.
    fn resync_now(&mut self) {
        self.monitor.resync(&mut self.cgm);
        self.monitor.align_seq(self.pipe.next_seq());
        for (id, meta) in &self.containers {
            if let Some(ns) = self.monitor.namespace_mut(*id) {
                if ns.owner() != meta.init_pid {
                    ns.transfer_ownership(meta.init_pid);
                }
            }
        }
        self.watchdog.note_resynced();
    }

    /// Whether the monitor is currently sleeping through its deadlines
    /// (an injected stall, a [`FaultPlan`] stall window, or a crash
    /// window during which the daemon is down entirely).
    pub fn monitor_stalled(&self) -> bool {
        let tick = self.monitor.now_tick();
        self.stall_ticks > 0
            || self
                .fault_plan
                .as_ref()
                .is_some_and(|p| p.monitor_stalled(tick) || p.crashed(tick))
    }

    /// Stall the monitor for the next `ticks` update-timer firings: no
    /// event delivery, no view updates, no publishes. The staleness
    /// clock keeps running, so served views age honestly.
    pub fn inject_monitor_stall(&mut self, ticks: u64) {
        self.stall_ticks += ticks;
    }

    /// Suppress the viewd publish for the next `ticks` update-timer
    /// firings (the monitor keeps updating its own namespaces).
    pub fn inject_publish_delay(&mut self, ticks: u64) {
        self.delay_publish_ticks += ticks;
    }

    /// Install a deterministic fault plan driving event mangling and
    /// stall/delay windows. Replaces any previous plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Remove and return the current fault plan.
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault_plan.take()
    }

    /// Counters from the current fault plan, if one is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault_plan.as_ref().map(|p| p.stats())
    }

    /// The watchdog's counters (missed ticks, gaps, overflows, resyncs).
    pub fn watchdog_stats(&self) -> WatchdogStats {
        self.watchdog.stats()
    }

    // --- crash-safe journal + warm restart ---

    /// Turn on view-state journaling: every update-timer firing appends
    /// per-container deltas, and every `checkpoint_every` ticks the
    /// journal is compacted into a full checkpoint. The journal models
    /// the daemon's on-disk state file — it survives a
    /// [`crash_restart`](SimHost::crash_restart).
    pub fn enable_journal(&mut self, checkpoint_every: u64) {
        self.enable_journal_with_store(Box::new(arv_persist::MemStore::new()), checkpoint_every);
    }

    /// Like [`enable_journal`](SimHost::enable_journal) but over a
    /// caller-supplied [`Store`] — e.g. a seeded
    /// [`FaultyStore`](arv_persist::FaultyStore) injecting torn
    /// appends, write errors, disk-full windows, and sync stalls. A
    /// store that refuses the setup writes starts the host already on
    /// the degraded rung of the durability ladder.
    pub fn enable_journal_with_store(&mut self, store: Box<dyn Store>, checkpoint_every: u64) {
        let (mut journal, mut errored) = match Journal::with_store(store) {
            Ok(j) => (j, false),
            // The store is consumed on failure; journal on RAM until
            // a checkpoint onto a healthy store replaces the state.
            Err(_) => (Journal::new(), true),
        };
        let snap = self.monitor.snapshot();
        if !errored {
            errored = journal.checkpoint(&snap).is_err();
        }
        let mut js = JournalState {
            journal,
            checkpoint_every: checkpoint_every.max(1),
            fallback: None,
            durability_lost: errored,
            io_errors: u64::from(errored),
        };
        if errored {
            let fb = js.fallback.insert(Journal::new());
            let _ = fb.checkpoint(&snap);
        }
        self.journal = Some(js);
        if errored {
            self.monitor.tracer().emit_pipeline(
                self.monitor.now_tick(),
                None,
                PipelineEvent::DurabilityLost,
            );
        }
        self.publish_durability();
    }

    /// The raw journal bytes, if journaling is enabled.
    pub fn journal_bytes(&self) -> Option<&[u8]> {
        self.journal.as_ref().map(|js| js.journal.as_bytes())
    }

    /// Snapshot every namespace's dynamic view; when journaling is on,
    /// the journal is compacted to this checkpoint.
    pub fn checkpoint(&mut self) -> arv_persist::Snapshot {
        let tick = self.monitor.now_tick();
        let snap = self.monitor.snapshot();
        if let Some(js) = &mut self.journal {
            let errored = js.journal.checkpoint(&snap).is_err();
            self.journal_ladder(errored, !errored, &snap, tick);
        }
        snap
    }

    /// Kill the monitor daemon and warm-restart it from its own
    /// journal (the intact on-disk bytes). See
    /// [`restore_from`](SimHost::restore_from).
    pub fn crash_restart(&mut self) -> RestoreEvent {
        // The fsync model: only the synced prefix survives the crash;
        // the unsynced tail — and the whole in-memory fallback — die
        // with the process.
        let bytes: Vec<u8> = self
            .journal
            .as_mut()
            .map(|js| {
                js.journal.crash();
                js.fallback = None;
                js.journal.durable_bytes().to_vec()
            })
            .unwrap_or_default();
        self.restore_from(&bytes)
    }

    /// Kill the monitor daemon and restart it from `bytes` (possibly a
    /// torn or corrupted journal — crash injection truncates the
    /// "file" at arbitrary offsets).
    ///
    /// The replacement monitor resumes the old tick clock, replays the
    /// journal, and reconciles the result against the live cgroup
    /// hierarchy via [`NsMonitor::recover`]; with no salvageable
    /// checkpoint it falls back to a cold [`NsMonitor::resync`].
    /// Events queued while the daemon was down are superseded by the
    /// rescan and discarded. An attached view daemon is rebuilt from
    /// the reconciled views, so its first-served answers are the
    /// journaled last-good values rather than the cold floor.
    pub fn restore_from(&mut self, bytes: &[u8]) -> RestoreEvent {
        let tick = self.monitor.now_tick();
        let tracer = self.monitor.tracer().clone();
        let mut fresh = NsMonitor::new(
            self.cfs.online(),
            self.mem.total(),
            *self.mem.watermarks(),
            self.cpu_cfg,
            self.mem_cfg,
        );
        fresh.set_tracer(tracer);
        fresh.align_tick(tick);
        self.monitor = fresh;

        let report = arv_persist::restore(bytes);
        let outcome = match &report.snapshot {
            Some(snap) => Some(self.monitor.recover(snap, &mut self.cgm)),
            None => {
                self.monitor.resync(&mut self.cgm);
                None
            }
        };
        let _ = self.pipe.drain();
        let _ = self.pipe.take_overflow_dropped();
        self.monitor.align_seq(self.pipe.next_seq());
        for (id, meta) in &self.containers {
            if let Some(ns) = self.monitor.namespace_mut(*id) {
                if ns.owner() != meta.init_pid {
                    ns.transfer_ownership(meta.init_pid);
                }
            }
        }
        self.watchdog.note_resynced();
        if let Some(server) = self.viewd.clone() {
            for id in self.containers.keys() {
                server.unregister(*id);
                self.viewd_register(&server, *id);
            }
            self.viewd_mirror_all();
            server.note_restore(
                outcome.map_or(0, |o| o.reconciled as u64),
                report.truncated_records,
            );
        }
        // Re-seed the journal with a compacted checkpoint of the
        // reconciled state; the ladder turns on the outcome (a clean
        // checkpoint heals a degraded rung, an error flips it).
        if self.journal.is_some() {
            let snap = self.monitor.snapshot();
            let js = self.journal.as_mut().expect("presence checked above");
            let errored = js.journal.checkpoint(&snap).is_err();
            self.journal_ladder(errored, !errored, &snap, tick);
        }
        let ev = RestoreEvent {
            tick,
            report,
            outcome,
        };
        self.last_restore = Some(ev.clone());
        ev
    }

    /// The most recent warm restart, if any.
    pub fn last_restore(&self) -> Option<&RestoreEvent> {
        self.last_restore.as_ref()
    }

    /// Append this firing's view state to the journal (deltas plus a
    /// group-commit sync, or a compacted checkpoint on the cadence).
    ///
    /// This is also where the durability ladder turns: while degraded
    /// the host retries a full checkpoint *every* tick (a clean one
    /// heals the rung), and any store error flips it onto the flagged
    /// in-memory fallback.
    fn journal_tick(&mut self) {
        let tick = self.monitor.now_tick();
        if self.journal.is_none() {
            return;
        }
        let snap = self.monitor.snapshot();
        let js = self.journal.as_mut().expect("presence checked above");
        js.journal.set_tick(tick);
        let checkpointing = js.durability_lost || tick % js.checkpoint_every == 0;
        let mut errored = false;
        if checkpointing {
            errored = js.journal.checkpoint(&snap).is_err();
        } else {
            for e in &snap.entries {
                if js.journal.append_delta(e, tick).is_err() {
                    errored = true;
                    break;
                }
            }
            if !errored {
                errored = js.journal.sync().is_err();
            }
        }
        self.journal_ladder(errored, checkpointing && !errored, &snap, tick);
    }

    /// Advance the durability degradation ladder after a store
    /// interaction: an error flips the host onto the flagged
    /// in-memory fallback journal (emitting
    /// [`PipelineEvent::DurabilityLost`]); a clean synced checkpoint
    /// heals it (emitting [`PipelineEvent::DurabilityRestored`] and
    /// dropping the fallback).
    fn journal_ladder(
        &mut self,
        errored: bool,
        clean_checkpoint: bool,
        snap: &arv_persist::Snapshot,
        tick: u64,
    ) {
        let Some(js) = &mut self.journal else { return };
        let mut flipped = false;
        let mut healed = false;
        if errored {
            js.io_errors += 1;
            flipped = !js.durability_lost;
            js.durability_lost = true;
            // Keep the fallback current: a takeover (not a crash —
            // RAM dies with the process) can still read the latest
            // views from it.
            let fb = js.fallback.get_or_insert_with(Journal::new);
            if flipped {
                let _ = fb.checkpoint(snap);
            } else {
                for e in &snap.entries {
                    let _ = fb.append_delta(e, tick);
                }
            }
        } else if clean_checkpoint && js.durability_lost {
            js.durability_lost = false;
            js.fallback = None;
            healed = true;
        }
        if flipped {
            self.monitor
                .tracer()
                .emit_pipeline(tick, None, PipelineEvent::DurabilityLost);
        }
        if healed {
            self.monitor
                .tracer()
                .emit_pipeline(tick, None, PipelineEvent::DurabilityRestored);
        }
        if flipped || healed {
            self.publish_durability();
        }
    }

    /// Mirror the ladder's current rung into the attached view daemon
    /// (Prometheus) so operators see durability next to staleness.
    fn publish_durability(&self) {
        let Some(server) = &self.viewd else { return };
        let (lost, io_errors, fallback_bytes) = self.durability_stats();
        server.note_durability(lost, io_errors, fallback_bytes);
    }

    /// `(durability_lost, io_errors, fallback_bytes)` of the journal
    /// ladder (all zero/false when journaling is off).
    fn durability_stats(&self) -> (bool, u64, u64) {
        self.journal.as_ref().map_or((false, 0, 0), |js| {
            (
                js.durability_lost,
                js.io_errors,
                js.fallback.as_ref().map_or(0, |f| f.len() as u64),
            )
        })
    }

    /// Whether the host's journal is currently on the degraded
    /// (durability-lost) rung of the ladder.
    pub fn durability_lost(&self) -> bool {
        self.journal.as_ref().is_some_and(|js| js.durability_lost)
    }

    /// Store errors the journal has absorbed since it was enabled.
    pub fn journal_io_errors(&self) -> u64 {
        self.journal.as_ref().map_or(0, |js| js.io_errors)
    }

    /// Size of the flagged in-memory fallback journal (zero while
    /// durable).
    pub fn journal_fallback_bytes(&self) -> u64 {
        self.durability_stats().2
    }

    /// The bytes that would survive a crash: the synced prefix of the
    /// on-disk journal (the in-memory fallback never counts).
    pub fn journal_durable_bytes(&self) -> Option<Vec<u8>> {
        self.journal
            .as_ref()
            .map(|js| js.journal.durable_bytes().to_vec())
    }

    /// Install a [`Tracer`](arv_telemetry::Tracer): both the
    /// `ns_monitor` (view decisions, container churn) and the watchdog
    /// (stalls, event loss) emit provenance into it. Share the same
    /// tracer with an attached [`ViewServer`] to get the serving
    /// layer's degraded-fallback decisions in the same ring.
    pub fn set_tracer(&mut self, tracer: arv_telemetry::Tracer) {
        self.monitor.set_tracer(tracer.clone());
        self.watchdog.set_tracer(tracer);
    }

    /// The monitor's tracer (disabled unless
    /// [`set_tracer`](SimHost::set_tracer) installed one).
    pub fn tracer(&self) -> &arv_telemetry::Tracer {
        self.monitor.tracer()
    }

    /// The monitor's update-timer tick count (advances once per firing,
    /// stalled or not).
    pub fn now_tick(&self) -> u64 {
        self.monitor.now_tick()
    }

    // --- view daemon attachment ---

    /// A [`HostSpec`] describing this host's physical configuration, for
    /// building a [`ViewServer`] whose host-fallback answers match.
    pub fn viewd_host_spec(&self) -> HostSpec {
        HostSpec {
            online_cpus: self.cfs.online_count(),
            total_memory: self.mem.total(),
            free_memory: self.mem.free(),
            cfs_period_us: arv_cgroups::cpu::DEFAULT_CFS_PERIOD.as_micros(),
        }
    }

    /// Attach a view-serving daemon. Every current and future container
    /// is registered with `server`, and its effective view is mirrored
    /// into the daemon's seqlocked cells whenever the `sys_namespace`
    /// update timer fires — so the daemon's concurrent query threads
    /// always answer with the same view the simulated kernel holds,
    /// while the simulation itself stays single-threaded.
    pub fn attach_viewd(&mut self, server: ViewServer) {
        let ids: Vec<CgroupId> = self.containers.keys().copied().collect();
        for id in &ids {
            self.viewd_register(&server, *id);
        }
        self.viewd = Some(server);
        for id in &ids {
            self.viewd_mirror(*id);
        }
    }

    /// The attached view daemon, if any.
    pub fn viewd(&self) -> Option<&ViewServer> {
        self.viewd.as_ref()
    }

    /// Attach a fleet periphery agent. On every update-timer firing the
    /// agent diffs the monitor's persisted snapshot and queues DELTA
    /// frames (FULL first), which the fleet transport drains via
    /// [`SimHost::take_fleet_frames`] — the same mirroring pattern as
    /// [`SimHost::attach_viewd`], pointed up at the cluster controller
    /// instead of sideways at local query threads.
    pub fn attach_periphery(&mut self, periphery: Periphery) {
        self.periphery = Some(periphery);
        self.periphery_observe(false);
    }

    /// The attached fleet periphery, if any.
    pub fn periphery(&self) -> Option<&Periphery> {
        self.periphery.as_ref()
    }

    /// Mutable access to the periphery (tenant assignment, stats).
    pub fn periphery_mut(&mut self) -> Option<&mut Periphery> {
        self.periphery.as_mut()
    }

    /// Drain the periphery's queued fleet frames (empty when detached).
    pub fn take_fleet_frames(&mut self) -> Vec<Vec<u8>> {
        self.periphery
            .as_mut()
            .map(Periphery::take_frames)
            .unwrap_or_default()
    }

    /// Deliver a controller response frame to the periphery. Returns
    /// whether the frame decoded to an ACK addressed at this host.
    pub fn deliver_fleet_ack(&mut self, frame: &[u8]) -> bool {
        let Some(periphery) = self.periphery.as_mut() else {
            return false;
        };
        match arv_fleet::decode_frame(frame) {
            Some(arv_fleet::Frame::Ack(ack)) => {
                periphery.handle_ack(&ack);
                true
            }
            _ => false,
        }
    }

    /// One periphery observation of the monitor's current snapshot.
    /// The durability rung rides along so the controller's fleet view
    /// carries it.
    fn periphery_observe(&mut self, stalled: bool) {
        let (lost, io_errors, fallback_bytes) = self.durability_stats();
        if let Some(periphery) = self.periphery.as_mut() {
            periphery.set_durability(lost, io_errors, fallback_bytes);
            periphery.observe(&self.monitor.snapshot(), stalled, 0);
        }
    }

    /// Register one container with the daemon, rebuilding the same
    /// initial state `ns_monitor` gave its namespace.
    fn viewd_register(&self, server: &ViewServer, id: CgroupId) {
        let Some(spec) = self.cgm.get(id) else { return };
        let bounds = CpuBounds::compute(&spec.cpu, self.cgm.total_shares(), self.cfs.online());
        let wm = self.mem.watermarks();
        let e_mem = EffectiveMemory::new(
            spec.mem.soft_limit_or(self.mem.total()),
            spec.mem.hard_limit_or(self.mem.total()),
            wm.low,
            wm.high,
            self.mem_cfg,
        );
        server.register(id, bounds, self.cpu_cfg, e_mem);
    }

    /// Push a container's current effective view into the daemon, along
    /// with the conservative fallback the daemon serves if this publish
    /// turns out to be the last one for a while.
    fn viewd_mirror(&self, id: CgroupId) {
        let (Some(server), Some(ns)) = (&self.viewd, self.monitor.namespace(id)) else {
            return;
        };
        server.set_fallback(id, ns.cpu_bounds().lower, ns.soft_limit());
        server.mirror(
            id,
            ns.effective_cpu(),
            ns.effective_memory(),
            ns.available_memory(),
        );
    }

    fn viewd_mirror_all(&self) {
        for id in self.containers.keys() {
            self.viewd_mirror(*id);
        }
    }

    /// The container's name, if it exists.
    pub fn container_name(&self, id: CgroupId) -> Option<&str> {
        self.containers.get(&id).map(|m| m.name.as_str())
    }

    /// Number of live containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Pid of the container's (post-exec) init process — the namespace
    /// owner.
    pub fn init_pid(&self, id: CgroupId) -> Option<Pid> {
        self.containers.get(&id).map(|m| m.init_pid)
    }

    /// Shortest allowed simulation step (bounds event-driven stepping).
    pub const MIN_STEP: SimDuration = SimDuration::from_micros(500);

    /// Advance one scheduling period. `demands` carries each running
    /// container's CPU request; the period length follows the CFS rule
    /// from the total runnable count.
    pub fn step(&mut self, demands: &[GroupDemand]) -> StepOutcome {
        self.step_capped(demands, SimDuration(u64::MAX))
    }

    /// Advance one step of at most `cap` (event-driven stepping: workload
    /// drivers cap the step at their next event — eden full, GC end,
    /// region end). The `sys_namespace` update timer still fires once per
    /// CFS scheduling period, over the accumulated usage window.
    pub fn step_capped(&mut self, demands: &[GroupDemand], cap: SimDuration) -> StepOutcome {
        let total_runnable: u32 = demands.iter().map(|d| d.runnable).sum();
        let sched = sched_period(total_runnable.max(1));
        let period = sched.min(cap).max(Self::MIN_STEP);

        let alloc = self.cfs.allocate(period, demands);
        self.ledger.record(&alloc);
        self.mem.kswapd_step(period);
        self.pump_events();
        self.update_timer_elapsed += period;
        if self.update_timer_elapsed >= sched {
            self.update_timer_elapsed = SimDuration::ZERO;
            self.on_update_timer();
        }
        self.loadavg.observe(total_runnable, period);
        let now = self.clock.advance(period);

        StepOutcome { period, alloc, now }
    }

    /// One firing of the `sys_namespace` update timer.
    fn on_update_timer(&mut self) {
        // The tick models the timer itself, so it advances whether or
        // not the monitor gets to its work — that difference is exactly
        // what staleness measures.
        self.monitor.observe_tick();
        if let Some(server) = &self.viewd {
            server.advance_tick();
        }
        // The first tick past a crash window is the warm restart: the
        // replacement daemon recovers from its journal before this
        // firing's regular work runs.
        if self
            .fault_plan
            .as_ref()
            .and_then(|p| p.restart_tick())
            .is_some_and(|t| t == self.monitor.now_tick())
        {
            self.crash_restart();
            // The rescan inside the restore supersedes any resync the
            // watchdog latched while the daemon was down.
            let _ = self.watchdog.take_pending_resync();
        }
        if self.monitor_stalled() {
            self.stall_ticks = self.stall_ticks.saturating_sub(1);
            self.watchdog.note_missed_deadline();
            // The usage window keeps accumulating unread; views and
            // publishes stay frozen at their last values — but the
            // periphery still reports the stall upward so the fleet
            // controller sees the host degrade in real time.
            self.periphery_observe(true);
            return;
        }
        // A resync latched while the monitor was stalled runs on the
        // first healthy firing.
        if self.watchdog.take_pending_resync() {
            self.resync_now();
        }
        self.monitor.tick_window(&self.ledger, &self.mem);
        self.ledger.reset_window();
        self.watchdog.note_deadline_met();
        self.journal_tick();
        if self.delay_publish_ticks > 0 {
            self.delay_publish_ticks -= 1;
        } else if self.viewd.is_some() {
            self.viewd_mirror_all();
        }
        self.periphery_observe(false);
    }

    /// Build a CPU-bound demand for a container from its cgroup settings.
    pub fn demand(&self, id: CgroupId, runnable: u32) -> GroupDemand {
        let spec = self.cgm.get(id).expect("unknown container");
        GroupDemand::cpu_bound(
            id,
            runnable,
            spec.cpu.shares,
            spec.cpu.cpu_cap(self.cfs.online()),
        )
    }

    /// Effective CPU from the container's `sys_namespace`.
    pub fn effective_cpu(&self, id: CgroupId) -> u32 {
        self.monitor
            .effective_cpu(id)
            .expect("container has a namespace")
    }

    /// Effective memory from the container's `sys_namespace`.
    pub fn effective_memory(&self, id: CgroupId) -> Bytes {
        self.monitor
            .effective_memory(id)
            .expect("container has a namespace")
    }

    /// The virtual sysfs front-end over the current host state.
    pub fn sysfs(&self) -> VirtualSysfs<'_> {
        VirtualSysfs::new(
            &self.monitor,
            HostView {
                online_cpus: self.cfs.online_count(),
                total_memory: self.mem.total(),
                free_memory: self.mem.free(),
            },
        )
    }

    /// Like [`SimHost::sysfs`], but staleness-aware: container queries
    /// are judged against `policy` and degrade to the conservative
    /// fallback once their view ages past the budget.
    pub fn sysfs_with_policy(&self, policy: StalenessPolicy) -> VirtualSysfs<'_> {
        VirtualSysfs::with_policy(
            &self.monitor,
            HostView {
                online_cpus: self.cfs.online_count(),
                total_memory: self.mem.total(),
                free_memory: self.mem.free(),
            },
            policy,
        )
    }

    /// `sysconf` as seen from inside `caller` (or the host for `None`).
    pub fn sysconf(&self, caller: Option<CgroupId>, q: Sysconf) -> u64 {
        self.sysfs().sysconf(caller, q)
    }

    /// 1-minute load average — the `getloadavg()[0]` series libgomp's
    /// dynamic-thread heuristic reads.
    pub fn loadavg(&self) -> f64 {
        self.loadavg.value()
    }

    /// Prime the load average to a steady-state value (experiments that
    /// start mid-workload would otherwise wait out the EWMA warm-up).
    pub fn prime_loadavg(&mut self, value: f64) {
        self.loadavg = Loadavg::primed(arv_cfs::loadavg::ONE_MINUTE, value);
    }

    // --- memory pass-throughs for workload models ---

    /// Charge container memory (allocation / heap commit).
    pub fn charge(&mut self, id: CgroupId, amount: Bytes) -> ChargeOutcome {
        self.mem.charge(id, amount)
    }

    /// Release container memory (heap shrink / free).
    pub fn uncharge(&mut self, id: CgroupId, amount: Bytes) {
        self.mem.uncharge(id, amount)
    }

    /// The container's resident memory (`memory.usage_in_bytes`).
    pub fn memory_usage(&self, id: CgroupId) -> Bytes {
        self.mem.usage(id)
    }

    /// Fraction of the container's footprint on swap.
    pub fn swapped_fraction(&self, id: CgroupId) -> f64 {
        self.mem.swapped_fraction(id)
    }

    /// System-wide free physical memory.
    pub fn free_memory(&self) -> Bytes {
        self.mem.free()
    }

    /// The memory manager.
    pub fn mem(&self) -> &MemSim {
        &self.mem
    }

    /// The CPU scheduler.
    pub fn cfs(&self) -> &CfsSim {
        &self.cfs
    }

    /// The CPU usage ledger.
    pub fn ledger(&self) -> &UsageLedger {
        &self.ledger
    }

    /// The `ns_monitor`.
    pub fn monitor(&self) -> &NsMonitor {
        &self.monitor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_resview::Sysconf;

    fn five_paper_containers(host: &mut SimHost) -> Vec<CgroupId> {
        (0..5)
            .map(|i| {
                host.launch(
                    &ContainerSpec::new(format!("dacapo-{i}"), 20)
                        .cpus(10.0)
                        .cpu_shares(1024),
                )
            })
            .collect()
    }

    #[test]
    fn launch_creates_namespace_and_transfers_ownership() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c0", 20));
        let ns = host.monitor().namespace(id).unwrap();
        assert_eq!(ns.owner(), host.init_pid(id).unwrap());
        assert_eq!(host.container_name(id), Some("c0"));
    }

    #[test]
    fn effective_cpu_converges_to_fair_share_under_contention() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        // All five fully loaded: no slack → everyone sits at the lower
        // bound of 4, which is exactly the fair share.
        for _ in 0..50 {
            let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
            host.step(&demands);
        }
        for id in &ids {
            assert_eq!(host.effective_cpu(*id), 4);
        }
    }

    #[test]
    fn effective_cpu_expands_when_neighbours_go_idle() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        // Only container 0 runs; the other four are idle.
        for _ in 0..50 {
            let demands = vec![host.demand(ids[0], 20)];
            host.step(&demands);
        }
        // Work conservation lets it climb to its 10-core quota.
        assert_eq!(host.effective_cpu(ids[0]), 10);
    }

    #[test]
    fn effective_cpu_contracts_when_neighbours_return() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        for _ in 0..50 {
            let demands = vec![host.demand(ids[0], 20)];
            host.step(&demands);
        }
        assert_eq!(host.effective_cpu(ids[0]), 10);
        for _ in 0..50 {
            let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
            host.step(&demands);
        }
        assert_eq!(host.effective_cpu(ids[0]), 4);
    }

    #[test]
    fn attached_periphery_streams_hello_then_deltas() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        host.attach_periphery(Periphery::new(7));
        for _ in 0..10 {
            let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
            host.step(&demands);
        }
        let frames = host.take_fleet_frames();
        assert!(frames.len() >= 2, "hello plus at least one delta");
        assert!(matches!(
            arv_fleet::decode_frame(&frames[0]),
            Some(arv_fleet::Frame::Hello(h)) if h.host == 7
        ));
        let full = frames.iter().skip(1).any(
            |f| matches!(arv_fleet::decode_frame(f), Some(arv_fleet::Frame::Delta(d)) if d.full),
        );
        assert!(full, "first delta after attach is a FULL snapshot");
        // A controller resync request schedules another FULL once state moves.
        let resync = arv_fleet::encode_ack(&arv_fleet::Ack {
            host: 7,
            expected_seq: 0,
            ctl_epoch: 0,
            resync: true,
            not_leader: false,
            policy: None,
        });
        assert!(host.deliver_fleet_ack(&resync));
        assert_eq!(host.periphery().unwrap().stats().resyncs, 1);
    }

    #[test]
    fn sysconf_inside_vs_outside_container() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        for _ in 0..10 {
            let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
            host.step(&demands);
        }
        assert_eq!(host.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 4);
        assert_eq!(host.sysconf(None, Sysconf::NprocessorsOnln), 20);
    }

    #[test]
    fn terminate_releases_resources_and_bounds() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        host.charge(ids[1], Bytes::from_gib(2));
        for id in &ids[1..] {
            host.terminate(*id);
        }
        assert_eq!(host.container_count(), 1);
        assert_eq!(host.free_memory(), host.total_memory());
        // Alone now: lower bound returns to the 10-core quota.
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
        assert_eq!(
            host.monitor().namespace(ids[0]).unwrap().cpu_bounds().lower,
            10
        );
    }

    #[test]
    fn update_limits_propagates_to_namespace() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20).cpus(10.0));
        host.update_limits(
            id,
            &ContainerSpec::new("c", 20)
                .cpus(2.0)
                .memory(Bytes::from_gib(1)),
        );
        let ns = host.monitor().namespace(id).unwrap();
        assert_eq!(ns.cpu_bounds().upper, 2);
        assert_eq!(host.effective_memory(id), Bytes::from_gib(1));
    }

    #[test]
    fn step_advances_clock_by_cfs_period_rule() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        // 4 runnable ≤ 8 → 24 ms.
        let out = host.step(&[host.demand(id, 4)]);
        assert_eq!(out.period, SimDuration::from_millis(24));
        // 20 runnable → 3 ms × 20 = 60 ms.
        let out = host.step(&[host.demand(id, 20)]);
        assert_eq!(out.period, SimDuration::from_millis(60));
        assert_eq!(host.now().as_micros(), 84_000);
    }

    #[test]
    fn loadavg_rises_under_sustained_load() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        assert_eq!(host.loadavg(), 0.0);
        for _ in 0..1000 {
            let d = host.demand(id, 20);
            host.step(&[d]);
        }
        assert!(host.loadavg() > 1.0);
        host.prime_loadavg(20.0);
        assert_eq!(host.loadavg(), 20.0);
    }

    #[test]
    fn step_capped_respects_cap_and_floor() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        // Cap below the scheduling period shortens the step …
        let out = host.step_capped(&[host.demand(id, 4)], SimDuration::from_millis(3));
        assert_eq!(out.period, SimDuration::from_millis(3));
        // … but never below MIN_STEP.
        let out = host.step_capped(&[host.demand(id, 4)], SimDuration::from_micros(1));
        assert_eq!(out.period, SimHost::MIN_STEP);
        // A huge cap falls back to the CFS period rule.
        let out = host.step_capped(&[host.demand(id, 4)], SimDuration::from_secs(10));
        assert_eq!(out.period, SimDuration::from_millis(24));
    }

    #[test]
    fn update_timer_fires_once_per_scheduling_period_under_short_steps() {
        // Many 1 ms steps: the view may only move after a full 24 ms of
        // accumulated window, exactly as with native-period stepping.
        let mut host = SimHost::paper_testbed();
        for _ in 0..4 {
            host.launch(&ContainerSpec::new("x", 20).cpus(10.0));
        }
        // Launched into a 5-way share, the view is born at the 4-CPU
        // lower bound and has a 10-CPU quota to climb to.
        let a = host.launch(&ContainerSpec::new("a", 20).cpus(10.0));
        assert_eq!(host.effective_cpu(a), 4);
        let mut changes = 0;
        let mut last = host.effective_cpu(a);
        for _ in 0..48 {
            let d = host.demand(a, 20);
            host.step_capped(&[d], SimDuration::from_millis(1));
            if host.effective_cpu(a) != last {
                changes += 1;
                last = host.effective_cpu(a);
            }
        }
        // 48 ms of 1 ms steps = at most 2 update-timer firings.
        assert!(changes <= 2, "view moved {changes} times in 48 ms");
    }

    #[test]
    fn attached_viewd_mirrors_launch_step_and_terminate() {
        let mut host = SimHost::paper_testbed();
        let server = ViewServer::new(host.viewd_host_spec(), 8);
        host.attach_viewd(server.clone());
        let ids = five_paper_containers(&mut host);
        assert_eq!(server.len(), 5);
        let client = server.client();
        // Mirrored at launch: the daemon answers exactly what the
        // simulated kernel's namespace holds for every container (the
        // last-launched are born at the 4-CPU lower bound; earlier ones
        // keep their elevated views until the update timer contracts
        // them).
        for id in &ids {
            assert_eq!(
                client.sysconf(Some(*id), Sysconf::NprocessorsOnln),
                u64::from(host.effective_cpu(*id))
            );
        }
        assert_eq!(client.sysconf(Some(ids[4]), Sysconf::NprocessorsOnln), 4);
        // Only container 0 runs; work conservation grows its view, and
        // every update-timer firing pushes the new view to the daemon.
        for _ in 0..50 {
            let demands = vec![host.demand(ids[0], 20)];
            host.step(&demands);
        }
        assert_eq!(host.effective_cpu(ids[0]), 10);
        assert_eq!(client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 10);
        let online = client
            .read(Some(ids[0]), "/sys/devices/system/cpu/online")
            .unwrap();
        assert_eq!(online.image.as_str(), "0-9");
        host.terminate(ids[0]);
        assert_eq!(server.len(), 4);
        // Unknown again: the daemon falls back to the host view.
        assert_eq!(client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 20);
    }

    #[test]
    fn attach_viewd_registers_existing_containers() {
        let mut host = SimHost::paper_testbed();
        let ids = five_paper_containers(&mut host);
        let server = ViewServer::new(host.viewd_host_spec(), 4);
        host.attach_viewd(server.clone());
        assert_eq!(server.len(), 5);
        let client = server.client();
        assert_eq!(
            client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln),
            u64::from(host.effective_cpu(ids[0]))
        );
    }

    #[test]
    fn update_limits_mirrors_into_viewd() {
        let mut host = SimHost::paper_testbed();
        let server = ViewServer::new(host.viewd_host_spec(), 4);
        host.attach_viewd(server.clone());
        let id = host.launch(&ContainerSpec::new("c", 20).cpus(10.0));
        host.update_limits(
            id,
            &ContainerSpec::new("c", 20)
                .cpus(2.0)
                .memory(Bytes::from_gib(1)),
        );
        let client = server.client();
        assert_eq!(
            client.sysconf(Some(id), Sysconf::PhysPages) * arv_resview::PAGE_SIZE,
            Bytes::from_gib(1).as_u64()
        );
        let gen_after_update = client.generation(id).unwrap();
        assert!(gen_after_update >= 4, "launch + update both published");
    }

    #[test]
    fn terminate_unknown_container_is_noop() {
        let mut host = SimHost::paper_testbed();
        host.terminate(CgroupId(77));
        assert_eq!(host.container_count(), 0);
    }

    #[test]
    fn stalled_monitor_misses_launches_until_resync() {
        let mut host = SimHost::paper_testbed();
        let a = host.launch(&ContainerSpec::new("a", 20).cpus(10.0));
        host.inject_monitor_stall(4);
        assert!(host.monitor_stalled());
        let d = host.demand(a, 4);
        host.step(&[d]);
        // Launched mid-stall: the Created event is stuck in the pipe.
        let b = host.launch(&ContainerSpec::new("b", 20).cpus(10.0));
        assert!(host.monitor().namespace(b).is_none());
        // Ride out the stall; the first healthy firing resyncs.
        for _ in 0..5 {
            let d = host.demand(a, 4);
            host.step(&[d]);
        }
        assert!(!host.monitor_stalled());
        let ns = host.monitor().namespace(b).expect("resync recreated it");
        assert_eq!(ns.owner(), host.init_pid(b).unwrap());
        let w = host.watchdog_stats();
        assert!(w.missed_ticks >= 3, "stall shows up as missed deadlines");
        assert!(w.resyncs >= 1);
    }

    #[test]
    fn dropped_events_are_detected_as_a_gap_and_resynced() {
        use arv_sim_core::FaultConfig;
        let mut host = SimHost::paper_testbed();
        let _a = host.launch(&ContainerSpec::new("a", 20).cpus(10.0));
        host.set_fault_plan(FaultPlan::new(
            7,
            FaultConfig {
                drop_prob: 1.0,
                ..FaultConfig::quiet()
            },
        ));
        let b = host.launch(&ContainerSpec::new("b", 20).cpus(10.0));
        assert!(
            host.monitor().namespace(b).is_none(),
            "Created event was dropped in flight"
        );
        assert!(host.fault_stats().unwrap().dropped >= 1);
        host.take_fault_plan();
        // The next delivered event exposes the sequence gap; the
        // watchdog resyncs and recovers container b wholesale.
        let c = host.launch(&ContainerSpec::new("c", 20).cpus(10.0));
        assert!(host.monitor().namespace(b).is_some());
        assert!(host.monitor().namespace(c).is_some());
        assert_eq!(
            host.monitor().namespace(b).unwrap().owner(),
            host.init_pid(b).unwrap()
        );
        assert!(host.watchdog_stats().gaps_detected >= 1);
        assert!(host.watchdog_stats().resyncs >= 1);
    }

    #[test]
    fn publish_delay_degrades_viewd_to_lower_bound_and_recovers() {
        let mut host = SimHost::paper_testbed();
        let server = ViewServer::new(host.viewd_host_spec(), 4);
        host.attach_viewd(server.clone());
        let ids = five_paper_containers(&mut host);
        for _ in 0..50 {
            let d = vec![host.demand(ids[0], 20)];
            host.step(&d);
        }
        assert_eq!(host.effective_cpu(ids[0]), 10);
        let client = server.client();
        assert_eq!(client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 10);
        // Suppress publishes past the staleness budget: the daemon keeps
        // answering, but from the conservative fallback (the 4-CPU lower
        // bound), never the frozen 10-CPU view.
        let budget = server.policy().budget;
        host.inject_publish_delay(budget + 2);
        for _ in 0..(budget + 2) {
            let d = vec![host.demand(ids[0], 20)];
            host.step(&d);
        }
        assert!(client.health(Some(ids[0])).is_degraded());
        assert_eq!(client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 4);
        assert!(server.metrics().degraded_serves >= 1);
        // Publishes resume: one firing later the live view is back.
        let d = vec![host.demand(ids[0], 20)];
        host.step(&d);
        assert!(client.health(Some(ids[0])).is_fresh());
        assert_eq!(client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 10);
    }

    #[test]
    fn stalled_monitor_ages_viewd_views_into_degraded_serving() {
        let mut host = SimHost::paper_testbed();
        let server = ViewServer::new(host.viewd_host_spec(), 4);
        host.attach_viewd(server.clone());
        let ids = five_paper_containers(&mut host);
        for _ in 0..50 {
            let d = vec![host.demand(ids[0], 20)];
            host.step(&d);
        }
        let client = server.client();
        assert_eq!(client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 10);
        let budget = server.policy().budget;
        host.inject_monitor_stall(budget + 2);
        for _ in 0..(budget + 2) {
            let d = vec![host.demand(ids[0], 20)];
            host.step(&d);
        }
        // The stall froze publishes too; the viewd clock kept ticking.
        assert!(client.health(Some(ids[0])).is_degraded());
        assert_eq!(client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 4);
        // Recovery: the post-stall firing updates and republishes.
        let d = vec![host.demand(ids[0], 20)];
        host.step(&d);
        assert!(client.health(Some(ids[0])).is_fresh());
        assert!(host.watchdog_stats().missed_ticks >= budget);
    }

    /// Grow container 0's view to its 10-CPU quota under a 5-way share.
    fn grow_first(host: &mut SimHost, ids: &[CgroupId]) {
        for _ in 0..50 {
            let d = vec![host.demand(ids[0], 20)];
            host.step(&d);
        }
        assert_eq!(host.effective_cpu(ids[0]), 10);
    }

    #[test]
    fn crash_restart_resumes_journaled_views_not_the_floor() {
        let mut host = SimHost::paper_testbed();
        host.enable_journal(8);
        let ids = five_paper_containers(&mut host);
        grow_first(&mut host, &ids);
        let grown_mem = host.effective_memory(ids[0]);
        let ev = host.crash_restart();
        // The replacement monitor resumed the journaled views, not the
        // cold 4-CPU lower bound.
        assert_eq!(host.effective_cpu(ids[0]), 10);
        assert_eq!(host.effective_memory(ids[0]), grown_mem);
        assert!(ev.report.snapshot.is_some(), "journal held a checkpoint");
        assert_eq!(ev.report.truncated_records, 0);
        let outcome = ev.outcome.expect("recover ran, not cold resync");
        assert_eq!(outcome.restored + outcome.reconciled, 5);
        assert_eq!(outcome.dropped, 0);
        assert_eq!(outcome.admitted, 0);
        assert_eq!(host.last_restore(), Some(&ev));
        // The clock kept its place: staleness stays honest.
        assert!(host.now_tick() > 0);
        // And adjustment resumes from the restored values.
        let d = vec![host.demand(ids[0], 20)];
        host.step(&d);
        assert_eq!(host.effective_cpu(ids[0]), 10);
    }

    #[test]
    fn restore_from_torn_journal_is_prefix_consistent() {
        let mut host = SimHost::paper_testbed();
        host.enable_journal(64); // deltas only after the initial checkpoint
        let ids = five_paper_containers(&mut host);
        grow_first(&mut host, &ids);
        let bytes = host.journal_bytes().expect("journaling enabled").to_vec();
        // Tear the tail mid-record: restore never panics, discards the
        // torn frame, and lands on the longest valid prefix.
        let cut = bytes.len() - 7;
        let ev = host.restore_from(&bytes[..cut]);
        assert!(ev.report.truncated_records >= 1);
        assert!(ev.report.snapshot.is_some());
        // Views are a valid earlier state: between the bounds, and the
        // monitor keeps adjusting from there.
        let cpu = host.effective_cpu(ids[0]);
        assert!((4..=10).contains(&cpu), "restored cpu {cpu} out of bounds");
        let d = vec![host.demand(ids[0], 20)];
        host.step(&d);
        assert!(host.effective_cpu(ids[0]) >= cpu);
    }

    #[test]
    fn restore_from_empty_journal_falls_back_to_cold_resync() {
        let mut host = SimHost::paper_testbed();
        host.enable_journal(8);
        let ids = five_paper_containers(&mut host);
        grow_first(&mut host, &ids);
        let ev = host.restore_from(&[]);
        assert!(ev.report.snapshot.is_none());
        assert!(ev.outcome.is_none(), "no checkpoint: cold resync");
        // Cold restart: views are rebuilt from static bounds (the floor).
        assert_eq!(host.effective_cpu(ids[0]), 4);
        assert!(host.watchdog_stats().resyncs >= 1);
    }

    #[test]
    fn fault_plan_crash_window_downs_the_daemon_then_warm_restarts() {
        use arv_sim_core::FaultConfig;
        let mut host = SimHost::paper_testbed();
        let server = ViewServer::new(host.viewd_host_spec(), 4);
        host.attach_viewd(server.clone());
        host.enable_journal(4);
        let ids = five_paper_containers(&mut host);
        grow_first(&mut host, &ids);
        let client = server.client();
        assert_eq!(client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 10);
        let crash_start = host.now_tick() + 1;
        host.set_fault_plan(FaultPlan::new(
            3,
            FaultConfig {
                crash_at: Some((crash_start, 2)),
                ..FaultConfig::quiet()
            },
        ));
        // Ride through the crash window and the restart tick.
        for _ in 0..4 {
            let d = vec![host.demand(ids[0], 20)];
            host.step(&d);
        }
        let ev = host.last_restore().expect("warm restart fired");
        assert_eq!(ev.tick, crash_start + 2);
        assert!(ev.outcome.is_some());
        // First-served views after the restart are the reconciled
        // journal state, not the cold floor.
        assert_eq!(host.effective_cpu(ids[0]), 10);
        assert_eq!(client.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 10);
        assert!(client.health(Some(ids[0])).is_fresh());
        let m = server.metrics();
        assert_eq!(m.journal_truncated_records, 0);
        let w = host.watchdog_stats();
        assert!(w.missed_ticks >= 2, "crash window missed its deadlines");
        assert!(w.resyncs >= 1, "restart counts as a recovery pass");
    }

    #[test]
    fn terminate_is_journaled_so_restart_drops_the_container() {
        let mut host = SimHost::paper_testbed();
        host.enable_journal(64);
        let ids = five_paper_containers(&mut host);
        grow_first(&mut host, &ids);
        host.terminate(ids[4]);
        let ev = host.crash_restart();
        assert!(host.monitor().namespace(ids[4]).is_none());
        let outcome = ev.outcome.expect("recover ran");
        assert_eq!(outcome.restored + outcome.reconciled, 4);
        assert_eq!(outcome.dropped, 0, "journal already recorded the remove");
    }
}
