//! Container runtime: Docker-like lifecycle on the simulated host.
//!
//! A container here is what it is to the kernel — a named cgroup plus a
//! set of namespaces (including the paper's `sys_namespace`) holding a
//! workload. [`SimHost`] wires together every substrate crate:
//! the cgroup manager, the CFS scheduler model, the memory manager,
//! and the `ns_monitor`, and advances them in lock-step scheduling
//! periods. Workload models (the simulated JVM and OpenMP runtimes) plug
//! in by declaring per-period CPU demand and receiving their grant.
//!
//! The init-process dance from §3.2 is modelled too: the original init
//! sets up the namespaces, `exec`s the user command, and dies; namespace
//! ownership transfers to the new init so the updater keeps reaching it.
//!
//! # Example
//!
//! ```
//! use arv_container::{ContainerSpec, SimHost};
//! use arv_resview::Sysconf;
//!
//! let mut host = SimHost::paper_testbed(); // 20 cores, 128 GB
//! let ids: Vec<_> = (0..5)
//!     .map(|i| host.launch(&ContainerSpec::new(format!("c{i}"), 20).cpus(10.0)))
//!     .collect();
//! // Saturate everyone for a while.
//! for _ in 0..50 {
//!     let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
//!     host.step(&demands);
//! }
//! // Inside a container, resource probing sees the effective share …
//! assert_eq!(host.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln), 4);
//! // … while a host process still sees the physical machine.
//! assert_eq!(host.sysconf(None, Sysconf::NprocessorsOnln), 20);
//! ```

#![warn(missing_docs)]

pub mod host;
pub mod spec;

pub use host::{SimHost, StepOutcome};
pub use spec::ContainerSpec;
