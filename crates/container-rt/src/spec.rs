//! Container launch specifications (the `docker run` flags the paper's
//! experiments use).

use arv_cgroups::{Bytes, CpuController, CpuSet, MemController};

/// Resource specification for launching a container.
#[derive(Debug, Clone)]
pub struct ContainerSpec {
    /// The container's name.
    pub name: String,
    /// The cpu controller settings.
    pub cpu: CpuController,
    /// The memory controller settings.
    pub mem: MemController,
}

impl ContainerSpec {
    /// Unconstrained container on a host with `online` CPUs.
    pub fn new(name: impl Into<String>, online: u32) -> ContainerSpec {
        ContainerSpec {
            name: name.into(),
            cpu: CpuController::unlimited(online),
            mem: MemController::unlimited(),
        }
    }

    /// `docker run --cpus=<n>` — CFS quota equivalent to `n` CPUs.
    pub fn cpus(mut self, n: f64) -> ContainerSpec {
        self.cpu = self.cpu.with_quota_cpus(n);
        self
    }

    /// `docker run --cpu-shares=<n>`.
    pub fn cpu_shares(mut self, shares: u64) -> ContainerSpec {
        self.cpu = self.cpu.with_shares(shares);
        self
    }

    /// `docker run --cpuset-cpus=<lo>-<hi-1>`.
    pub fn cpuset(mut self, set: CpuSet) -> ContainerSpec {
        self.cpu = self.cpu.with_cpuset(set);
        self
    }

    /// `docker run --memory=<bytes>` — the hard limit.
    pub fn memory(mut self, hard: Bytes) -> ContainerSpec {
        self.mem = self.mem.with_hard_limit(hard);
        self
    }

    /// `docker run --memory-reservation=<bytes>` — the soft limit.
    pub fn memory_reservation(mut self, soft: Bytes) -> ContainerSpec {
        self.mem = self.mem.with_soft_limit(soft);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_paper_fig2a_container() {
        // §2.2: CPU limit of 10 cores, equal shares, on a 20-core host.
        let spec = ContainerSpec::new("dacapo-0", 20)
            .cpus(10.0)
            .cpu_shares(1024);
        assert_eq!(spec.cpu.quota_ratio(), Some(10.0));
        assert_eq!(spec.cpu.shares, 1024);
        assert!(spec.mem.hard_limit.is_none());
    }

    #[test]
    fn builder_produces_paper_fig11_container() {
        // §5.3: 1 GB hard memory limit.
        let spec = ContainerSpec::new("elastic", 20).memory(Bytes::from_gib(1));
        assert_eq!(spec.mem.hard_limit, Some(Bytes::from_gib(1)));
    }

    #[test]
    fn builder_composes_soft_and_hard_limits() {
        let spec = ContainerSpec::new("c", 20)
            .memory(Bytes::from_gib(30))
            .memory_reservation(Bytes::from_gib(15));
        assert!(spec.mem.is_consistent());
    }

    #[test]
    fn cpuset_builder() {
        let spec = ContainerSpec::new("pinned", 20).cpuset(CpuSet::range(0, 2));
        assert_eq!(spec.cpu.cpuset.count(), 2);
    }
}
