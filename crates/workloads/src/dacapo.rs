//! DaCapo benchmark profiles (the five used throughout the paper:
//! h2, jython, lusearch, sunflow, xalan).
//!
//! Calibration notes (relative character, not absolute numbers):
//! * **h2** — in-memory database: the largest live set of the five (its
//!   working set famously does not fit the 256 MB heap JDK 9 derives from
//!   a 1 GB hard limit — the missing bar of Figure 2(b)); moderate
//!   allocation rate.
//! * **jython** — interpreter: brisk allocation of short-lived objects,
//!   small live set, fewer application threads (GC gains are modest, as
//!   in Figures 7(b)/(g)).
//! * **lusearch** — parallel text search: the most allocation-intensive,
//!   tiny live set, shortest run; its footprint overruns a 1 GB hard
//!   limit under an unconstrained heap (Figure 11's collapse case).
//! * **sunflow** — parallel ray tracer: CPU-heavy with moderate
//!   allocation; stays under 1 GB.
//! * **xalan** — parallel XSLT: allocation-heavy; the second Figure 11
//!   collapse case.

use arv_cgroups::Bytes;
use arv_jvm::JavaProfile;
use arv_sim_core::SimDuration;

/// The DaCapo benchmarks evaluated in the paper.
pub const DACAPO_BENCHMARKS: [&str; 5] = ["h2", "jython", "lusearch", "sunflow", "xalan"];

/// Profile for a DaCapo benchmark by name. Panics on unknown names.
pub fn dacapo_profile(name: &str) -> JavaProfile {
    let p = match name {
        "h2" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(100),
            mutators: 8,
            alloc_rate: Bytes::from_mib(250),
            minor_survival: 0.25,
            young_live: Bytes::from_mib(80),
            promotion: 0.20,
            live_growth: 0.05,
            live_cap: Bytes::from_mib(350),
            min_heap: Bytes::from_mib(420),
            touch_intensity: 0.7,
        },
        "jython" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(120),
            mutators: 4,
            alloc_rate: Bytes::from_mib(450),
            minor_survival: 0.08,
            young_live: Bytes::from_mib(30),
            promotion: 0.20,
            live_growth: 0.01,
            live_cap: Bytes::from_mib(70),
            min_heap: Bytes::from_mib(110),
            touch_intensity: 0.5,
        },
        "lusearch" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(24),
            mutators: 16,
            alloc_rate: Bytes::from_gib(3),
            minor_survival: 0.05,
            young_live: Bytes::from_mib(8),
            promotion: 0.10,
            live_growth: 0.002,
            live_cap: Bytes::from_mib(24),
            min_heap: Bytes::from_mib(64),
            touch_intensity: 0.4,
        },
        "sunflow" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(60),
            mutators: 16,
            alloc_rate: Bytes::from_mib(500),
            minor_survival: 0.10,
            young_live: Bytes::from_mib(32),
            promotion: 0.20,
            live_growth: 0.005,
            live_cap: Bytes::from_mib(64),
            min_heap: Bytes::from_mib(160),
            touch_intensity: 0.5,
        },
        "xalan" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(80),
            mutators: 16,
            alloc_rate: Bytes::from_mib(1800),
            minor_survival: 0.07,
            young_live: Bytes::from_mib(48),
            promotion: 0.15,
            live_growth: 0.004,
            live_cap: Bytes::from_mib(60),
            min_heap: Bytes::from_mib(120),
            touch_intensity: 0.5,
        },
        other => panic!("unknown DaCapo benchmark {other:?}"),
    };
    p.validate();
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for name in DACAPO_BENCHMARKS {
            dacapo_profile(name).validate();
        }
    }

    #[test]
    fn h2_working_set_exceeds_quarter_of_1gb() {
        // The Figure 2(b) OOM precondition: min heap > 256 MB.
        assert!(dacapo_profile("h2").min_heap > Bytes::from_mib(256));
        // Everyone else fits.
        for name in ["jython", "lusearch", "sunflow", "xalan"] {
            assert!(
                dacapo_profile(name).min_heap <= Bytes::from_mib(256),
                "{name}"
            );
        }
    }

    #[test]
    fn lusearch_and_xalan_are_the_alloc_heavy_pair() {
        let lu = dacapo_profile("lusearch");
        let xa = dacapo_profile("xalan");
        for other in ["h2", "jython", "sunflow"] {
            let o = dacapo_profile(other);
            assert!(lu.alloc_rate > o.alloc_rate);
            assert!(xa.alloc_rate > o.alloc_rate);
        }
    }

    #[test]
    #[should_panic]
    fn unknown_benchmark_panics() {
        dacapo_profile("avrora");
    }
}
