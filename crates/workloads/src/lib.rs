//! Calibrated synthetic workload profiles.
//!
//! The paper evaluates with DaCapo, SPECjvm2008, HiBench (Spark), the NAS
//! Parallel Benchmarks, sysbench background load, and a §5.3 allocation
//! micro-benchmark. None of those suites can run here (no JVM, no Spark,
//! no OpenMP), so each benchmark is encoded as a *profile* — the
//! parameters that drive the runtime models: mutator CPU work and thread
//! count, allocation rate, survival/promotion behaviour, live-set size,
//! parallel-region structure. Values are calibrated so relative GC load
//! and memory footprints match each benchmark's published character and
//! the behaviours the paper reports (e.g. H2's working set not fitting in
//! 256 MB, lusearch/xalan overrunning a 1 GB hard limit, DaCapo heaps
//! set to 3× the minimum heap size).
//!
//! The Figure 1 DockerHub census is an embedded dataset in
//! [`dockerhub`].

#![warn(missing_docs)]

pub mod dacapo;
pub mod dockerhub;
pub mod hibench;
pub mod microbench;
pub mod npb;
pub mod specjvm;
pub mod sysbench;

pub use dacapo::{dacapo_profile, DACAPO_BENCHMARKS};
pub use dockerhub::{dockerhub_census, language_stats, ImageRecord, LanguageStat};
pub use hibench::{hibench_profile, HIBENCH_BENCHMARKS};
pub use microbench::alloc_churn_microbenchmark;
pub use npb::{npb_profile, NPB_BENCHMARKS};
pub use specjvm::{specjvm_profile, SPECJVM_BENCHMARKS};
pub use sysbench::{sysbench_mix, CpuHog};
