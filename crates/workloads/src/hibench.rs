//! HiBench big-data profiles (Figure 9: nweight, als, kmeans, pagerank).
//!
//! "Realistic Java-based workloads, such as big data processing
//! frameworks, require much larger heap sizes" (§5.2) — these profiles
//! carry multi-GiB live sets and young working sets large enough that GC
//! *does* scale to many threads, which is why the adaptive JVM keeps its
//! advantage here while small DaCapo inputs saturate early.

use arv_cgroups::Bytes;
use arv_jvm::JavaProfile;
use arv_sim_core::SimDuration;

/// The HiBench workloads evaluated in Figure 9.
pub const HIBENCH_BENCHMARKS: [&str; 4] = ["nweight", "als", "kmeans", "pagerank"];

/// Profile for a HiBench workload by name. Panics on unknown names.
pub fn hibench_profile(name: &str) -> JavaProfile {
    let p = match name {
        "nweight" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(300),
            mutators: 20,
            alloc_rate: Bytes::from_gib(1),
            minor_survival: 0.20,
            young_live: Bytes::from_mib(512),
            promotion: 0.30,
            live_growth: 0.04,
            live_cap: Bytes::from_gib(3),
            min_heap: Bytes::from_mib(3800),
            touch_intensity: 0.8,
        },
        "als" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(260),
            mutators: 20,
            alloc_rate: Bytes::from_mib(1400),
            minor_survival: 0.18,
            young_live: Bytes::from_mib(384),
            promotion: 0.25,
            live_growth: 0.03,
            live_cap: Bytes::from_gib(2),
            min_heap: Bytes::from_mib(2600),
            touch_intensity: 0.8,
        },
        "kmeans" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(220),
            mutators: 20,
            alloc_rate: Bytes::from_mib(900),
            minor_survival: 0.15,
            young_live: Bytes::from_mib(256),
            promotion: 0.20,
            live_growth: 0.02,
            live_cap: Bytes::from_mib(1500),
            min_heap: Bytes::from_mib(2000),
            touch_intensity: 0.7,
        },
        "pagerank" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(340),
            mutators: 20,
            alloc_rate: Bytes::from_mib(1600),
            minor_survival: 0.22,
            young_live: Bytes::from_mib(640),
            promotion: 0.35,
            live_growth: 0.04,
            live_cap: Bytes::from_gib(4),
            min_heap: Bytes::from_mib(5200),
            touch_intensity: 0.8,
        },
        other => panic!("unknown HiBench workload {other:?}"),
    };
    p.validate();
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dacapo::{dacapo_profile, DACAPO_BENCHMARKS};

    #[test]
    fn all_profiles_validate() {
        for name in HIBENCH_BENCHMARKS {
            hibench_profile(name).validate();
        }
    }

    #[test]
    fn hibench_heaps_dwarf_dacapo_heaps() {
        let max_dacapo = DACAPO_BENCHMARKS
            .iter()
            .map(|n| dacapo_profile(n).min_heap)
            .max()
            .unwrap();
        for name in HIBENCH_BENCHMARKS {
            assert!(
                hibench_profile(name).min_heap > max_dacapo.mul_f64(3.0),
                "{name}"
            );
        }
    }

    #[test]
    fn young_working_sets_scale_to_many_gc_threads() {
        // ≥ 64 MiB/worker keeps the dynamic heuristic from capping below
        // the 4-CPU effective share.
        for name in HIBENCH_BENCHMARKS {
            assert!(
                hibench_profile(name).young_live >= Bytes::from_mib(256),
                "{name}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn unknown_workload_panics() {
        hibench_profile("terasort");
    }
}
