//! SPECjvm2008 profiles (the five from Figure 6(b): compiler.compiler,
//! derby, mpegaudio, xml.validation, xml.transform).
//!
//! SPECjvm2008 reports *throughput* (operations per second over a fixed
//! interval); we model a fixed batch of operations and the experiment
//! harness converts wall time to relative throughput. mpegaudio is
//! CPU-bound with light allocation (little for the adaptive JVM to win);
//! derby and the xml pair allocate heavily.

use arv_cgroups::Bytes;
use arv_jvm::JavaProfile;
use arv_sim_core::SimDuration;

/// The SPECjvm2008 benchmarks evaluated in Figure 6(b).
pub const SPECJVM_BENCHMARKS: [&str; 5] = [
    "compiler.compiler",
    "derby",
    "mpegaudio",
    "xml.validation",
    "xml.transform",
];

/// Profile for a SPECjvm2008 benchmark by name. Panics on unknown names.
pub fn specjvm_profile(name: &str) -> JavaProfile {
    let p = match name {
        "compiler.compiler" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(90),
            mutators: 16,
            alloc_rate: Bytes::from_mib(700),
            minor_survival: 0.12,
            young_live: Bytes::from_mib(48),
            promotion: 0.25,
            live_growth: 0.01,
            live_cap: Bytes::from_mib(150),
            min_heap: Bytes::from_mib(220),
            touch_intensity: 0.6,
        },
        "derby" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(110),
            mutators: 16,
            alloc_rate: Bytes::from_mib(1200),
            minor_survival: 0.15,
            young_live: Bytes::from_mib(64),
            promotion: 0.30,
            live_growth: 0.02,
            live_cap: Bytes::from_mib(250),
            min_heap: Bytes::from_mib(330),
            touch_intensity: 0.7,
        },
        "mpegaudio" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(100),
            mutators: 16,
            alloc_rate: Bytes::from_mib(60),
            minor_survival: 0.05,
            young_live: Bytes::from_mib(8),
            promotion: 0.10,
            live_growth: 0.001,
            live_cap: Bytes::from_mib(16),
            min_heap: Bytes::from_mib(48),
            touch_intensity: 0.3,
        },
        "xml.validation" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(85),
            mutators: 16,
            alloc_rate: Bytes::from_mib(1500),
            minor_survival: 0.08,
            young_live: Bytes::from_mib(40),
            promotion: 0.15,
            live_growth: 0.004,
            live_cap: Bytes::from_mib(80),
            min_heap: Bytes::from_mib(140),
            touch_intensity: 0.5,
        },
        "xml.transform" => JavaProfile {
            name: name.into(),
            total_work: SimDuration::from_secs(95),
            mutators: 16,
            alloc_rate: Bytes::from_mib(1300),
            minor_survival: 0.09,
            young_live: Bytes::from_mib(44),
            promotion: 0.18,
            live_growth: 0.004,
            live_cap: Bytes::from_mib(90),
            min_heap: Bytes::from_mib(150),
            touch_intensity: 0.5,
        },
        other => panic!("unknown SPECjvm2008 benchmark {other:?}"),
    };
    p.validate();
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for name in SPECJVM_BENCHMARKS {
            specjvm_profile(name).validate();
        }
    }

    #[test]
    fn mpegaudio_is_the_gc_light_one() {
        let mp = specjvm_profile("mpegaudio");
        for name in SPECJVM_BENCHMARKS {
            if name != "mpegaudio" {
                assert!(specjvm_profile(name).alloc_rate > mp.alloc_rate, "{name}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn unknown_benchmark_panics() {
        specjvm_profile("crypto.aes");
    }
}
