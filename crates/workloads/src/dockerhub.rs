//! The Figure 1 DockerHub census.
//!
//! §2.2: "we manually examined the top 100 application images in
//! DockerHub … a total number of 62 out of the top 100 applications are
//! potentially affected by this semantic gap. Among the 7 languages we
//! studied, all Java and PHP-based programs could suffer resource
//! over-commitment. A majority of C++-based applications and half of
//! C-based applications are also affected."
//!
//! The census itself is a static dataset (the paper's inputs are not
//! published per-image), so we embed a 100-image table consistent with
//! every stated aggregate: 62/100 affected, all Java and PHP images
//! affected, a majority of C++ and half of C.

/// The languages of Figure 1, in its x-axis order.
pub const LANGUAGES: [&str; 7] = ["c", "c++", "java", "go", "python", "php", "ruby"];

/// One image in the census.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageRecord {
    /// Image name.
    pub name: &'static str,
    /// Implementation language (Figure 1 buckets).
    pub language: &'static str,
    /// Whether the image's runtime auto-configures from kernel-reported
    /// resources (CPU count / physical memory) and is therefore affected
    /// by the semantic gap.
    pub affected: bool,
}

/// Per-language aggregate (one bar pair in Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LanguageStat {
    /// Implementation language (Figure 1 buckets).
    pub language: &'static str,
    /// Images affected by the semantic gap.
    pub affected: u32,
    /// Images whose runtimes do not auto-configure from host totals.
    pub unaffected: u32,
}

impl LanguageStat {
    /// Total images in this language bucket.
    pub fn total(&self) -> u32 {
        self.affected + self.unaffected
    }
}

/// Per-language counts: (language, affected, unaffected). Sums to 100
/// images, 62 affected.
const CENSUS_SHAPE: [(&str, u32, u32); 7] = [
    ("c", 8, 8),       // half of C affected (httpd, nginx workers, ...)
    ("c++", 10, 4),    // majority of C++ (mongodb, rocksdb-based, ...)
    ("java", 24, 0),   // all Java (tomcat, elasticsearch, kafka, ...)
    ("go", 3, 7),      // Go runtime reads GOMAXPROCS (mostly unaffected)
    ("python", 4, 10), // a few pools size from cpu_count()
    ("php", 11, 0),    // all PHP (fpm pool sizing)
    ("ruby", 2, 9),    // puma/sidekiq defaults occasionally
];

/// The full 100-image census.
pub fn dockerhub_census() -> Vec<ImageRecord> {
    let mut records = Vec::with_capacity(100);
    for (language, affected, unaffected) in CENSUS_SHAPE {
        for i in 0..affected + unaffected {
            records.push(ImageRecord {
                name: image_name(language, i),
                language,
                affected: i < affected,
            });
        }
    }
    records
}

/// Aggregate the census per language, in Figure 1's order.
pub fn language_stats(records: &[ImageRecord]) -> Vec<LanguageStat> {
    LANGUAGES
        .iter()
        .map(|lang| {
            let affected = records
                .iter()
                .filter(|r| r.language == *lang && r.affected)
                .count() as u32;
            let unaffected = records
                .iter()
                .filter(|r| r.language == *lang && !r.affected)
                .count() as u32;
            LanguageStat {
                language: lang,
                affected,
                unaffected,
            }
        })
        .collect()
}

/// Representative image names per language bucket (top-DockerHub-style).
fn image_name(language: &str, idx: u32) -> &'static str {
    const C: [&str; 16] = [
        "httpd",
        "nginx",
        "redis",
        "memcached",
        "postgres",
        "mariadb",
        "haproxy",
        "varnish",
        "busybox",
        "alpine",
        "debian",
        "ubuntu",
        "centos",
        "fedora",
        "hello-world",
        "registry",
    ];
    const CPP: [&str; 14] = [
        "mongo",
        "mysql",
        "rethinkdb",
        "couchbase",
        "influxdb",
        "rocksdb-tools",
        "clickhouse",
        "percona",
        "aerospike",
        "foundationdb",
        "chromium",
        "node-v8-tools",
        "swift",
        "gcc",
    ];
    const JAVA: [&str; 24] = [
        "tomcat",
        "openjdk",
        "elasticsearch",
        "kafka",
        "cassandra",
        "solr",
        "jenkins",
        "maven",
        "groovy",
        "zookeeper",
        "neo4j",
        "sonarqube",
        "jetty",
        "glassfish",
        "wildfly",
        "activemq",
        "flink",
        "storm",
        "hbase",
        "hadoop",
        "spark",
        "nifi",
        "logstash",
        "gradle",
    ];
    const GO: [&str; 10] = [
        "traefik",
        "consul",
        "vault",
        "etcd",
        "influxdb-v2",
        "telegraf",
        "caddy",
        "minio",
        "prometheus",
        "grafana-agent",
    ];
    const PYTHON: [&str; 14] = [
        "python",
        "django-app",
        "celery",
        "odoo",
        "superset",
        "airflow",
        "jupyter",
        "sentry",
        "ansible",
        "saltstack",
        "flask-app",
        "gunicorn-app",
        "uwsgi-app",
        "scrapy",
    ];
    const PHP: [&str; 11] = [
        "php",
        "wordpress",
        "drupal",
        "joomla",
        "nextcloud",
        "owncloud",
        "phpmyadmin",
        "mediawiki",
        "matomo",
        "magento",
        "laravel-app",
    ];
    const RUBY: [&str; 11] = [
        "ruby",
        "rails-app",
        "redmine",
        "gitlab-ce",
        "discourse",
        "fluentd",
        "sidekiq-app",
        "puma-app",
        "jekyll",
        "vagrant",
        "chef",
    ];
    let table: &[&'static str] = match language {
        "c" => &C,
        "c++" => &CPP,
        "java" => &JAVA,
        "go" => &GO,
        "python" => &PYTHON,
        "php" => &PHP,
        "ruby" => &RUBY,
        other => panic!("unknown language {other:?}"),
    };
    table[idx as usize % table.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_has_100_images_62_affected() {
        let census = dockerhub_census();
        assert_eq!(census.len(), 100);
        assert_eq!(census.iter().filter(|r| r.affected).count(), 62);
    }

    #[test]
    fn all_java_and_php_affected() {
        let stats = language_stats(&dockerhub_census());
        for s in &stats {
            if s.language == "java" || s.language == "php" {
                assert_eq!(s.unaffected, 0, "{}", s.language);
                assert!(s.affected > 0);
            }
        }
    }

    #[test]
    fn majority_of_cpp_and_half_of_c() {
        let stats = language_stats(&dockerhub_census());
        let cpp = stats.iter().find(|s| s.language == "c++").unwrap();
        assert!(cpp.affected * 2 > cpp.total());
        let c = stats.iter().find(|s| s.language == "c").unwrap();
        assert_eq!(c.affected * 2, c.total());
    }

    #[test]
    fn stats_cover_all_languages_in_order() {
        let stats = language_stats(&dockerhub_census());
        let langs: Vec<&str> = stats.iter().map(|s| s.language).collect();
        assert_eq!(langs, LANGUAGES.to_vec());
        let total: u32 = stats.iter().map(|s| s.total()).sum();
        assert_eq!(total, 100);
    }
}
