//! The §5.3 allocation-churn micro-benchmark.
//!
//! "The benchmark iterates for 40,000 times and at each iteration
//! allocates 1MB objects and deallocates 512KB objects in the JVM heap.
//! This creates an ever-increasing heap space with half capacity storing
//! 'dead' objects. The benchmark results in a working set size of 20GB
//! while touching at most 40GB memory space."

use arv_cgroups::Bytes;
use arv_jvm::JavaProfile;
use arv_sim_core::SimDuration;

/// Iterations of the micro-benchmark.
pub const ITERATIONS: u64 = 40_000;
/// Allocated per iteration.
pub const ALLOC_PER_ITER: Bytes = Bytes::from_mib(1);
/// Freed per iteration (so half of each allocation stays live).
pub const FREED_PER_ITER: Bytes = Bytes::from_kib(512);

/// The micro-benchmark as a [`JavaProfile`]: 40 GB allocated in total,
/// half of it joining the live set (capped at 20 GB).
pub fn alloc_churn_microbenchmark() -> JavaProfile {
    let total_alloc = Bytes(ALLOC_PER_ITER.as_u64() * ITERATIONS); // 40 000 MiB
    let live = Bytes((ALLOC_PER_ITER - FREED_PER_ITER).as_u64() * ITERATIONS); // 20 000 MiB
    let alloc_rate = Bytes::from_mib(96); // per CPU-second
    let total_work =
        SimDuration::from_secs_f64(total_alloc.as_u64() as f64 / alloc_rate.as_u64() as f64);
    let p = JavaProfile {
        name: "alloc-churn".into(),
        total_work,
        mutators: 20,
        alloc_rate,
        // Half of every allocation stays live and promotes; the dead half
        // dies in eden (the freed 512 KB of each iteration never survives
        // a collection). Survivors scale with eden — no young-side
        // saturation.
        minor_survival: 0.55,
        young_live: live,
        promotion: 0.9,
        live_growth: 0.50,
        live_cap: live,
        min_heap: live.mul_f64(1.05),
        touch_intensity: 1.0,
    };
    p.validate();
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_paper() {
        let p = alloc_churn_microbenchmark();
        // 40 GB touched in total.
        let touched = p.alloc_rate.as_u64() as f64 * p.total_work.as_secs_f64();
        assert!((touched - 40_000.0 * (1 << 20) as f64).abs() < (1 << 20) as f64);
        // 20 GB working set.
        assert_eq!(p.live_cap, Bytes::from_mib(20_000));
        // Exactly half of each allocation stays live.
        assert_eq!(p.live_growth, 0.5);
    }

    #[test]
    fn working_set_fits_a_30gb_hard_limit_but_not_a_quarter_of_it() {
        let p = alloc_churn_microbenchmark();
        assert!(p.min_heap < Bytes::from_gib(30));
        assert!(p.min_heap > Bytes::from_gib(30).mul_f64(0.25));
    }

    #[test]
    fn profile_validates() {
        alloc_churn_microbenchmark().validate();
    }
}
