//! sysbench-style CPU hogs: the background load of Figure 8.
//!
//! §5.2: "nine containers ran different sysbench benchmarks. The host CPU
//! was fully utilized when all ten containers were running benchmarks but
//! CPU availability varied as different sysbench benchmarks completed at
//! different times." [`CpuHog`] is that pure-CPU workload; [`sysbench_mix`]
//! builds the staggered set.

use arv_cgroups::CgroupId;
use arv_sim_core::SimDuration;

/// A multithreaded CPU-bound workload with a fixed CPU budget.
#[derive(Debug, Clone)]
pub struct CpuHog {
    id: CgroupId,
    threads: u32,
    remaining: SimDuration,
    wall: SimDuration,
}

impl CpuHog {
    /// A hog with a fixed CPU budget.
    pub fn new(id: CgroupId, threads: u32, cpu_work: SimDuration) -> CpuHog {
        assert!(threads > 0, "a hog needs at least one thread");
        assert!(!cpu_work.is_zero(), "a hog needs CPU work");
        CpuHog {
            id,
            threads,
            remaining: cpu_work,
            wall: SimDuration::ZERO,
        }
    }

    /// The container (cgroup) this belongs to.
    pub fn id(&self) -> CgroupId {
        self.id
    }

    /// Whether the workload is still running.
    pub fn is_running(&self) -> bool {
        !self.remaining.is_zero()
    }

    /// Runnable threads this period (zero once finished).
    pub fn runnable(&self) -> u32 {
        if self.is_running() {
            self.threads
        } else {
            0
        }
    }

    /// Wall time until completion (meaningful once finished).
    pub fn wall(&self) -> SimDuration {
        self.wall
    }

    /// Time until completion assuming a full grant (event-driven step cap).
    pub fn horizon(&self) -> Option<SimDuration> {
        self.is_running()
            .then(|| (self.remaining / u64::from(self.threads)).max(SimDuration::from_micros(500)))
    }

    /// Consume granted CPU time for one period.
    pub fn on_period(&mut self, granted: SimDuration, period: SimDuration) {
        if self.is_running() {
            self.remaining = self.remaining.saturating_sub(granted);
            self.wall += period;
        }
    }
}

/// The Figure 8 background mix: `n` hogs with staggered CPU budgets so
/// they finish at different times and progressively free CPU for the
/// measured container. Budgets step linearly from `shortest` to
/// `shortest × n`.
pub fn sysbench_mix(ids: &[CgroupId], threads: u32, shortest: SimDuration) -> Vec<CpuHog> {
    ids.iter()
        .enumerate()
        .map(|(i, id)| CpuHog::new(*id, threads, shortest * (i as u64 + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hog_consumes_budget_and_stops() {
        let mut hog = CpuHog::new(CgroupId(0), 2, SimDuration::from_secs(1));
        let p = SimDuration::from_millis(24);
        let mut steps = 0;
        while hog.is_running() {
            hog.on_period(p * 2, p);
            steps += 1;
            assert!(steps < 100_000);
        }
        assert_eq!(hog.runnable(), 0);
        // 1 s of work at 2 CPUs ≈ 0.5 s of wall time.
        assert!((hog.wall().as_secs_f64() - 0.5).abs() < 0.05);
    }

    #[test]
    fn mix_staggers_budgets() {
        let ids: Vec<CgroupId> = (0..9).map(CgroupId).collect();
        let mix = sysbench_mix(&ids, 2, SimDuration::from_secs(10));
        assert_eq!(mix.len(), 9);
        // Budgets strictly increase, so completions stagger.
        for w in mix.windows(2) {
            assert!(w[0].remaining < w[1].remaining);
        }
        assert_eq!(mix[8].remaining, SimDuration::from_secs(90));
    }

    #[test]
    fn finished_hog_ignores_further_grants() {
        let mut hog = CpuHog::new(CgroupId(0), 1, SimDuration::from_millis(10));
        let p = SimDuration::from_millis(24);
        hog.on_period(p, p);
        assert!(!hog.is_running());
        let wall = hog.wall();
        hog.on_period(p, p);
        assert_eq!(hog.wall(), wall);
    }

    #[test]
    #[should_panic]
    fn zero_thread_hog_rejected() {
        CpuHog::new(CgroupId(0), 0, SimDuration::from_secs(1));
    }
}
