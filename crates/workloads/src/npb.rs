//! NAS Parallel Benchmark profiles (Figure 10: is, ep, cg, mg, ft, ua,
//! bt, sp, lu).
//!
//! Relative character follows the suite: **ep** is embarrassingly
//! parallel (negligible serial fraction, long regions); **is** is a short
//! bucket sort with the highest serial/communication share; **cg/mg/ft**
//! are iterative kernels with many barrier-separated regions; **ua** has
//! irregular parallelism; **bt/sp/lu** are the long pseudo-applications.

use arv_omp::OmpProfile;
use arv_sim_core::SimDuration;

/// The NPB programs evaluated in Figure 10.
pub const NPB_BENCHMARKS: [&str; 9] = ["is", "ep", "cg", "mg", "ft", "ua", "bt", "sp", "lu"];

/// Profile for an NPB program by name. Panics on unknown names.
pub fn npb_profile(name: &str) -> OmpProfile {
    let p = match name {
        "is" => OmpProfile {
            name: name.into(),
            regions: 40,
            work_per_region: SimDuration::from_millis(600),
            serial_frac: 0.12,
            sync_per_thread: SimDuration::from_micros(400),
        },
        "ep" => OmpProfile {
            name: name.into(),
            regions: 16,
            work_per_region: SimDuration::from_millis(4_000),
            serial_frac: 0.01,
            sync_per_thread: SimDuration::from_micros(100),
        },
        "cg" => OmpProfile {
            name: name.into(),
            regions: 150,
            work_per_region: SimDuration::from_millis(500),
            serial_frac: 0.08,
            sync_per_thread: SimDuration::from_micros(300),
        },
        "mg" => OmpProfile {
            name: name.into(),
            regions: 120,
            work_per_region: SimDuration::from_millis(450),
            serial_frac: 0.06,
            sync_per_thread: SimDuration::from_micros(300),
        },
        "ft" => OmpProfile {
            name: name.into(),
            regions: 60,
            work_per_region: SimDuration::from_millis(900),
            serial_frac: 0.05,
            sync_per_thread: SimDuration::from_micros(250),
        },
        "ua" => OmpProfile {
            name: name.into(),
            regions: 200,
            work_per_region: SimDuration::from_millis(300),
            serial_frac: 0.07,
            sync_per_thread: SimDuration::from_micros(350),
        },
        "bt" => OmpProfile {
            name: name.into(),
            regions: 200,
            work_per_region: SimDuration::from_millis(700),
            serial_frac: 0.04,
            sync_per_thread: SimDuration::from_micros(200),
        },
        "sp" => OmpProfile {
            name: name.into(),
            regions: 250,
            work_per_region: SimDuration::from_millis(550),
            serial_frac: 0.05,
            sync_per_thread: SimDuration::from_micros(200),
        },
        "lu" => OmpProfile {
            name: name.into(),
            regions: 250,
            work_per_region: SimDuration::from_millis(600),
            serial_frac: 0.03,
            sync_per_thread: SimDuration::from_micros(200),
        },
        other => panic!("unknown NPB program {other:?}"),
    };
    p.validate();
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for name in NPB_BENCHMARKS {
            npb_profile(name).validate();
        }
    }

    #[test]
    fn ep_is_the_most_parallel() {
        let ep = npb_profile("ep");
        for name in NPB_BENCHMARKS {
            if name != "ep" {
                assert!(npb_profile(name).serial_frac > ep.serial_frac, "{name}");
            }
        }
    }

    #[test]
    fn is_has_the_largest_serial_fraction() {
        let is = npb_profile("is");
        for name in NPB_BENCHMARKS {
            if name != "is" {
                assert!(npb_profile(name).serial_frac < is.serial_frac, "{name}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn unknown_program_panics() {
        npb_profile("dc");
    }
}
