//! Decision-provenance tracing for the adaptive resource-view pipeline.
//!
//! The paper's whole contribution is that a container's *view* changes
//! over time — Algorithm 1's ±1-CPU steps, Algorithm 2's 10% memory
//! growth and kswapd resets — yet a pipeline that mutates views
//! silently cannot answer the operator's first question: *why does
//! container X currently see 3 CPUs?* This crate provides the answer:
//!
//! * a **lock-free bounded trace ring** ([`Tracer`]) into which every
//!   layer of the pipeline (`ns_monitor`, the live registry, the
//!   watchdog, `arv-viewd`) emits typed events with tick timestamps;
//! * a **decision-provenance record** for every view change: each
//!   effective-CPU step and effective-memory growth/reset carries its
//!   [`DecisionCause`], its before/after value, and the inputs that
//!   drove it;
//! * **query APIs** — [`Tracer::timeline`] reconstructs a container's
//!   view evolution, [`Tracer::explain`] returns the last decision per
//!   resource — plus text renderings for the wire `TRACE` opcode;
//! * a tiny **Prometheus-style text exposition** builder ([`PromText`])
//!   used by the view server and the fleet controller to export their
//!   metrics and per-container gauges;
//! * a **staleness histogram** ([`LagHistogram`]) with fixed
//!   power-of-two tick buckets, used by the fleet controller to build
//!   per-host end-to-end lag waterfalls;
//! * an **anomaly flight recorder** ([`FlightRecorder`]): a bounded
//!   black-box that, on a trigger (gap resync, fence, promotion,
//!   demotion, partition), freezes the trace ring and a counter
//!   snapshot into a retrievable, CRC-framed [`FlightDump`].
//!
//! # Design
//!
//! The ring is a fixed power-of-two array of 8-word slots, each word an
//! `AtomicU64`. Writers claim a monotonically increasing *ticket* with
//! one `fetch_add` and write into slot `ticket % capacity`; the slot's
//! first word holds `ticket * 2 + 1` while the payload is being written
//! and `ticket * 2 + 2` once complete, so readers can detect both torn
//! writes and slots that have since been reused by a newer ticket.
//! Nothing blocks: emitting is a handful of relaxed stores, reading is
//! a validated snapshot scan. When the ring wraps, the *oldest* events
//! are dropped and [`Tracer::dropped_events`] counts them exactly
//! (`head − capacity`, saturating).
//!
//! A disabled tracer ([`Tracer::disabled`], also the `Default`) holds
//! no ring at all; every emit is a branch on a `None` and the hot
//! serving paths stay unperturbed.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use arv_cgroups::{Bytes, CgroupId};

/// Why a view changed (or why a served value deviated from the view).
///
/// Every decision the pipeline traces carries one of these; a
/// well-instrumented run never produces [`DecisionCause::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionCause {
    /// Cause could not be attributed (decoder fallback; never emitted
    /// by the instrumented pipeline itself).
    Unknown,
    /// Algorithm 1 grew effective CPU: utilization exceeded the
    /// threshold (95%) while the host still had scheduling slack.
    CpuSaturatedWithSlack,
    /// Algorithm 1 shrank effective CPU toward the lower bound: the
    /// host had no slack left.
    CpuShrinkNoSlack,
    /// Algorithm 2 grew effective memory: usage above 90% of the view
    /// with free memory above the watermarks.
    MemPressureGrowth,
    /// Algorithm 2 reset effective memory to the soft limit: kswapd
    /// reclaim in progress or free memory too close to the watermarks.
    MemReclaimReset,
    /// Static bounds/limits were refreshed from a cgroup event and the
    /// clamp moved the view.
    StaticRefresh,
    /// A watchdog-demanded full reconcile rebuilt the namespace and
    /// moved the view.
    WatchdogResync,
    /// The serving layer substituted the conservative fallback (CPU
    /// lower bound / memory soft limit) for a degraded view.
    DegradedFallback,
    /// A warm restart resumed the view from a journaled checkpoint
    /// instead of the cold lower bound.
    Restored,
    /// A restored value had to be reconciled: the journaled view fell
    /// outside the freshly recomputed static bounds and was clamped.
    RestoreReconciled,
}

impl DecisionCause {
    fn code(self) -> u8 {
        match self {
            DecisionCause::Unknown => 0,
            DecisionCause::CpuSaturatedWithSlack => 1,
            DecisionCause::CpuShrinkNoSlack => 2,
            DecisionCause::MemPressureGrowth => 3,
            DecisionCause::MemReclaimReset => 4,
            DecisionCause::StaticRefresh => 5,
            DecisionCause::WatchdogResync => 6,
            DecisionCause::DegradedFallback => 7,
            DecisionCause::Restored => 8,
            DecisionCause::RestoreReconciled => 9,
        }
    }

    fn from_code(code: u8) -> DecisionCause {
        match code {
            1 => DecisionCause::CpuSaturatedWithSlack,
            2 => DecisionCause::CpuShrinkNoSlack,
            3 => DecisionCause::MemPressureGrowth,
            4 => DecisionCause::MemReclaimReset,
            5 => DecisionCause::StaticRefresh,
            6 => DecisionCause::WatchdogResync,
            7 => DecisionCause::DegradedFallback,
            8 => DecisionCause::Restored,
            9 => DecisionCause::RestoreReconciled,
            _ => DecisionCause::Unknown,
        }
    }

    /// Short label used in rendered timelines.
    pub fn label(self) -> &'static str {
        match self {
            DecisionCause::Unknown => "unknown",
            DecisionCause::CpuSaturatedWithSlack => "cpu-saturated+slack",
            DecisionCause::CpuShrinkNoSlack => "cpu-shrink-no-slack",
            DecisionCause::MemPressureGrowth => "mem-pressure-growth",
            DecisionCause::MemReclaimReset => "mem-reclaim-reset",
            DecisionCause::StaticRefresh => "static-refresh",
            DecisionCause::WatchdogResync => "watchdog-resync",
            DecisionCause::DegradedFallback => "degraded-fallback",
            DecisionCause::Restored => "restored",
            DecisionCause::RestoreReconciled => "restore-reconciled",
        }
    }
}

/// One effective-CPU change with the inputs that drove it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuDecision {
    /// Why the view moved.
    pub cause: DecisionCause,
    /// Effective CPU count before the decision.
    pub before: u32,
    /// Effective CPU count after the decision.
    pub after: u32,
    /// Utilization of the pre-decision capacity observed this period
    /// (Algorithm 1's `cusage / capacity`); 0 for static refreshes.
    pub utilization: f64,
    /// Whether the host scheduler reported slack this period.
    pub had_slack: bool,
}

/// One effective-memory change with the inputs that drove it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDecision {
    /// Why the view moved.
    pub cause: DecisionCause,
    /// Effective memory before the decision.
    pub before: Bytes,
    /// Effective memory after the decision.
    pub after: Bytes,
    /// Container memory usage observed this period (zero for static
    /// refreshes, which carry no sample).
    pub usage: Bytes,
    /// Host free memory observed this period (zero for static
    /// refreshes).
    pub free: Bytes,
}

/// A pipeline lifecycle/health event (not a view-value change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipelineEvent {
    /// A namespace was created for a new container.
    ContainerCreated,
    /// A container's namespace was torn down.
    ContainerRemoved,
    /// The watchdog observed a sequence gap or overflow drop in the
    /// cgroup event stream.
    GapDetected,
    /// The update timer fired but the monitor did no work.
    StallDetected,
    /// A full reconcile pass ran.
    Resynced,
    /// A warm restart replayed the journal and reconciled the result
    /// against the live cgroup hierarchy.
    Restored,
    /// The fleet controller detected a periphery sequence gap and
    /// demanded a FULL resync.
    FleetGapResync,
    /// The fleet controller flagged a host partitioned: its rollup
    /// contribution is served last-good, degraded.
    FleetPartitioned,
    /// A replacement fleet controller warm-restarted from the journal
    /// (failover); every restored host starts last-good until resync.
    FleetFailover,
    /// A standby fleet controller took over the lease and promoted
    /// itself to primary at a bumped epoch.
    FleetPromoted,
    /// A frame stamped with a stale controller epoch was rejected
    /// (fenced) instead of applied.
    FleetFenced,
    /// A periphery's token bucket ran dry and its pending diffs were
    /// coalesced for a later batch instead of being sent.
    FleetCoalesced,
    /// A journal or lease store error flipped a component onto the
    /// durability degradation ladder (in-memory fallback / step-down).
    DurabilityLost,
    /// A successful re-checkpoint against the recovered store healed
    /// the durability flag.
    DurabilityRestored,
}

impl PipelineEvent {
    fn code(self) -> u8 {
        match self {
            PipelineEvent::ContainerCreated => 1,
            PipelineEvent::ContainerRemoved => 2,
            PipelineEvent::GapDetected => 3,
            PipelineEvent::StallDetected => 4,
            PipelineEvent::Resynced => 5,
            PipelineEvent::Restored => 6,
            PipelineEvent::FleetGapResync => 7,
            PipelineEvent::FleetPartitioned => 8,
            PipelineEvent::FleetFailover => 9,
            PipelineEvent::FleetPromoted => 10,
            PipelineEvent::FleetFenced => 11,
            PipelineEvent::FleetCoalesced => 12,
            PipelineEvent::DurabilityLost => 13,
            PipelineEvent::DurabilityRestored => 14,
        }
    }

    fn from_code(code: u8) -> Option<PipelineEvent> {
        match code {
            1 => Some(PipelineEvent::ContainerCreated),
            2 => Some(PipelineEvent::ContainerRemoved),
            3 => Some(PipelineEvent::GapDetected),
            4 => Some(PipelineEvent::StallDetected),
            5 => Some(PipelineEvent::Resynced),
            6 => Some(PipelineEvent::Restored),
            7 => Some(PipelineEvent::FleetGapResync),
            8 => Some(PipelineEvent::FleetPartitioned),
            9 => Some(PipelineEvent::FleetFailover),
            10 => Some(PipelineEvent::FleetPromoted),
            11 => Some(PipelineEvent::FleetFenced),
            12 => Some(PipelineEvent::FleetCoalesced),
            13 => Some(PipelineEvent::DurabilityLost),
            14 => Some(PipelineEvent::DurabilityRestored),
            _ => None,
        }
    }

    /// Short label used in rendered timelines.
    pub fn label(self) -> &'static str {
        match self {
            PipelineEvent::ContainerCreated => "container-created",
            PipelineEvent::ContainerRemoved => "container-removed",
            PipelineEvent::GapDetected => "gap-detected",
            PipelineEvent::StallDetected => "stall-detected",
            PipelineEvent::Resynced => "resynced",
            PipelineEvent::Restored => "restored",
            PipelineEvent::FleetGapResync => "fleet-gap-resync",
            PipelineEvent::FleetPartitioned => "fleet-partitioned",
            PipelineEvent::FleetFailover => "fleet-failover",
            PipelineEvent::FleetPromoted => "fleet-promoted",
            PipelineEvent::FleetFenced => "fleet-fenced",
            PipelineEvent::FleetCoalesced => "fleet-coalesced",
            PipelineEvent::DurabilityLost => "durability-lost",
            PipelineEvent::DurabilityRestored => "durability-restored",
        }
    }
}

/// The typed payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// An effective-CPU decision.
    Cpu(CpuDecision),
    /// An effective-memory decision.
    Mem(MemDecision),
    /// A pipeline lifecycle/health event.
    Pipeline(PipelineEvent),
}

/// One decoded event from the trace ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Global emission order (the writer's ticket): dense, monotone.
    pub seq: u64,
    /// Update-timer tick the event was emitted at.
    pub tick: u64,
    /// The container the event concerns, if any (`None` for host-wide
    /// pipeline events).
    pub container: Option<CgroupId>,
    /// The typed payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Render this event as one human-readable line (no trailing
    /// newline), as used by timelines and the wire `TRACE` body.
    pub fn render(&self) -> String {
        let who = match self.container {
            Some(id) => format!("c{}", id.0),
            None => "host".to_string(),
        };
        match self.kind {
            EventKind::Cpu(d) => format!(
                "[tick {:>4}] {} cpu {} -> {} ({}; util={:.2} slack={})",
                self.tick,
                who,
                d.before,
                d.after,
                d.cause.label(),
                d.utilization,
                d.had_slack
            ),
            EventKind::Mem(d) => format!(
                "[tick {:>4}] {} mem {} -> {} ({}; usage={} free={})",
                self.tick,
                who,
                d.before.0,
                d.after.0,
                d.cause.label(),
                d.usage.0,
                d.free.0
            ),
            EventKind::Pipeline(p) => {
                format!("[tick {:>4}] {} pipeline {}", self.tick, who, p.label())
            }
        }
    }
}

/// The last decision the pipeline took for each of a container's
/// resources, as returned by [`Tracer::explain`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Explanation {
    /// Most recent effective-CPU decision, if any is still in the ring.
    pub cpu: Option<TraceEvent>,
    /// Most recent effective-memory decision, if any is still in the
    /// ring.
    pub mem: Option<TraceEvent>,
}

// Slot word layout. Word 0 is the sequencing word: 0 = never written,
// `ticket*2+1` = write in progress, `ticket*2+2` = complete. The +1/+2
// encoding keeps 0 distinct from ticket 0's markers.
const W_SEQ: usize = 0;
const W_TICK: usize = 1;
const W_META: usize = 2; // container u32 | kind u8 | cause u8 | flags u8
const W_BEFORE: usize = 3;
const W_AFTER: usize = 4;
const W_IN_A: usize = 5;
const W_IN_B: usize = 6;
const SLOT_WORDS: usize = 8;

const KIND_CPU: u8 = 1;
const KIND_MEM: u8 = 2;
const KIND_PIPELINE: u8 = 3;

/// Sentinel in the meta word's container field for "no container".
const NO_CONTAINER: u32 = u32::MAX;

const FLAG_HAD_SLACK: u64 = 1;

fn pack_meta(container: u32, kind: u8, cause: u8, flags: u8) -> u64 {
    u64::from(container)
        | (u64::from(kind) << 32)
        | (u64::from(cause) << 40)
        | (u64::from(flags) << 48)
}

struct Slot {
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

struct TraceRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("head", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceRing {
    fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.next_power_of_two().max(2);
        let slots: Vec<Slot> = (0..capacity).map(|_| Slot::new()).collect();
        TraceRing {
            slots: slots.into_boxed_slice(),
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
        }
    }

    fn capacity(&self) -> u64 {
        self.slots.len() as u64
    }

    fn emit(&self, tick: u64, meta: u64, before: u64, after: u64, in_a: u64, in_b: u64) {
        let ticket = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(ticket & self.mask) as usize];
        slot.words[W_SEQ].store(ticket * 2 + 1, Ordering::Release);
        slot.words[W_TICK].store(tick, Ordering::Relaxed);
        slot.words[W_META].store(meta, Ordering::Relaxed);
        slot.words[W_BEFORE].store(before, Ordering::Relaxed);
        slot.words[W_AFTER].store(after, Ordering::Relaxed);
        slot.words[W_IN_A].store(in_a, Ordering::Relaxed);
        slot.words[W_IN_B].store(in_b, Ordering::Relaxed);
        slot.words[W_SEQ].store(ticket * 2 + 2, Ordering::Release);
    }

    fn emitted(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    fn dropped(&self) -> u64 {
        self.emitted().saturating_sub(self.capacity())
    }

    /// Validated snapshot of every event still resident, oldest first.
    /// Events overwritten mid-scan by concurrent writers are skipped
    /// (their sequencing word no longer matches the expected ticket).
    fn events(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.capacity());
        let mut out = Vec::with_capacity((head - start) as usize);
        for ticket in start..head {
            let slot = &self.slots[(ticket & self.mask) as usize];
            let want = ticket * 2 + 2;
            if slot.words[W_SEQ].load(Ordering::Acquire) != want {
                continue;
            }
            let tick = slot.words[W_TICK].load(Ordering::Relaxed);
            let meta = slot.words[W_META].load(Ordering::Relaxed);
            let before = slot.words[W_BEFORE].load(Ordering::Relaxed);
            let after = slot.words[W_AFTER].load(Ordering::Relaxed);
            let in_a = slot.words[W_IN_A].load(Ordering::Relaxed);
            let in_b = slot.words[W_IN_B].load(Ordering::Relaxed);
            // Re-validate: if a newer writer reused the slot while we
            // were reading, the payload above may be torn — discard it.
            if slot.words[W_SEQ].load(Ordering::Acquire) != want {
                continue;
            }
            if let Some(ev) = decode(ticket, tick, meta, before, after, in_a, in_b) {
                out.push(ev);
            }
        }
        out
    }
}

fn decode(
    seq: u64,
    tick: u64,
    meta: u64,
    before: u64,
    after: u64,
    in_a: u64,
    in_b: u64,
) -> Option<TraceEvent> {
    let container_raw = (meta & 0xFFFF_FFFF) as u32;
    let kind = ((meta >> 32) & 0xFF) as u8;
    let cause = DecisionCause::from_code(((meta >> 40) & 0xFF) as u8);
    let flags = (meta >> 48) & 0xFF;
    let container = if container_raw == NO_CONTAINER {
        None
    } else {
        Some(CgroupId(container_raw))
    };
    let kind = match kind {
        KIND_CPU => EventKind::Cpu(CpuDecision {
            cause,
            before: before as u32,
            after: after as u32,
            utilization: f64::from_bits(in_a),
            had_slack: flags & FLAG_HAD_SLACK != 0,
        }),
        KIND_MEM => EventKind::Mem(MemDecision {
            cause,
            before: Bytes(before),
            after: Bytes(after),
            usage: Bytes(in_a),
            free: Bytes(in_b),
        }),
        KIND_PIPELINE => {
            EventKind::Pipeline(PipelineEvent::from_code(((meta >> 40) & 0xFF) as u8)?)
        }
        _ => return None,
    };
    Some(TraceEvent {
        seq,
        tick,
        container,
        kind,
    })
}

/// Shared handle into the trace ring.
///
/// Cloning is cheap (an `Arc` bump); all clones feed the same ring.
/// The `Default` tracer is disabled: it holds no ring, every emit is a
/// single branch, and queries return empty results.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TraceRing>>,
}

impl Tracer {
    /// A no-op tracer (the default): emits are single-branch no-ops.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer over a bounded ring holding the most recent `capacity`
    /// events (rounded up to a power of two, minimum 2). When full,
    /// the oldest events are dropped.
    pub fn bounded(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TraceRing::new(capacity))),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of events the ring can hold (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |r| r.slots.len())
    }

    /// Total events ever emitted into this tracer.
    pub fn emitted(&self) -> u64 {
        self.inner.as_ref().map_or(0, |r| r.emitted())
    }

    /// Exact count of events lost to ring wrap (oldest-first drops).
    pub fn dropped_events(&self) -> u64 {
        self.inner.as_ref().map_or(0, |r| r.dropped())
    }

    /// Record an effective-CPU decision for `container` at `tick`.
    pub fn emit_cpu(&self, tick: u64, container: CgroupId, d: CpuDecision) {
        if let Some(ring) = &self.inner {
            let flags = if d.had_slack { FLAG_HAD_SLACK as u8 } else { 0 };
            ring.emit(
                tick,
                pack_meta(container.0, KIND_CPU, d.cause.code(), flags),
                u64::from(d.before),
                u64::from(d.after),
                d.utilization.to_bits(),
                0,
            );
        }
    }

    /// Record an effective-memory decision for `container` at `tick`.
    pub fn emit_mem(&self, tick: u64, container: CgroupId, d: MemDecision) {
        if let Some(ring) = &self.inner {
            ring.emit(
                tick,
                pack_meta(container.0, KIND_MEM, d.cause.code(), 0),
                d.before.0,
                d.after.0,
                d.usage.0,
                d.free.0,
            );
        }
    }

    /// Record a pipeline lifecycle/health event, optionally tied to a
    /// container.
    pub fn emit_pipeline(&self, tick: u64, container: Option<CgroupId>, ev: PipelineEvent) {
        if let Some(ring) = &self.inner {
            let raw = container.map_or(NO_CONTAINER, |c| c.0);
            ring.emit(
                tick,
                pack_meta(raw, KIND_PIPELINE, ev.code(), 0),
                0,
                0,
                0,
                0,
            );
        }
    }

    /// Every event still resident in the ring, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |r| r.events())
    }

    /// Reconstruct `container`'s view evolution: every resident event
    /// concerning it, oldest first.
    pub fn timeline(&self, container: CgroupId) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .filter(|e| e.container == Some(container))
            .collect()
    }

    /// The last decision the pipeline took for each of `container`'s
    /// resources (ignores pipeline lifecycle events).
    pub fn explain(&self, container: CgroupId) -> Explanation {
        let mut out = Explanation::default();
        for ev in self.timeline(container) {
            match ev.kind {
                EventKind::Cpu(_) => out.cpu = Some(ev),
                EventKind::Mem(_) => out.mem = Some(ev),
                EventKind::Pipeline(_) => {}
            }
        }
        out
    }

    /// Human-readable timeline for `container`, one event per line.
    pub fn render_timeline(&self, container: CgroupId) -> String {
        let events = self.timeline(container);
        if events.is_empty() {
            return format!("container {}: no trace events\n", container.0);
        }
        let mut out = String::new();
        for ev in events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }

    /// Human-readable "why is the view what it is" summary for
    /// `container`.
    pub fn render_explain(&self, container: CgroupId) -> String {
        let ex = self.explain(container);
        let mut out = String::new();
        match ex.cpu {
            Some(ev) => {
                let _ = writeln!(out, "cpu: {}", ev.render());
            }
            None => out.push_str("cpu: no decision traced\n"),
        }
        match ex.mem {
            Some(ev) => {
                let _ = writeln!(out, "mem: {}", ev.render());
            }
            None => out.push_str("mem: no decision traced\n"),
        }
        out
    }

    /// Render every resident event (host-wide), oldest first, with a
    /// drop summary header.
    pub fn render_full(&self) -> String {
        let mut out = format!(
            "# trace: {} emitted, {} dropped, capacity {}\n",
            self.emitted(),
            self.dropped_events(),
            self.capacity()
        );
        for ev in self.events() {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

/// Inverse of `decode`: pack a decoded event back into the ring's raw
/// word layout, so flight dumps can carry events byte-identically.
fn encode_words(ev: &TraceEvent) -> (u64, u64, u64, u64, u64) {
    let container = ev.container.map_or(NO_CONTAINER, |c| c.0);
    match ev.kind {
        EventKind::Cpu(d) => (
            pack_meta(
                container,
                KIND_CPU,
                d.cause.code(),
                if d.had_slack { FLAG_HAD_SLACK as u8 } else { 0 },
            ),
            u64::from(d.before),
            u64::from(d.after),
            d.utilization.to_bits(),
            0,
        ),
        EventKind::Mem(d) => (
            pack_meta(container, KIND_MEM, d.cause.code(), 0),
            d.before.0,
            d.after.0,
            d.usage.0,
            d.free.0,
        ),
        EventKind::Pipeline(p) => (pack_meta(container, KIND_PIPELINE, p.code(), 0), 0, 0, 0, 0),
    }
}

/// Upper bounds (inclusive, in ticks) of the [`LagHistogram`] buckets;
/// an implicit `+Inf` bucket follows the last bound.
pub const LAG_BOUNDS: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// A fixed-bucket histogram of staleness lags, in ticks.
///
/// The fleet controller keeps one per host to build end-to-end
/// staleness waterfalls (origin tick → delta flush → ingest → rollup
/// visibility); the buckets are powers of two so a lag regression is
/// visible as mass shifting right.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LagHistogram {
    counts: [u64; LAG_BOUNDS.len() + 1],
    sum: u64,
    max: u64,
}

impl LagHistogram {
    /// Fold one observed lag in.
    pub fn observe(&mut self, lag: u64) {
        let i = LAG_BOUNDS
            .iter()
            .position(|&b| lag <= b)
            .unwrap_or(LAG_BOUNDS.len());
        self.counts[i] += 1;
        self.sum = self.sum.saturating_add(lag);
        self.max = self.max.max(lag);
    }

    /// Observations folded in so far.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of every observed lag (for mean computation).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest lag ever observed.
    pub fn max_lag(&self) -> u64 {
        self.max
    }

    /// Raw per-bucket counts, one per bound plus the `+Inf` bucket.
    pub fn buckets(&self) -> [u64; LAG_BOUNDS.len() + 1] {
        self.counts
    }

    /// Emit this histogram as Prometheus `_bucket`/`_sum`/`_count`
    /// samples (cumulative `le` buckets) under `name`, with `base`
    /// labels prepended to every sample.
    pub fn expose(&self, out: &mut PromText, name: &str, base: &[(&str, String)]) {
        let bucket = format!("{name}_bucket");
        let mut cum = 0u64;
        let mut labels: Vec<(&str, String)> = base.to_vec();
        labels.push(("le", String::new()));
        for (i, bound) in LAG_BOUNDS.iter().enumerate() {
            cum += self.counts[i];
            if let Some(last) = labels.last_mut() {
                last.1 = bound.to_string();
            }
            out.labeled(&bucket, &labels, cum as f64);
        }
        cum += self.counts[LAG_BOUNDS.len()];
        if let Some(last) = labels.last_mut() {
            last.1 = "+Inf".to_string();
        }
        out.labeled(&bucket, &labels, cum as f64);
        out.labeled(&format!("{name}_sum"), base, self.sum as f64);
        out.labeled(&format!("{name}_count"), base, cum as f64);
    }
}

/// Why a flight dump was frozen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlightTrigger {
    /// A periphery sequence gap forced a FULL resync.
    GapResync,
    /// A frame from a stale controller epoch was fenced.
    Fence,
    /// A standby took over the lease and promoted itself.
    Promotion,
    /// A primary stood down (lost lease or saw a higher epoch).
    Demotion,
    /// A silent host was flagged partitioned.
    Partition,
    /// A replacement controller warm-restarted from the journal.
    Failover,
    /// A storage fault flipped a journal or lease onto the durability
    /// degradation ladder.
    DurabilityLost,
    /// A re-checkpoint against the recovered store healed durability.
    DurabilityRestored,
}

impl FlightTrigger {
    fn code(self) -> u8 {
        match self {
            FlightTrigger::GapResync => 1,
            FlightTrigger::Fence => 2,
            FlightTrigger::Promotion => 3,
            FlightTrigger::Demotion => 4,
            FlightTrigger::Partition => 5,
            FlightTrigger::Failover => 6,
            FlightTrigger::DurabilityLost => 7,
            FlightTrigger::DurabilityRestored => 8,
        }
    }

    fn from_code(code: u8) -> Option<FlightTrigger> {
        match code {
            1 => Some(FlightTrigger::GapResync),
            2 => Some(FlightTrigger::Fence),
            3 => Some(FlightTrigger::Promotion),
            4 => Some(FlightTrigger::Demotion),
            5 => Some(FlightTrigger::Partition),
            6 => Some(FlightTrigger::Failover),
            7 => Some(FlightTrigger::DurabilityLost),
            8 => Some(FlightTrigger::DurabilityRestored),
            _ => None,
        }
    }

    /// Short label used in rendered dumps.
    pub fn label(self) -> &'static str {
        match self {
            FlightTrigger::GapResync => "gap-resync",
            FlightTrigger::Fence => "fence",
            FlightTrigger::Promotion => "promotion",
            FlightTrigger::Demotion => "demotion",
            FlightTrigger::Partition => "partition",
            FlightTrigger::Failover => "failover",
            FlightTrigger::DurabilityLost => "durability-lost",
            FlightTrigger::DurabilityRestored => "durability-restored",
        }
    }
}

/// One frozen black-box dump: the trace ring and a counter snapshot as
/// they stood the moment an anomaly trigger fired.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Dump ordinal within its recorder (monotone from 0).
    pub seq: u64,
    /// Tick the trigger fired at.
    pub tick: u64,
    /// What froze the dump.
    pub trigger: FlightTrigger,
    /// Every event resident in the trace ring at freeze time,
    /// oldest first.
    pub events: Vec<TraceEvent>,
    /// Named counter values at freeze time.
    pub counters: Vec<(String, u64)>,
}

impl FlightDump {
    /// Serialize the dump: fixed-width little-endian fields with a
    /// trailing CRC32 over everything before it — the same integrity
    /// framing `arv_persist` journals use, so a torn or corrupt dump is
    /// rejected instead of misread.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.events.len() * 56 + self.counters.len() * 24);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.push(self.trigger.code());
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for ev in &self.events {
            let (meta, before, after, in_a, in_b) = encode_words(ev);
            for w in [ev.seq, ev.tick, meta, before, after, in_a, in_b] {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (name, value) in &self.counters {
            let bytes = name.as_bytes();
            out.push(bytes.len().min(255) as u8);
            out.extend_from_slice(&bytes[..bytes.len().min(255)]);
            out.extend_from_slice(&value.to_le_bytes());
        }
        let crc = arv_persist::crc32::checksum(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode a serialized dump. `None` for anything torn, corrupt
    /// (CRC mismatch), or malformed — never panics, for any input.
    pub fn decode(bytes: &[u8]) -> Option<FlightDump> {
        if bytes.len() < 4 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let mut crc = [0u8; 4];
        crc.copy_from_slice(tail);
        if arv_persist::crc32::checksum(body) != u32::from_le_bytes(crc) {
            return None;
        }
        let mut i = 0usize;
        let u64_at = |b: &[u8], i: &mut usize| -> Option<u64> {
            let s = b.get(*i..*i + 8)?;
            *i += 8;
            let mut buf = [0u8; 8];
            buf.copy_from_slice(s);
            Some(u64::from_le_bytes(buf))
        };
        let u32_at = |b: &[u8], i: &mut usize| -> Option<u32> {
            let s = b.get(*i..*i + 4)?;
            *i += 4;
            let mut buf = [0u8; 4];
            buf.copy_from_slice(s);
            Some(u32::from_le_bytes(buf))
        };
        let seq = u64_at(body, &mut i)?;
        let tick = u64_at(body, &mut i)?;
        let trigger = FlightTrigger::from_code(*body.get(i)?)?;
        i += 1;
        let n_events = u32_at(body, &mut i)? as usize;
        if n_events > body.len().saturating_sub(i) / 56 {
            return None;
        }
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            let eseq = u64_at(body, &mut i)?;
            let etick = u64_at(body, &mut i)?;
            let meta = u64_at(body, &mut i)?;
            let before = u64_at(body, &mut i)?;
            let after = u64_at(body, &mut i)?;
            let in_a = u64_at(body, &mut i)?;
            let in_b = u64_at(body, &mut i)?;
            events.push(decode(eseq, etick, meta, before, after, in_a, in_b)?);
        }
        let n_counters = u32_at(body, &mut i)? as usize;
        if n_counters > body.len().saturating_sub(i) / 9 {
            return None;
        }
        let mut counters = Vec::with_capacity(n_counters);
        for _ in 0..n_counters {
            let len = *body.get(i)? as usize;
            i += 1;
            let name = String::from_utf8(body.get(i..i + len)?.to_vec()).ok()?;
            i += len;
            counters.push((name, u64_at(body, &mut i)?));
        }
        if i != body.len() {
            return None;
        }
        Some(FlightDump {
            seq,
            tick,
            trigger,
            events,
            counters,
        })
    }

    /// Human-readable rendering: a header line, the counter snapshot,
    /// then the frozen event timeline.
    pub fn render(&self) -> String {
        let mut out = format!(
            "# flight dump {} at tick {} (trigger: {}, {} events)\n",
            self.seq,
            self.tick,
            self.trigger.label(),
            self.events.len()
        );
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} {value}");
        }
        for ev in &self.events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }
}

#[derive(Debug, Default)]
struct FlightState {
    next_seq: u64,
    dumps: std::collections::VecDeque<FlightDump>,
}

/// A bounded anomaly black-box: each [`record`](FlightRecorder::record)
/// freezes the tracer's resident events plus a counter snapshot into a
/// [`FlightDump`], keeping only the most recent `max_dumps`.
///
/// Cloning is cheap (an `Arc` bump); all clones feed the same store.
/// The `Default` recorder is disabled: records are single-branch
/// no-ops and queries return nothing — the same contract as
/// [`Tracer::disabled`].
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<std::sync::Mutex<FlightState>>>,
    max_dumps: usize,
}

impl FlightRecorder {
    /// A no-op recorder (the default).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// A recorder retaining the most recent `max_dumps` dumps
    /// (minimum 1).
    pub fn bounded(max_dumps: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Some(Arc::new(std::sync::Mutex::new(FlightState::default()))),
            max_dumps: max_dumps.max(1),
        }
    }

    /// Whether this recorder stores anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, FlightState>> {
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Freeze a dump: the tracer's resident events and `counters` as
    /// they stand right now, stamped with `tick` and `trigger`. The
    /// oldest dump is evicted once `max_dumps` are held.
    pub fn record(
        &self,
        tick: u64,
        trigger: FlightTrigger,
        tracer: &Tracer,
        counters: &[(&str, u64)],
    ) {
        let Some(mut st) = self.lock() else {
            return;
        };
        let seq = st.next_seq;
        st.next_seq += 1;
        st.dumps.push_back(FlightDump {
            seq,
            tick,
            trigger,
            events: tracer.events(),
            counters: counters
                .iter()
                .map(|(n, v)| ((*n).to_string(), *v))
                .collect(),
        });
        while st.dumps.len() > self.max_dumps {
            st.dumps.pop_front();
        }
    }

    /// Total dumps ever frozen (including evicted ones).
    pub fn dumps_frozen(&self) -> u64 {
        self.lock().map_or(0, |st| st.next_seq)
    }

    /// Dumps currently retained.
    pub fn len(&self) -> usize {
        self.lock().map_or(0, |st| st.dumps.len())
    }

    /// Whether no dump is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dump `back` places before the newest (`0` = newest).
    pub fn get(&self, back: usize) -> Option<FlightDump> {
        let st = self.lock()?;
        let n = st.dumps.len();
        if back >= n {
            return None;
        }
        st.dumps.get(n - 1 - back).cloned()
    }

    /// The most recently frozen dump.
    pub fn latest(&self) -> Option<FlightDump> {
        self.get(0)
    }
}

/// Incremental builder for Prometheus text-format exposition.
///
/// Kept deliberately minimal: `# HELP`/`# TYPE` headers plus samples
/// with optional labels, matching what a scrape endpoint would serve.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> PromText {
        PromText::default()
    }

    /// Emit `# HELP`/`# TYPE` headers for a metric family. The HELP
    /// text is escaped per the text-format spec: `\` becomes `\\` and
    /// a newline becomes `\n`, so a multi-line help string cannot break
    /// the line-oriented exposition.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        let escaped = help.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(self.out, "# HELP {name} {escaped}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// One whole-process counter family: `# HELP`/`# TYPE` headers plus
    /// a single `{name}_total` sample — the shape every controller and
    /// server counter shares.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name}_total {}", fmt_value(value));
    }

    /// One unlabeled gauge family: headers plus a single sample under
    /// the family name itself.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, value);
    }

    /// Emit one unlabeled sample.
    pub fn sample(&mut self, name: &str, value: f64) {
        let _ = writeln!(self.out, "{name} {}", fmt_value(value));
    }

    /// Emit one sample with `label_name="label_value"` pairs.
    pub fn labeled(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        let rendered: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        let _ = writeln!(
            self.out,
            "{name}{{{}}} {}",
            rendered.join(","),
            fmt_value(value)
        );
    }

    /// The finished exposition body.
    pub fn finish(self) -> String {
        self.out
    }
}

fn fmt_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_step(before: u32, after: u32) -> CpuDecision {
        CpuDecision {
            cause: if after > before {
                DecisionCause::CpuSaturatedWithSlack
            } else {
                DecisionCause::CpuShrinkNoSlack
            },
            before,
            after,
            utilization: 0.97,
            had_slack: after > before,
        }
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        t.emit_cpu(1, CgroupId(1), cpu_step(2, 3));
        t.emit_pipeline(1, None, PipelineEvent::Resynced);
        assert!(!t.is_enabled());
        assert_eq!(t.emitted(), 0);
        assert_eq!(t.dropped_events(), 0);
        assert!(t.events().is_empty());
        assert!(t.explain(CgroupId(1)).cpu.is_none());
    }

    #[test]
    fn events_round_trip_with_full_fidelity() {
        let t = Tracer::bounded(16);
        t.emit_cpu(7, CgroupId(3), cpu_step(2, 3));
        t.emit_mem(
            8,
            CgroupId(3),
            MemDecision {
                cause: DecisionCause::MemReclaimReset,
                before: Bytes(1000),
                after: Bytes(600),
                usage: Bytes(950),
                free: Bytes(50),
            },
        );
        t.emit_pipeline(9, None, PipelineEvent::GapDetected);

        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[0].tick, 7);
        assert_eq!(evs[0].container, Some(CgroupId(3)));
        match evs[0].kind {
            EventKind::Cpu(d) => {
                assert_eq!(d.before, 2);
                assert_eq!(d.after, 3);
                assert_eq!(d.cause, DecisionCause::CpuSaturatedWithSlack);
                assert!((d.utilization - 0.97).abs() < 1e-12);
                assert!(d.had_slack);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        match evs[1].kind {
            EventKind::Mem(d) => {
                assert_eq!(d.before, Bytes(1000));
                assert_eq!(d.after, Bytes(600));
                assert_eq!(d.usage, Bytes(950));
                assert_eq!(d.free, Bytes(50));
                assert_eq!(d.cause, DecisionCause::MemReclaimReset);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        assert_eq!(evs[2].container, None);
        assert_eq!(evs[2].kind, EventKind::Pipeline(PipelineEvent::GapDetected));
    }

    #[test]
    fn overflow_drops_oldest_and_counts_exactly() {
        let t = Tracer::bounded(8);
        assert_eq!(t.capacity(), 8);
        for i in 0..20u32 {
            t.emit_cpu(u64::from(i), CgroupId(1), cpu_step(i, i + 1));
        }
        assert_eq!(t.emitted(), 20);
        // Exactly head - capacity events were overwritten.
        assert_eq!(t.dropped_events(), 12);
        let evs = t.events();
        assert_eq!(evs.len(), 8);
        // The survivors are precisely the newest 8, in order.
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.seq, 12 + i as u64);
            assert_eq!(ev.tick, 12 + i as u64);
        }
    }

    #[test]
    fn no_drops_until_the_ring_is_full() {
        let t = Tracer::bounded(8);
        for i in 0..8u32 {
            t.emit_cpu(u64::from(i), CgroupId(1), cpu_step(i, i + 1));
        }
        assert_eq!(t.dropped_events(), 0);
        t.emit_cpu(8, CgroupId(1), cpu_step(8, 9));
        assert_eq!(t.dropped_events(), 1);
        assert_eq!(t.events().len(), 8);
        assert_eq!(t.events()[0].seq, 1, "seq 0 was the one dropped");
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Tracer::bounded(5).capacity(), 8);
        assert_eq!(Tracer::bounded(0).capacity(), 2);
        assert_eq!(Tracer::bounded(64).capacity(), 64);
    }

    #[test]
    fn timeline_filters_by_container_and_explain_takes_last() {
        let t = Tracer::bounded(32);
        t.emit_cpu(1, CgroupId(1), cpu_step(2, 3));
        t.emit_cpu(1, CgroupId(2), cpu_step(4, 5));
        t.emit_cpu(2, CgroupId(1), cpu_step(3, 4));
        t.emit_mem(
            3,
            CgroupId(1),
            MemDecision {
                cause: DecisionCause::MemPressureGrowth,
                before: Bytes(100),
                after: Bytes(190),
                usage: Bytes(95),
                free: Bytes(10_000),
            },
        );
        t.emit_pipeline(4, Some(CgroupId(1)), PipelineEvent::Resynced);

        let tl = t.timeline(CgroupId(1));
        assert_eq!(tl.len(), 4);
        assert!(tl.windows(2).all(|w| w[0].seq < w[1].seq));

        let ex = t.explain(CgroupId(1));
        match ex.cpu.expect("cpu decision").kind {
            EventKind::Cpu(d) => assert_eq!((d.before, d.after), (3, 4)),
            other => panic!("wrong kind: {other:?}"),
        }
        match ex.mem.expect("mem decision").kind {
            EventKind::Mem(d) => assert_eq!(d.after, Bytes(190)),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn concurrent_writers_never_corrupt_the_ring() {
        let t = Tracer::bounded(64);
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    t.emit_cpu(u64::from(i), CgroupId(w), cpu_step(i % 7, i % 7 + 1));
                }
            }));
        }
        let reader = {
            let t = t.clone();
            std::thread::spawn(move || {
                let mut max_seen = 0usize;
                for _ in 0..200 {
                    let evs = t.events();
                    assert!(evs.len() <= 64);
                    // Decoded events are internally consistent.
                    for ev in &evs {
                        match ev.kind {
                            EventKind::Cpu(d) => assert_eq!(d.after, d.before + 1),
                            other => panic!("unexpected kind: {other:?}"),
                        }
                    }
                    max_seen = max_seen.max(evs.len());
                }
                max_seen
            })
        };
        for h in handles {
            h.join().expect("writer");
        }
        reader.join().expect("reader");
        assert_eq!(t.emitted(), 2000);
        assert_eq!(t.dropped_events(), 2000 - 64);
        assert_eq!(t.events().len(), 64);
    }

    #[test]
    fn render_timeline_and_explain_are_stable() {
        let t = Tracer::bounded(16);
        t.emit_cpu(1, CgroupId(9), cpu_step(2, 3));
        let tl = t.render_timeline(CgroupId(9));
        assert!(tl.contains("c9 cpu 2 -> 3"));
        assert!(tl.contains("cpu-saturated+slack"));
        let ex = t.render_explain(CgroupId(9));
        assert!(ex.starts_with("cpu: "));
        assert!(ex.contains("mem: no decision traced"));
        assert!(t.render_timeline(CgroupId(4)).contains("no trace events"));
    }

    #[test]
    fn prom_help_text_is_escaped() {
        let mut p = PromText::new();
        p.header("arv_x", "line one\nline two \\ backslash", "counter");
        let body = p.finish();
        assert!(body.contains("# HELP arv_x line one\\nline two \\\\ backslash\n"));
        assert!(!body.contains("# HELP arv_x line one\nline"));
    }

    #[test]
    fn counter_and_gauge_builders_emit_header_and_sample() {
        let mut p = PromText::new();
        p.counter("arv_things", "Things counted", 3.0);
        p.gauge("arv_level", "Current level", 7.5);
        let body = p.finish();
        assert!(body.contains("# HELP arv_things Things counted\n"));
        assert!(body.contains("# TYPE arv_things counter\n"));
        assert!(body.contains("arv_things_total 3\n"));
        assert!(body.contains("# TYPE arv_level gauge\n"));
        assert!(body.contains("arv_level 7.5\n"));
    }

    #[test]
    fn lag_histogram_buckets_sum_and_max() {
        let mut h = LagHistogram::default();
        for lag in [0, 1, 2, 3, 9, 100] {
            h.observe(lag);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.sum(), 115);
        assert_eq!(h.max_lag(), 100);
        // 0 and 1 land in le=1; 2 in le=2; 3 in le=4; 9 in le=16;
        // 100 overflows to +Inf.
        assert_eq!(h.buckets(), [2, 1, 1, 0, 1, 0, 1]);

        let mut p = PromText::new();
        h.expose(&mut p, "arv_lag", &[("host", "3".to_string())]);
        let body = p.finish();
        assert!(body.contains("arv_lag_bucket{host=\"3\",le=\"1\"} 2\n"));
        assert!(body.contains("arv_lag_bucket{host=\"3\",le=\"+Inf\"} 6\n"));
        assert!(body.contains("arv_lag_sum{host=\"3\"} 115\n"));
        assert!(body.contains("arv_lag_count{host=\"3\"} 6\n"));
    }

    fn sample_dump() -> FlightDump {
        let t = Tracer::bounded(16);
        t.emit_cpu(7, CgroupId(3), cpu_step(2, 3));
        t.emit_mem(
            8,
            CgroupId(3),
            MemDecision {
                cause: DecisionCause::MemReclaimReset,
                before: Bytes(1000),
                after: Bytes(600),
                usage: Bytes(950),
                free: Bytes(50),
            },
        );
        t.emit_pipeline(9, None, PipelineEvent::FleetGapResync);
        let rec = FlightRecorder::bounded(4);
        rec.record(
            9,
            FlightTrigger::GapResync,
            &t,
            &[("deltas_ingested", 12), ("full_syncs", 2)],
        );
        rec.latest().expect("dump frozen")
    }

    #[test]
    fn flight_dump_round_trips_and_renders() {
        let dump = sample_dump();
        assert_eq!(dump.seq, 0);
        assert_eq!(dump.trigger, FlightTrigger::GapResync);
        assert_eq!(dump.events.len(), 3);
        let bytes = dump.encode();
        let back = FlightDump::decode(&bytes).expect("decodes");
        assert_eq!(back, dump);
        let text = dump.render();
        assert!(text.contains("trigger: gap-resync"));
        assert!(text.contains("deltas_ingested 12"));
        assert!(text.contains("fleet-gap-resync"));
    }

    #[test]
    fn flight_dump_rejects_truncation_and_corruption() {
        let bytes = sample_dump().encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                FlightDump::decode(&bytes[..cut]),
                None,
                "torn dump at {cut} must not decode"
            );
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert_eq!(
                FlightDump::decode(&bad),
                None,
                "bit flip at {i} must fail the CRC"
            );
        }
    }

    #[test]
    fn flight_recorder_bounds_and_orders_dumps() {
        let t = Tracer::bounded(8);
        let rec = FlightRecorder::bounded(2);
        assert!(rec.is_empty());
        for i in 0..5u64 {
            rec.record(i, FlightTrigger::Partition, &t, &[]);
        }
        assert_eq!(rec.dumps_frozen(), 5);
        assert_eq!(rec.len(), 2, "only the newest max_dumps retained");
        assert_eq!(rec.latest().expect("latest").seq, 4);
        assert_eq!(rec.get(1).expect("one back").seq, 3);
        assert_eq!(rec.get(2), None);
    }

    #[test]
    fn disabled_flight_recorder_is_inert() {
        let rec = FlightRecorder::disabled();
        rec.record(1, FlightTrigger::Fence, &Tracer::bounded(4), &[("x", 1)]);
        assert!(!rec.is_enabled());
        assert_eq!(rec.dumps_frozen(), 0);
        assert_eq!(rec.latest(), None);
    }

    #[test]
    fn identical_rings_freeze_identical_dump_bytes() {
        let make = || {
            let t = Tracer::bounded(8);
            t.emit_pipeline(3, None, PipelineEvent::FleetFenced);
            t.emit_pipeline(5, None, PipelineEvent::FleetPromoted);
            let rec = FlightRecorder::bounded(2);
            rec.record(5, FlightTrigger::Promotion, &t, &[("promotions", 1)]);
            rec.latest().expect("dump").encode()
        };
        assert_eq!(make(), make(), "replay must be bit-identical");
    }

    #[test]
    fn prom_text_formats_headers_labels_and_values() {
        let mut p = PromText::new();
        p.header("arv_queries_total", "Total queries.", "counter");
        p.sample("arv_queries_total", 42.0);
        p.labeled("arv_effective_cpus", &[("container", "3".to_string())], 4.0);
        p.sample("arv_hit_latency_ns", 123.5);
        let body = p.finish();
        assert!(body.contains("# HELP arv_queries_total Total queries.\n"));
        assert!(body.contains("# TYPE arv_queries_total counter\n"));
        assert!(body.contains("arv_queries_total 42\n"));
        assert!(body.contains("arv_effective_cpus{container=\"3\"} 4\n"));
        assert!(body.contains("arv_hit_latency_ns 123.5\n"));
    }
}
