//! An OpenMP-like (libgomp) runtime model.
//!
//! Unlike the JVM, OpenMP creates its worker team when each *parallel
//! region* starts, so the thread-count decision repeats throughout the
//! run (§4.1). Three strategies are modelled, matching §5.2's Figure 10:
//!
//! * **static** — every region runs with a fixed team matching the online
//!   CPU count (the default when `OMP_DYNAMIC` is off);
//! * **dynamic** — libgomp's `gomp_dynamic_max_threads`:
//!   `n_onln − loadavg`, with the 15-minute load average;
//! * **adaptive** — the paper's change: the team size is the effective
//!   CPU count from `sys_namespace` ("we substitute n_onln with E_CPU and
//!   remove the second term of the formula").
//!
//! Region execution uses the same mechanics as GC work: serial + parallel
//! CPU work advancing on the container's per-period grant, with a
//! contention penalty when the team outnumbers the CPUs granted.

#![warn(missing_docs)]

pub mod profile;
pub mod runtime;

pub use profile::OmpProfile;
pub use runtime::{OmpMetrics, OmpOutcome, OmpRuntime, ThreadStrategy};
