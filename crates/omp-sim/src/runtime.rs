//! The OpenMP runtime: per-region team sizing and region execution.

use arv_cgroups::CgroupId;
use arv_container::SimHost;
use arv_sim_core::SimDuration;

use crate::profile::OmpProfile;

/// How the team size of each parallel region is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStrategy {
    /// Fixed team for every region (`OMP_NUM_THREADS`, defaulting to the
    /// online CPU count the runtime observed at startup).
    Static(u32),
    /// libgomp dynamic threads: `max(1, n_onln − loadavg)` evaluated at
    /// region start, with the host-reported online count.
    Dynamic,
    /// The paper's adaptive strategy: the container's effective CPU count.
    Adaptive,
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OmpOutcome {
    /// Still executing parallel regions.
    Running,
    /// Finished every region.
    Completed,
}

/// Measurements collected over a run.
#[derive(Debug, Clone)]
pub struct OmpMetrics {
    /// Total wall time from launch to completion.
    pub exec_wall: SimDuration,
    /// Parallel regions completed.
    pub regions_done: u32,
    /// Team size chosen for each region.
    pub thread_trace: Vec<u32>,
}

#[derive(Debug, Clone)]
struct RegionWork {
    team: u32,
    serial_remaining: SimDuration,
    parallel_remaining: SimDuration,
}

/// Contention inflation coefficient when the team outnumbers granted
/// CPUs — same mechanism as the GC model, slightly lower because OpenMP
/// workers share no central task-queue lock.
const CONTENTION_ALPHA: f64 = 0.30;

/// A running OpenMP program bound to one container.
#[derive(Debug, Clone)]
pub struct OmpRuntime {
    id: CgroupId,
    profile: OmpProfile,
    strategy: ThreadStrategy,
    current: Option<RegionWork>,
    regions_left: u32,
    outcome: OmpOutcome,
    metrics: OmpMetrics,
}

impl OmpRuntime {
    /// Start a program in container `id` under the given strategy.
    pub fn launch(id: CgroupId, strategy: ThreadStrategy, profile: OmpProfile) -> OmpRuntime {
        profile.validate();
        if let ThreadStrategy::Static(n) = strategy {
            assert!(n > 0, "static team must have at least one thread");
        }
        OmpRuntime {
            id,
            regions_left: profile.regions,
            profile,
            strategy,
            current: None,
            outcome: OmpOutcome::Running,
            metrics: OmpMetrics {
                exec_wall: SimDuration::ZERO,
                regions_done: 0,
                thread_trace: Vec::new(),
            },
        }
    }

    /// The container (cgroup) this belongs to.
    pub fn id(&self) -> CgroupId {
        self.id
    }

    /// Current lifecycle state.
    pub fn outcome(&self) -> OmpOutcome {
        self.outcome
    }

    /// Whether the workload is still running.
    pub fn is_running(&self) -> bool {
        self.outcome == OmpOutcome::Running
    }

    /// Measurements collected so far.
    pub fn metrics(&self) -> &OmpMetrics {
        &self.metrics
    }

    /// Team size for the next region under the configured strategy.
    fn team_size(&self, host: &SimHost) -> u32 {
        match self.strategy {
            ThreadStrategy::Static(n) => n,
            ThreadStrategy::Dynamic => {
                let n_onln = host.online_cpus() as f64;
                (n_onln - host.loadavg()).floor().max(1.0) as u32
            }
            ThreadStrategy::Adaptive => host.effective_cpu(self.id).max(1),
        }
    }

    /// Time until the current region completes (assuming a full grant);
    /// a fresh region's full cost when none is in flight. Event-driven
    /// drivers cap the simulation step here.
    pub fn horizon(&self, host: &SimHost) -> Option<SimDuration> {
        if !self.is_running() {
            return None;
        }
        let wall = match &self.current {
            Some(r) => (r.serial_remaining + r.parallel_remaining) / u64::from(r.team.max(1)),
            None => {
                let team = self.team_size(host).max(1);
                self.profile.work_per_region / u64::from(team)
            }
        };
        Some(wall.max(SimDuration::from_micros(500)))
    }

    /// Runnable thread count this period (the current team, or the team
    /// about to be forked).
    pub fn runnable(&self, host: &SimHost) -> u32 {
        if !self.is_running() {
            return 0;
        }
        match &self.current {
            Some(r) => r.team,
            None => self.team_size(host),
        }
    }

    /// Advance by one scheduling period with `granted` CPU time.
    pub fn on_period(&mut self, host: &SimHost, granted: SimDuration, period: SimDuration) {
        if !self.is_running() {
            return;
        }
        self.metrics.exec_wall += period;

        if self.current.is_none() {
            let team = self.team_size(host);
            self.metrics.thread_trace.push(team);
            let serial = self
                .profile
                .work_per_region
                .mul_f64(self.profile.serial_frac)
                + self.profile.sync_per_thread * u64::from(team);
            let parallel = self
                .profile
                .work_per_region
                .mul_f64(1.0 - self.profile.serial_frac);
            self.current = Some(RegionWork {
                team,
                serial_remaining: serial,
                parallel_remaining: parallel,
            });
        }
        let region = self.current.as_mut().expect("region just ensured");

        let mut budget = granted;
        let serial_step = region.serial_remaining.min(budget).min(period);
        region.serial_remaining -= serial_step;
        budget -= serial_step;

        if !budget.is_zero() && !region.parallel_remaining.is_zero() {
            let granted_cpus = granted.ratio(period).max(1e-6);
            let excess = (region.team as f64 - granted_cpus).max(0.0);
            let efficiency = 1.0 / (1.0 + CONTENTION_ALPHA * excess / granted_cpus);
            let progress = budget.mul_f64(efficiency).min(region.parallel_remaining);
            region.parallel_remaining -= progress;
        }

        if region.serial_remaining.is_zero() && region.parallel_remaining.is_zero() {
            self.current = None;
            self.metrics.regions_done += 1;
            self.regions_left -= 1;
            if self.regions_left == 0 {
                self.outcome = OmpOutcome::Completed;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arv_container::ContainerSpec;

    fn drive(host: &mut SimHost, rts: &mut [OmpRuntime], max_periods: u32) {
        for _ in 0..max_periods {
            if rts.iter().all(|r| !r.is_running()) {
                return;
            }
            let demands: Vec<_> = rts
                .iter()
                .filter(|r| r.is_running())
                .map(|r| host.demand(r.id(), r.runnable(host).max(1)))
                .collect();
            let out = host.step(&demands);
            for r in rts.iter_mut() {
                let granted = out.alloc.granted_to(r.id());
                r.on_period(host, granted, out.period);
            }
        }
        panic!("OpenMP program did not finish in {max_periods} periods");
    }

    #[test]
    fn program_completes_all_regions() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("omp", 20));
        let mut rt = OmpRuntime::launch(id, ThreadStrategy::Static(8), OmpProfile::test_profile());
        drive(&mut host, std::slice::from_mut(&mut rt), 100_000);
        assert_eq!(rt.outcome(), OmpOutcome::Completed);
        assert_eq!(rt.metrics().regions_done, 20);
        assert_eq!(rt.metrics().thread_trace.len(), 20);
        assert!(rt.metrics().thread_trace.iter().all(|t| *t == 8));
    }

    #[test]
    fn dynamic_strategy_subtracts_loadavg() {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("omp", 20));
        host.prime_loadavg(15.0);
        let rt = OmpRuntime::launch(id, ThreadStrategy::Dynamic, OmpProfile::test_profile());
        assert_eq!(rt.runnable(&host), 5); // 20 − 15
        host.prime_loadavg(40.0);
        assert_eq!(rt.runnable(&host), 1); // clamped
    }

    #[test]
    fn adaptive_strategy_reads_effective_cpu() {
        let mut host = SimHost::paper_testbed();
        let ids: Vec<_> = (0..5)
            .map(|i| host.launch(&ContainerSpec::new(format!("c{i}"), 20).cpu_shares(1024)))
            .collect();
        // Saturate all five so E_CPU = 4 each.
        for _ in 0..30 {
            let ds: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
            host.step(&ds);
        }
        let rt = OmpRuntime::launch(ids[0], ThreadStrategy::Adaptive, OmpProfile::test_profile());
        assert_eq!(rt.runnable(&host), 4);
    }

    #[test]
    fn overthreading_in_quota_container_is_slow() {
        // Figure 10(b): one container with a 4-CPU quota. A 20-thread
        // static team must lose to a 4-thread team.
        let run = |threads: u32| -> SimDuration {
            let mut host = SimHost::paper_testbed();
            let id = host.launch(&ContainerSpec::new("omp", 20).cpus(4.0));
            let mut rt = OmpRuntime::launch(
                id,
                ThreadStrategy::Static(threads),
                OmpProfile::test_profile(),
            );
            drive(&mut host, std::slice::from_mut(&mut rt), 200_000);
            rt.metrics().exec_wall
        };
        let right_sized = run(4);
        let over = run(20);
        assert!(
            over.as_secs_f64() > right_sized.as_secs_f64() * 1.5,
            "over-threading too cheap: {right_sized} vs {over}"
        );
    }

    #[test]
    fn starved_team_of_one_is_slowest() {
        // Figure 10(a) failure mode: dynamic under high load collapses to
        // one thread even though the container is guaranteed 4 CPUs.
        let run = |strategy: ThreadStrategy, primed_load: f64| -> SimDuration {
            let mut host = SimHost::paper_testbed();
            let id = host.launch(&ContainerSpec::new("omp", 20));
            host.prime_loadavg(primed_load);
            let mut rt = OmpRuntime::launch(id, strategy, OmpProfile::test_profile());
            drive(&mut host, std::slice::from_mut(&mut rt), 400_000);
            rt.metrics().exec_wall
        };
        let adaptive_like = run(ThreadStrategy::Static(4), 100.0);
        let dynamic = run(ThreadStrategy::Dynamic, 100.0);
        assert!(dynamic.as_secs_f64() > adaptive_like.as_secs_f64() * 2.0);
    }

    #[test]
    fn team_resizes_between_regions_under_adaptive() {
        let mut host = SimHost::paper_testbed();
        let ids: Vec<_> = (0..2)
            .map(|i| host.launch(&ContainerSpec::new(format!("c{i}"), 20).cpu_shares(1024)))
            .collect();
        let mut profile = OmpProfile::test_profile();
        profile.regions = 60;
        let mut rt = OmpRuntime::launch(ids[0], ThreadStrategy::Adaptive, profile);
        // First half: neighbour saturates its share too.
        for _ in 0..2_000 {
            if !rt.is_running() {
                break;
            }
            let d0 = host.demand(ids[0], rt.runnable(&host).max(1));
            let d1 = host.demand(ids[1], 20);
            let out = host.step(&[d0, d1]);
            let granted = out.alloc.granted_to(ids[0]);
            rt.on_period(&host, granted, out.period);
        }
        // Second half: neighbour goes idle, E_CPU expands.
        while rt.is_running() {
            let d0 = host.demand(ids[0], rt.runnable(&host).max(1));
            let out = host.step(&[d0]);
            let granted = out.alloc.granted_to(ids[0]);
            rt.on_period(&host, granted, out.period);
        }
        let trace = &rt.metrics().thread_trace;
        let min = trace.iter().min().unwrap();
        let max = trace.iter().max().unwrap();
        assert!(
            max > min,
            "adaptive team should expand when CPUs free up: {trace:?}"
        );
    }

    #[test]
    #[should_panic]
    fn static_zero_threads_rejected() {
        OmpRuntime::launch(
            CgroupId(0),
            ThreadStrategy::Static(0),
            OmpProfile::test_profile(),
        );
    }
}
