//! OpenMP workload profiles: a program as a sequence of parallel regions.

use arv_sim_core::{SimDuration, SimRng};

/// Parameters of one OpenMP program.
#[derive(Debug, Clone)]
pub struct OmpProfile {
    /// Benchmark name (reporting only).
    pub name: String,
    /// Number of parallel regions executed (NPB iterations).
    pub regions: u32,
    /// Parallelizable CPU work per region.
    pub work_per_region: SimDuration,
    /// Serial fraction of each region (Amdahl): fork/serial sections.
    pub serial_frac: f64,
    /// Barrier/fork-join cost per team thread per region.
    pub sync_per_thread: SimDuration,
}

impl OmpProfile {
    /// Panic unless the parameters are internally consistent.
    pub fn validate(&self) {
        assert!(self.regions > 0, "program needs at least one region");
        assert!(!self.work_per_region.is_zero(), "regions need CPU work");
        assert!(
            (0.0..1.0).contains(&self.serial_frac),
            "serial fraction must be in [0,1)"
        );
    }

    /// Total CPU work of the program (serial + parallel, excluding
    /// team-size-dependent synchronization).
    pub fn total_work(&self) -> SimDuration {
        self.work_per_region * u64::from(self.regions)
    }

    /// A run-to-run variant with multiplicative jitter of amplitude `amp`
    /// on the per-region work (the §5.1 average-of-10-runs methodology).
    pub fn jittered(&self, rng: &mut SimRng, amp: f64) -> OmpProfile {
        let mut p = self.clone();
        p.work_per_region = p.work_per_region.mul_f64(rng.jitter(amp));
        p
    }

    /// A small, neutral profile for tests.
    pub fn test_profile() -> OmpProfile {
        OmpProfile {
            name: "test".into(),
            regions: 20,
            work_per_region: SimDuration::from_millis(400),
            serial_frac: 0.05,
            sync_per_thread: SimDuration::from_micros(200),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_profile_validates() {
        OmpProfile::test_profile().validate();
    }

    #[test]
    fn total_work_sums_regions() {
        let p = OmpProfile::test_profile();
        assert_eq!(p.total_work(), SimDuration::from_millis(8_000));
    }

    #[test]
    fn jittered_profile_is_valid_and_close() {
        let base = OmpProfile::test_profile();
        let mut rng = SimRng::seed_from_u64(3);
        let j = base.jittered(&mut rng, 0.05);
        j.validate();
        let ratio = j.work_per_region.ratio(base.work_per_region);
        assert!((0.95..=1.05).contains(&ratio));
    }

    #[test]
    #[should_panic]
    fn zero_regions_rejected() {
        let mut p = OmpProfile::test_profile();
        p.regions = 0;
        p.validate();
    }

    #[test]
    #[should_panic]
    fn fully_serial_region_rejected() {
        let mut p = OmpProfile::test_profile();
        p.serial_frac = 1.0;
        p.validate();
    }
}
