//! The live threaded resource view: a real `ns_monitor` thread updating
//! atomic namespace cells while application threads query them
//! concurrently — the §5.4 deployment shape with actual OS threads.
//!
//! ```text
//! cargo run --release --example live_view
//! ```

use arv_cgroups::{Bytes, CgroupId};
use arv_resview::effective_cpu::{CpuBounds, CpuSample};
use arv_resview::effective_mem::{EffectiveMemory, EffectiveMemoryConfig, MemSample};
use arv_resview::live::{HostSampler, LiveMonitor, LiveRegistry, LiveSample};
use arv_resview::EffectiveCpuConfig;
use arv_sim_core::SimDuration;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A toy host whose slack oscillates: even seconds are busy (no slack),
/// odd seconds idle — the view should breathe with it.
struct OscillatingHost {
    started: Instant,
    samples: AtomicU64,
}

impl HostSampler for OscillatingHost {
    fn sample(&self, _id: CgroupId) -> Option<LiveSample> {
        self.samples.fetch_add(1, Ordering::Relaxed);
        let t = SimDuration::from_millis(24);
        let busy = self.started.elapsed().as_millis() / 250 % 2 == 0;
        Some(LiveSample {
            cpu: CpuSample {
                usage: t * 10, // the container is always hungry
                period: t,
                slack: if busy { SimDuration::ZERO } else { t * 4 },
            },
            mem: MemSample {
                free: Bytes::from_gib(64),
                usage: Bytes::from_mib(480),
                reclaiming: false,
            },
        })
    }
}

fn main() {
    let registry = LiveRegistry::new();
    let cell = registry.register(
        CgroupId(0),
        CpuBounds {
            lower: 4,
            upper: 10,
        },
        EffectiveCpuConfig::default(),
        EffectiveMemory::new(
            Bytes::from_mib(500),
            Bytes::from_gib(1),
            Bytes::from_mib(1280),
            Bytes::from_mib(2560),
            EffectiveMemoryConfig::default(),
        ),
    );

    let sampler = Arc::new(OscillatingHost {
        started: Instant::now(),
        samples: AtomicU64::new(0),
    });
    let monitor = LiveMonitor::spawn(
        registry.clone(),
        Arc::clone(&sampler) as Arc<dyn HostSampler>,
        Duration::from_millis(5),
    );

    // Application threads hammer the lock-free query path while the
    // monitor updates in the background.
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let c = Arc::clone(&cell);
            std::thread::spawn(move || {
                let mut queries = 0u64;
                let deadline = Instant::now() + Duration::from_millis(900);
                let mut min = u32::MAX;
                let mut max = 0;
                while Instant::now() < deadline {
                    let v = c.effective_cpu();
                    min = min.min(v);
                    max = max.max(v);
                    queries += 1;
                }
                (r, queries, min, max)
            })
        })
        .collect();

    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(150));
        println!(
            "t={:>4}ms  E_CPU={:>2}  E_MEM={}  (updates so far: {})",
            sampler.started.elapsed().as_millis(),
            cell.effective_cpu(),
            cell.effective_memory(),
            cell.update_count(),
        );
    }

    for r in readers {
        let (id, queries, min, max) = r.join().unwrap();
        println!("reader {id}: {queries} lock-free queries, saw E_CPU range {min}..={max}");
    }
    monitor.shutdown();
    println!("monitor stopped after {} updates", cell.update_count());
}
