//! Decision-provenance tracing end to end: run a small multi-container
//! scenario, then answer the operator questions — *why does this
//! container see N CPUs?* — straight from the trace ring, and dump the
//! daemon's Prometheus-style exposition.
//!
//! ```text
//! cargo run --release --example observability
//! ```

use arv_cgroups::{Bytes, CgroupId};
use arv_container::{ContainerSpec, SimHost};
use arv_resview::StalenessPolicy;
use arv_telemetry::Tracer;
use arv_viewd::ViewServer;

fn spec(tag: u32) -> ContainerSpec {
    ContainerSpec::new(format!("tenant-{tag}"), 20)
        .cpus(10.0)
        .cpu_shares(1024)
        .memory(Bytes::from_mib(4096))
        .memory_reservation(Bytes::from_mib(1024))
}

fn main() {
    // One trace ring shared by the whole pipeline: the monitor, the
    // watchdog and the serving daemon all emit into it.
    let tracer = Tracer::bounded(4096);
    let mut host = SimHost::paper_testbed();
    host.set_tracer(tracer.clone());
    host.attach_viewd(ViewServer::with_telemetry(
        host.viewd_host_spec(),
        4,
        StalenessPolicy::default(),
        tracer.clone(),
    ));

    let ids: Vec<CgroupId> = (0..3).map(|i| host.launch(&spec(i))).collect();

    // Everyone busy: Algorithm 1 walks each view down to the fair share.
    for _ in 0..6 {
        let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
        host.step(&demands);
    }
    // Background load departs: tenant-0 alone grows back to its quota.
    for _ in 0..8 {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
    }
    // Memory pressure: tenant-0 charges past 90% of its view, the view
    // grows; then a hog drives host free memory below the watermark and
    // the grown view resets to the soft limit.
    host.charge(ids[0], Bytes::from_mib(980));
    for _ in 0..2 {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
    }
    let hog = host.launch(&ContainerSpec::new("hog", 20).cpus(2.0).cpu_shares(512));
    host.charge(hog, Bytes::from_mib(129_000));
    for _ in 0..2 {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
    }

    // A few queries against the daemon so the exposition has traffic.
    let client = host.viewd().expect("viewd attached").client();
    for id in &ids {
        client.read(Some(*id), "/proc/cpuinfo").expect("renderable");
        client.read(Some(*id), "/proc/meminfo").expect("renderable");
    }

    println!("== why does tenant-0 see what it sees? ==");
    print!("{}", tracer.render_explain(ids[0]));

    println!("\n== tenant-0 grow-then-reset timeline ==");
    print!("{}", tracer.render_timeline(ids[0]));

    println!("\n== full pipeline trace (all containers) ==");
    print!("{}", tracer.render_full());

    println!("\n== arv-viewd exposition (scrape endpoint body) ==");
    print!(
        "{}",
        host.viewd()
            .expect("viewd attached")
            .prometheus_exposition()
    );
}
