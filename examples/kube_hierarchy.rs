//! Hierarchical cgroups demo: a Kubernetes-style tree
//! (`kubepods` → pods → containers) with CFS group scheduling and
//! tree-aware Algorithm 1 bounds — the nesting real orchestrators add on
//! top of the paper's flat Docker layout.
//!
//! ```text
//! cargo run --release --example kube_hierarchy
//! ```

use arv_cfs::{allocate_tree, CfsSim, LeafDemand};
use arv_cgroups::hierarchy::{CgroupTree, ROOT};
use arv_cgroups::{CgroupId, CgroupSpec, CpuController, MemController};
use arv_resview::CpuBounds;
use arv_sim_core::SimDuration;
use std::collections::BTreeMap;

fn spec(shares: u64, quota: Option<f64>) -> CgroupSpec {
    let mut cpu = CpuController::unlimited(20).with_shares(shares);
    if let Some(q) = quota {
        cpu = cpu.with_quota_cpus(q);
    }
    CgroupSpec::new(cpu, MemController::unlimited())
}

fn main() {
    // root ── kubepods (shares 8192)
    //         ├── pod-a (shares 2048, quota 8 CPUs) ── web, sidecar
    //         └── pod-b (shares 1024)               ── batch
    //      └─ system   (shares 1024)                ── journald
    let mut tree = CgroupTree::new();
    let kubepods = tree.create(ROOT, spec(8192, None));
    let system = tree.create(ROOT, spec(1024, None));
    let pod_a = tree.create(kubepods, spec(2048, Some(8.0)));
    let pod_b = tree.create(kubepods, spec(1024, None));
    let web = tree.create(pod_a, spec(2048, None));
    let sidecar = tree.create(pod_a, spec(512, None));
    let batch = tree.create(pod_b, spec(1024, None));
    let journald = tree.create(system, spec(1024, None));

    let cfs = CfsSim::with_cpus(20);
    let online = cfs.online();
    let period = SimDuration::from_millis(24);
    let names: [(CgroupId, &str); 4] = [
        (web, "pod-a/web"),
        (sidecar, "pod-a/sidecar"),
        (batch, "pod-b/batch"),
        (journald, "system/journald"),
    ];

    println!("tree-aware Algorithm 1 bounds (20-core host):");
    for (id, name) in names {
        let b = CpuBounds::compute_in_tree(&tree, id, online);
        println!(
            "  {name:<18} guaranteed {:>2} CPUs, capped at {:>2}",
            b.lower, b.upper
        );
    }

    let scenarios: [(&str, Vec<CgroupId>); 3] = [
        ("everyone busy", vec![web, sidecar, batch, journald]),
        (
            "pod-b idle (its share flows inside kubepods)",
            vec![web, sidecar, journald],
        ),
        ("only web busy (quota of pod-a caps it at 8)", vec![web]),
    ];
    for (label, active) in scenarios {
        let mut demands = BTreeMap::new();
        for id in &active {
            demands.insert(*id, LeafDemand::cpu_bound(20));
        }
        let alloc = allocate_tree(&cfs, period, &tree, &demands);
        println!("\n{label}:");
        for (id, name) in names {
            if demands.contains_key(&id) {
                println!("  {name:<18} {:>6.2} CPUs", alloc.granted_cpus(id));
            }
        }
        println!(
            "  {:<18} {:>6.2} CPUs idle",
            "(slack)",
            alloc.slack.ratio(period)
        );
    }
}
