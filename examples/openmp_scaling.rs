//! OpenMP thread-strategy comparison on an NPB kernel — the Figure 10
//! scenarios as a runnable program.
//!
//! ```text
//! cargo run --release --example openmp_scaling [kernel]
//! ```

use arv_container::{ContainerSpec, SimHost};
use arv_experiments::driver::Fleet;
use arv_omp::{OmpRuntime, ThreadStrategy};
use arv_sim_core::SimDuration;
use arv_workloads::{npb_profile, NPB_BENCHMARKS};

fn main() {
    let kernel = std::env::args().nth(1).unwrap_or_else(|| "cg".into());
    assert!(
        NPB_BENCHMARKS.contains(&kernel.as_str()),
        "unknown kernel {kernel:?}; pick one of {NPB_BENCHMARKS:?}"
    );
    let mut profile = npb_profile(&kernel);
    profile.regions = profile.regions.min(40);

    println!("NPB {kernel}: five equal-share containers (paper Figure 10(a))\n");
    run_scenario(&profile, 5, None, 100.0);

    println!("\nNPB {kernel}: one container with a 4-CPU quota (Figure 10(b))\n");
    run_scenario(&profile, 1, Some(4.0), 0.0);
}

fn run_scenario(profile: &arv_omp::OmpProfile, n: u32, quota: Option<f64>, loadavg: f64) {
    println!(
        "{:<26} {:>10} {:>16}",
        "strategy", "exec (s)", "threads (median)"
    );
    let mut results = Vec::new();
    for (name, strategy) in [
        ("static (20 = online CPUs)", ThreadStrategy::Static(20)),
        ("dynamic (n_onln - load)", ThreadStrategy::Dynamic),
        ("adaptive (E_CPU)", ThreadStrategy::Adaptive),
    ] {
        let mut host = SimHost::paper_testbed();
        host.prime_loadavg(loadavg);
        let mut fleet = Fleet::new();
        let idxs: Vec<_> = (0..n)
            .map(|i| {
                let mut spec = ContainerSpec::new(format!("omp{i}"), 20);
                if let Some(q) = quota {
                    spec = spec.cpus(q);
                }
                let id = host.launch(&spec);
                fleet.push_omp(OmpRuntime::launch(id, strategy, profile.clone()))
            })
            .collect();
        assert!(fleet.run(&mut host, SimDuration::from_secs(100_000)));

        let exec = idxs
            .iter()
            .map(|i| fleet.omp(*i).metrics().exec_wall.as_secs_f64())
            .sum::<f64>()
            / idxs.len() as f64;
        let mut teams = fleet.omp(idxs[0]).metrics().thread_trace.clone();
        teams.sort_unstable();
        let median = teams.get(teams.len() / 2).copied().unwrap_or(0);
        println!("{name:<26} {exec:>10.2} {median:>16}");
        results.push((name, exec));
    }
    let best = results
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    println!("-> fastest: {}", best.0);
}
