//! Elastic heap demo: one container with a 1 GB hard limit running an
//! allocation-heavy benchmark with no `-Xmx` — the vanilla JVM's
//! auto-sized 32 GB heap swaps itself into collapse, the elastic heap
//! tracks effective memory and never does (Figure 11).
//!
//! ```text
//! cargo run --release --example elastic_heap
//! ```

use arv_cgroups::Bytes;
use arv_container::{ContainerSpec, SimHost};
use arv_experiments::driver::Fleet;
use arv_jvm::{HeapPolicy, Jvm, JvmConfig};
use arv_sim_core::SimDuration;
use arv_workloads::dacapo_profile;

fn main() {
    let mut profile = dacapo_profile("lusearch");
    profile.total_work = profile.total_work.mul_f64(0.5);

    println!("lusearch in a 1 GB container, -Xms 500 MB, no -Xmx\n");
    for (name, cfg) in [
        (
            "vanilla (auto max = host/4 = 32 GB)",
            JvmConfig::vanilla_jdk8().with_xms(Bytes::from_mib(500)),
        ),
        (
            "elastic (VirtualMax = effective memory)",
            JvmConfig::adaptive()
                .with_heap_policy(HeapPolicy::Elastic)
                .with_xms(Bytes::from_mib(500))
                .with_heap_trace(),
        ),
    ] {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20).memory(Bytes::from_gib(1)));
        let mut fleet = Fleet::new();
        let i = fleet.push_jvm(Jvm::launch(&mut host, id, cfg, profile.clone()));
        assert!(fleet.run(&mut host, SimDuration::from_secs(100_000)));

        let jvm = fleet.jvm(i);
        let m = jvm.metrics();
        println!("== {name} ==");
        println!(
            "  outcome: {:?}   exec {:.2}s   GC {:.2}s   {} collections",
            jvm.outcome(),
            m.exec_wall.as_secs_f64(),
            m.gc_wall.as_secs_f64(),
            m.gc_count(),
        );
        println!(
            "  final committed {}, swap traffic {}",
            jvm.heap().committed(),
            host.mem().swap_out_total(),
        );
        if !m.committed_series.is_empty() {
            println!("  committed trace (GiB):");
            for (t, v) in m.committed_series.downsample(8).samples() {
                println!("    {:>7.1}s  {v:.3}", t.as_secs_f64());
            }
        }
        println!();
    }
}
