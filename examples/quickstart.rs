//! Quickstart: build a host, launch containers, and watch the resource
//! view close the semantic gap.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use arv_cgroups::Bytes;
use arv_container::{ContainerSpec, SimHost};
use arv_resview::Sysconf;

fn main() {
    // The paper's testbed: 20 cores, 128 GB of memory.
    let mut host = SimHost::paper_testbed();

    // Five containers, each limited to 10 CPUs with equal shares — the
    // running example of §2.2.
    let ids: Vec<_> = (0..5)
        .map(|i| {
            host.launch(
                &ContainerSpec::new(format!("app-{i}"), 20)
                    .cpus(10.0)
                    .memory(Bytes::from_gib(4))
                    .memory_reservation(Bytes::from_gib(2)),
            )
        })
        .collect();

    println!("== before load ==");
    show(&host, ids[0]);

    // Saturate all five containers for a second of simulated time.
    println!("\n== all five containers saturated ==");
    for _ in 0..50 {
        let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
        host.step(&demands);
    }
    show(&host, ids[0]);
    println!("(5 containers share 20 cores -> 4 effective CPUs each)");

    // Four containers go idle: work conservation lets the survivor expand.
    println!("\n== four containers idle, one saturated ==");
    for _ in 0..50 {
        let demands = vec![host.demand(ids[0], 20)];
        host.step(&demands);
    }
    show(&host, ids[0]);
    println!("(idle neighbours -> the view grows to the 10-CPU quota)");

    // A naive application probing the host would size for 20 CPUs and
    // 32 GB of heap; through the virtual sysfs it sees its real share.
    println!("\n== what resource probing returns ==");
    println!(
        "host process:      {} CPUs, {:5.1} GiB memory",
        host.sysconf(None, Sysconf::NprocessorsOnln),
        Bytes(host.sysconf(None, Sysconf::PhysPages) * arv_resview::PAGE_SIZE).as_gib_f64(),
    );
    println!(
        "inside container:  {} CPUs, {:5.1} GiB memory",
        host.sysconf(Some(ids[0]), Sysconf::NprocessorsOnln),
        Bytes(host.sysconf(Some(ids[0]), Sysconf::PhysPages) * arv_resview::PAGE_SIZE).as_gib_f64(),
    );
    println!(
        "virtual sysfs:     /sys/devices/system/cpu/online = {:?}",
        host.sysfs()
            .read(Some(ids[0]), "/sys/devices/system/cpu/online")
            .unwrap()
    );
}

fn show(host: &SimHost, id: arv_cgroups::CgroupId) {
    let ns = host.monitor().namespace(id).unwrap();
    println!(
        "container {:?}: effective CPU = {} (bounds {}..={}), effective memory = {}",
        host.container_name(id).unwrap(),
        ns.effective_cpu(),
        ns.cpu_bounds().lower,
        ns.cpu_bounds().upper,
        ns.effective_memory(),
    );
}
