//! The full serving stack: a simulated host drives three containers with
//! different quotas, an attached `arv-viewd` daemon mirrors their
//! adaptive views, and reader threads hammer the daemon — in-process and
//! over the Unix-socket wire protocol — while the simulation runs.
//!
//! ```text
//! cargo run --release --example view_server
//! ```

use arv_container::{ContainerSpec, SimHost};
use arv_resview::Sysconf;
use arv_viewd::{ViewServer, WireClient, WireServer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

fn main() {
    let mut host = SimHost::paper_testbed();
    let server = ViewServer::new(host.viewd_host_spec(), 8);
    host.attach_viewd(server.clone());

    // Three containers with different quotas; all CPU-hungry.
    let ids = [
        host.launch(&ContainerSpec::new("small", 20).cpus(2.0)),
        host.launch(&ContainerSpec::new("medium", 20).cpus(4.0)),
        host.launch(&ContainerSpec::new("large", 20).cpus(8.0)),
    ];

    // The daemon's wire endpoint, for out-of-process readers.
    let socket =
        std::env::temp_dir().join(format!("arv-viewd-example-{}.sock", std::process::id()));
    let wire = WireServer::spawn(server.clone(), &socket).expect("bind wire socket");

    // Reader threads hammer the daemon while the simulation runs.
    let stop = Arc::new(AtomicBool::new(false));
    let progress: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());
    let mut readers = Vec::new();
    for (r, id) in ids.iter().cycle().take(4).enumerate() {
        let client = server.client();
        let stop = Arc::clone(&stop);
        let progress = Arc::clone(&progress);
        let id = *id;
        readers.push(thread::spawn(move || {
            let mut reads = 0u64;
            while !stop.load(Ordering::Acquire) {
                let path =
                    ["/proc/cpuinfo", "/proc/meminfo", "/proc/stat", "cpu.max"][reads as usize % 4];
                client.read(Some(id), path).expect("renderable");
                client.sysconf(Some(id), Sysconf::NprocessorsOnln);
                reads += 1;
                progress[r].store(reads, Ordering::Relaxed);
            }
            println!("reader {r} ({id:?}): {reads} read+sysconf rounds");
        }));
    }
    let wire_progress = Arc::new(AtomicU64::new(0));
    let wire_reader = {
        let stop = Arc::clone(&stop);
        let socket = socket.clone();
        let id = ids[2];
        let wire_progress = Arc::clone(&wire_progress);
        thread::spawn(move || {
            let mut client = WireClient::connect(&socket).expect("connect");
            let mut reads = 0u64;
            while !stop.load(Ordering::Acquire) {
                let resp = client
                    .read(Some(id), "/proc/cpuinfo")
                    .expect("wire io")
                    .expect("known path");
                assert!(!resp.body.is_empty());
                reads += 1;
                wire_progress.store(reads, Ordering::Relaxed);
            }
            println!("wire reader ({id:?}): {reads} reads over the socket");
        })
    };

    // Drive the simulation: everyone busy at first, then the neighbours
    // go idle and `large` expands into the slack — every update-timer
    // firing republishes the views the readers are racing against. Keep
    // stepping until every reader has raced at least 5000 rounds.
    let mut step = 0u64;
    while step < 400
        || progress.iter().any(|p| p.load(Ordering::Relaxed) < 5_000)
        || wire_progress.load(Ordering::Relaxed) < 500
    {
        let demands: Vec<_> = if step % 400 < 200 {
            ids.iter().map(|id| host.demand(*id, 20)).collect()
        } else {
            vec![host.demand(ids[2], 20)]
        };
        host.step(&demands);
        step += 1;
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        r.join().unwrap();
    }
    wire_reader.join().unwrap();
    drop(wire);

    println!("\nafter {} of simulated time:", host.now());
    let client = server.client();
    for id in &ids {
        println!(
            "  {:<8} effective_cpu={:<2} view_mem={:>6} MiB  generation={}",
            host.container_name(*id).unwrap(),
            client.sysconf(Some(*id), Sysconf::NprocessorsOnln),
            host.effective_memory(*id).as_u64() / (1024 * 1024),
            client.generation(*id).unwrap(),
        );
    }

    let m = server.metrics();
    println!("\ndaemon metrics:");
    println!("  queries        {}", m.queries);
    println!(
        "  cache hits     {} ({:.1}%)",
        m.cache_hits,
        100.0 * m.cache_hits as f64 / m.queries.max(1) as f64
    );
    println!("  cache misses   {}", m.cache_misses);
    println!("  wire requests  {}", m.wire_requests);
    println!(
        "  hit latency    {:.0} ns mean, p99 ≤ {} ns",
        m.hit_latency_ns, m.hit_p99_ns
    );
    println!(
        "  miss latency   {:.0} ns mean, p99 ≤ {} ns",
        m.miss_latency_ns, m.miss_p99_ns
    );
    assert_eq!(m.cache_hits + m.cache_misses, m.queries);
}
