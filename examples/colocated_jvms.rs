//! Colocated JVMs: five containers running the same DaCapo benchmark
//! under the vanilla, dynamic-GC-threads, and adaptive JVMs — the
//! Figure 6 scenario as a runnable program.
//!
//! ```text
//! cargo run --release --example colocated_jvms [benchmark]
//! ```

use arv_container::{ContainerSpec, SimHost};
use arv_experiments::driver::Fleet;
use arv_jvm::{HeapPolicy, Jvm, JvmConfig};
use arv_sim_core::SimDuration;
use arv_workloads::{dacapo_profile, DACAPO_BENCHMARKS};

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "xalan".into());
    assert!(
        DACAPO_BENCHMARKS.contains(&bench.as_str()),
        "unknown benchmark {bench:?}; pick one of {DACAPO_BENCHMARKS:?}"
    );
    let mut profile = dacapo_profile(&bench);
    profile.total_work = profile.total_work.mul_f64(0.25); // keep the demo snappy

    println!("benchmark: {bench} (5 containers x 10-CPU limit on 20 cores)\n");
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>14}",
        "config", "exec (s)", "GC (s)", "GCs", "workers (last)"
    );

    let mut baseline = None;
    for (name, cfg) in [
        ("vanilla", JvmConfig::vanilla_jdk8()),
        (
            "dynamic",
            JvmConfig::vanilla_jdk8().with_dynamic_gc_threads(true),
        ),
        ("adaptive", JvmConfig::adaptive()),
    ] {
        let mut host = SimHost::paper_testbed();
        let mut fleet = Fleet::new();
        let idxs: Vec<_> = (0..5)
            .map(|i| {
                let id = host.launch(
                    &ContainerSpec::new(format!("c{i}"), 20)
                        .cpus(10.0)
                        .cpu_shares(1024),
                );
                let cfg = cfg
                    .clone()
                    .with_heap_policy(HeapPolicy::FixedMax(profile.paper_heap_size()));
                fleet.push_jvm(Jvm::launch(&mut host, id, cfg, profile.clone()))
            })
            .collect();
        assert!(fleet.run(&mut host, SimDuration::from_secs(100_000)));

        let n = idxs.len() as f64;
        let exec: f64 = idxs
            .iter()
            .map(|i| fleet.jvm(*i).metrics().exec_wall.as_secs_f64())
            .sum::<f64>()
            / n;
        let gc: f64 = idxs
            .iter()
            .map(|i| fleet.jvm(*i).metrics().gc_wall.as_secs_f64())
            .sum::<f64>()
            / n;
        let gcs = fleet.jvm(idxs[0]).metrics().gc_count();
        let last_workers = *fleet
            .jvm(idxs[0])
            .metrics()
            .gc_thread_trace
            .last()
            .unwrap_or(&0);
        println!("{name:<10} {exec:>10.2} {gc:>10.2} {gcs:>8} {last_workers:>14}");
        if name == "vanilla" {
            baseline = Some(exec);
        } else if let Some(base) = baseline {
            println!(
                "{:<10} ({:+.1}% vs vanilla)",
                "",
                (exec / base - 1.0) * 100.0
            );
        }
    }
}
