#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# Everything runs against the vendored/shimmed workspace — no network.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> ci: all green"
