#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the full test suite.
# Everything runs against the vendored/shimmed workspace — no network.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo clippy -p arv-view-server (no unwraps in serving paths)"
cargo clippy -p arv-view-server -- -D warnings -D clippy::unwrap_used

echo "==> cargo clippy -p arv-fleet (no unwraps in the control plane)"
cargo clippy -p arv-fleet -- -D warnings -D clippy::unwrap_used

echo "==> cargo clippy -p arv-persist (no unwraps under the journal/lease)"
cargo clippy -p arv-persist -- -D warnings -D clippy::unwrap_used

echo "==> cargo clippy -p arv-telemetry (no unwraps in the observability plane)"
cargo clippy -p arv-telemetry -- -D warnings -D clippy::unwrap_used

echo "==> cargo test -q"
cargo test -q

echo "==> fault-pipeline e2e (wire kill/restart under concurrent readers)"
cargo test -q -p arv-integration-tests --test fault_pipeline_e2e

echo "==> fleet e2e (multi-periphery ingest under racing rollup readers)"
cargo test -q -p arv-integration-tests --test fleet_e2e

echo "==> fleet failover e2e (replicated pair, primary killed mid-stream)"
cargo test -q -p arv-integration-tests --test fleet_failover_e2e

echo "==> wire reactor e2e (hundreds of racing/slow/hostile clients on one daemon)"
cargo test -q -p arv-integration-tests --test wire_reactor_e2e

echo "==> chaos experiment (seeded fault injection, replay-checked)"
cargo run -q --release -p arv-experiments --bin experiments -- --fig chaos --scale 0.5 > /dev/null

echo "==> observability experiment (provenance replay + trace-overhead budget)"
cargo run -q --release -p arv-experiments --bin experiments -- --fig obs --scale 0.5 > /dev/null

echo "==> recovery experiment (journaled warm restart + admission-controlled flood)"
cargo run -q --release -p arv-experiments --bin experiments -- --fig recovery --scale 0.5 > /dev/null

echo "==> fleet experiment (core↔periphery aggregation, partitions, controller failover)"
cargo run -q --release -p arv-experiments --bin experiments -- --fig fleet --scale 0.5 > /dev/null

echo "==> fleet experiment, rotated seeds (failover/split-brain must hold beyond the canonical seeds)"
cargo run -q --release -p arv-experiments --bin experiments -- --fig fleet --scale 0.5 --seed-offset 1 > /dev/null

echo "==> fleet observability experiment (waterfalls vs ground truth, bit-identical flight dumps, overhead budget)"
cargo run -q --release -p arv-experiments --bin experiments -- --fig fleetobs --scale 0.5 > /dev/null

echo "==> fleet observability experiment, rotated seeds"
cargo run -q --release -p arv-experiments --bin experiments -- --fig fleetobs --scale 0.5 --seed-offset 1 > /dev/null

echo "==> storm campaign (storage faults composed with every fleet axis, durability ladder gated)"
cargo run -q --release -p arv-experiments --bin experiments -- --fig storm --scale 0.5 > /dev/null

echo "==> storm campaign, rotated seeds (the ladder must hold beyond the canonical seeds)"
cargo run -q --release -p arv-experiments --bin experiments -- --fig storm --scale 0.5 --seed-offset 1 > /dev/null

echo "==> fleet bench (ingest throughput, rollup query cost, resync ticks, failover convergence, obs overhead)"
cargo bench -q -p arv-bench --bench fleet > /dev/null
test -s BENCH_fleet.json || { echo "BENCH_fleet.json missing"; exit 1; }

echo "==> persist bench (journal append cost, restore throughput, faulty-store overhead)"
cargo bench -q -p arv-bench --bench persist > /dev/null
test -s BENCH_persist.json || { echo "BENCH_persist.json missing"; exit 1; }

echo "==> wire bench (5k-connection fanout, cached-read p99, reactor vs threaded engine)"
cargo bench -q -p arv-bench --bench wire > /dev/null
test -s BENCH_wire.json || { echo "BENCH_wire.json missing"; exit 1; }

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "==> ci: all green"
