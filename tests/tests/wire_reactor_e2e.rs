//! End-to-end stress test for the readiness-driven wire tier: one viewd
//! daemon on the reactor, hammered simultaneously by hundreds of
//! well-behaved racing clients, a pack of slow clients that stop
//! reading (to be evicted), and hostile clients feeding the decoder
//! garbage and torn frames — while an in-process updater keeps the
//! views moving. The daemon must answer every well-behaved request
//! correctly throughout, account the abuse in its metrics, and still
//! serve a fresh client afterwards.
//!
//! A second test pins the shutdown promise: with hundreds of
//! connections parked and several flooding, `WireServer::shutdown`
//! must return in well under two seconds.

use arv_cgroups::{Bytes, CgroupId};
use arv_resview::effective_cpu::CpuBounds;
use arv_resview::effective_mem::{EffectiveMemory, EffectiveMemoryConfig};
use arv_resview::EffectiveCpuConfig;
use arv_viewd::codec::{read_frame, write_frame};
use arv_viewd::{
    parse_response, HostSpec, ServerConfig, ViewServer, WireServer, KIND_READ, MAX_RESPONSE,
};
use std::io::Write as IoWrite;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Well-behaved clients racing reads against the moving views.
const RACING: usize = 220;
/// Requests each racing client must complete.
const REQS_PER_CLIENT: usize = 20;
/// Clients that request and never read: queue-depth eviction bait.
const SLOW: usize = 8;
/// Clients speaking garbage or tearing frames mid-prefix.
const HOSTILE: usize = 12;

const MIB: u64 = 1024 * 1024;

fn mk_server(ids: &[CgroupId]) -> ViewServer {
    let server = ViewServer::new(HostSpec::paper_testbed(), 8);
    for id in ids {
        server.register(
            *id,
            CpuBounds {
                lower: 1,
                upper: 16,
            },
            EffectiveCpuConfig::default(),
            EffectiveMemory::new(
                Bytes(64 * MIB),
                Bytes(1024 * MIB),
                Bytes::from_mib(1280),
                Bytes::from_mib(2560),
                EffectiveMemoryConfig::default(),
            ),
        );
    }
    server
}

fn test_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "arv-wire-reactor-{}-{tag}.sock",
        std::process::id()
    ))
}

fn read_req(id: u32, key: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5 + key.len());
    payload.push(KIND_READ);
    payload.extend_from_slice(&id.to_le_bytes());
    payload.extend_from_slice(key.as_bytes());
    payload
}

#[test]
fn hundreds_of_mixed_clients_hammer_one_reactor() {
    let ids: Vec<CgroupId> = (0..8).map(CgroupId).collect();
    let view = mk_server(&ids);
    let socket = test_socket("mixed");
    let cfg = ServerConfig::builder()
        .max_connections(RACING + SLOW + HOSTILE + 32)
        .rate_burst(1_000_000)
        .rate_refill_per_sec(1_000_000.0)
        // Small queue cap + long stall clock: the slow clients must die
        // by queue depth, deterministically, not by racing a timer.
        .outbound_queue_cap(16 * 1024)
        .write_deadline(Duration::from_secs(30))
        .build()
        .expect("config");
    let wire = WireServer::spawn_with_config(view.clone(), &socket, cfg).expect("spawn");

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(RACING + SLOW + HOSTILE));
    let ok_reads = Arc::new(AtomicU64::new(0));
    let hostile_closed = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();

    // Updater: the views keep republishing while the storm runs.
    let updater = {
        let view = view.clone();
        let stop = Arc::clone(&stop);
        let ids = ids.clone();
        thread::spawn(move || {
            let mut cpus = 2u32;
            while !stop.load(Ordering::Acquire) {
                cpus = 2 + (cpus + 1) % 8;
                for id in &ids {
                    let bytes = Bytes(u64::from(cpus) * 64 * MIB);
                    view.mirror(*id, cpus, bytes, bytes);
                }
                thread::sleep(Duration::from_micros(500));
            }
        })
    };

    // Racing clients: every request must come back OK (or degraded)
    // with a plausible cpuinfo body.
    for c in 0..RACING {
        let socket = socket.clone();
        let barrier = Arc::clone(&barrier);
        let ok_reads = Arc::clone(&ok_reads);
        handles.push(thread::spawn(move || {
            let mut s = UnixStream::connect(&socket).expect("racing connect");
            barrier.wait();
            let id = (c % 8) as u32;
            let req = read_req(id, "/proc/cpuinfo");
            for _ in 0..REQS_PER_CLIENT {
                write_frame(&mut s, &req).expect("racing write");
                let resp = read_frame(&mut s, MAX_RESPONSE)
                    .expect("racing read")
                    .expect("server closed a well-behaved client");
                let parsed = parse_response(&resp)
                    .expect("parse")
                    .expect("registered container must never be NOT_FOUND");
                assert!(!parsed.shed, "racing client was shed under a huge burst");
                let body = String::from_utf8(parsed.body).expect("utf8 body");
                assert!(body.contains("processor"), "cpuinfo body lost its shape");
                ok_reads.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Slow clients: pile requests without ever reading. The reactor
    // must cut them loose (queue-depth eviction) without hurting
    // anyone else. Both outcomes of the race are fine: the write side
    // erroring out, or the pile simply ending (the eviction metric is
    // asserted below either way).
    for _ in 0..SLOW {
        let socket = socket.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            let mut s = UnixStream::connect(&socket).expect("slow connect");
            barrier.wait();
            let req = read_req(0, "/proc/cpuinfo");
            let deadline = Instant::now() + Duration::from_secs(20);
            while Instant::now() < deadline {
                if write_frame(&mut s, &req).is_err() {
                    return; // evicted: the server hung up on us
                }
            }
        }));
    }

    // Hostile clients: garbage kinds (answered NOT_FOUND, connection
    // kept), oversized prefixes and torn frames (connection dropped).
    for c in 0..HOSTILE {
        let socket = socket.clone();
        let barrier = Arc::clone(&barrier);
        let hostile_closed = Arc::clone(&hostile_closed);
        handles.push(thread::spawn(move || {
            let mut s = UnixStream::connect(&socket).expect("hostile connect");
            barrier.wait();
            match c % 3 {
                0 => {
                    // Unknown request kind: the protocol answers
                    // NOT_FOUND and keeps serving the connection.
                    write_frame(&mut s, &[0xEE, 1, 2, 3, 4, 5]).expect("garbage write");
                    let resp = read_frame(&mut s, MAX_RESPONSE)
                        .expect("garbage read")
                        .expect("garbage must still be answered");
                    assert!(
                        parse_response(&resp).expect("parse").is_none(),
                        "garbage kind must be answered NOT_FOUND"
                    );
                }
                1 => {
                    // Oversized length prefix: untrustable framing, the
                    // server must hang up.
                    s.write_all(&(50_000_000u32).to_le_bytes()).expect("w");
                    s.write_all(&[0u8; 32]).expect("w");
                    if read_frame(&mut s, MAX_RESPONSE)
                        .map(|f| f.is_none())
                        .unwrap_or(true)
                    {
                        hostile_closed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    // Torn frame: half a prefix, then hang up. The
                    // server counts the torn framing and moves on.
                    s.write_all(&[7u8, 0]).expect("w");
                    drop(s);
                    hostile_closed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    for h in handles {
        h.join().expect("client thread panicked");
    }
    stop.store(true, Ordering::Release);
    updater.join().expect("updater");

    // Every well-behaved request was answered.
    assert_eq!(
        ok_reads.load(Ordering::Relaxed),
        (RACING * REQS_PER_CLIENT) as u64
    );
    assert!(hostile_closed.load(Ordering::Relaxed) >= (HOSTILE / 3) as u64);

    // The storm is visible in the daemon's own accounting.
    let m = view.metrics();
    assert!(
        m.wire_requests >= (RACING * REQS_PER_CLIENT) as u64,
        "wire_requests {} too low",
        m.wire_requests
    );
    assert!(m.wire_rejected >= 1, "torn/oversized framing never counted");
    assert!(m.wire_errors >= 1, "garbage kind never counted");
    assert!(
        m.conns_evicted_slow >= 1,
        "no slow client was evicted (backlog {})",
        m.conns_evicted_backlog
    );
    assert_eq!(
        m.conns_evicted_backlog, m.conns_evicted_slow,
        "with a 30s stall clock every eviction here is queue-depth"
    );

    // After the storm: a fresh client gets clean service.
    let mut s = UnixStream::connect(&socket).expect("fresh connect");
    write_frame(&mut s, &read_req(3, "/proc/cpuinfo")).expect("fresh write");
    let resp = read_frame(&mut s, MAX_RESPONSE)
        .expect("fresh read")
        .expect("fresh client must be served");
    let parsed = parse_response(&resp).expect("parse").expect("resp");
    assert!(!parsed.shed, "fresh client must get full service");

    wire.shutdown();
}

#[test]
fn shutdown_stays_prompt_with_hundreds_connected() {
    const PARKED: usize = 300;
    const FLOODERS: usize = 4;

    let ids = [CgroupId(1)];
    let view = mk_server(&ids);
    let socket = test_socket("prompt");
    let cfg = ServerConfig::builder()
        .max_connections(PARKED + FLOODERS + 8)
        .rate_burst(1_000_000)
        .rate_refill_per_sec(1_000_000.0)
        .build()
        .expect("config");
    let wire = WireServer::spawn_with_config(view, &socket, cfg).expect("spawn");

    // Park hundreds of idle connections on the reactor.
    let parked: Vec<UnixStream> = (0..PARKED)
        .map(|_| UnixStream::connect(&socket).expect("park"))
        .collect();

    // And keep a few connections busy with steady request traffic.
    let stop_flood = Arc::new(AtomicBool::new(false));
    let flooders: Vec<_> = (0..FLOODERS)
        .map(|_| {
            let socket = socket.clone();
            let stop_flood = Arc::clone(&stop_flood);
            thread::spawn(move || {
                let Ok(mut s) = UnixStream::connect(&socket) else {
                    return;
                };
                let req = read_req(1, "/proc/cpuinfo");
                while !stop_flood.load(Ordering::Relaxed) {
                    if write_frame(&mut s, &req).is_err() {
                        break;
                    }
                    if read_frame(&mut s, MAX_RESPONSE).is_err() {
                        break;
                    }
                }
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(50));
    let started = Instant::now();
    wire.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown took {elapsed:?} with {PARKED} parked + {FLOODERS} flooding clients"
    );

    stop_flood.store(true, Ordering::Release);
    for f in flooders {
        let _ = f.join();
    }
    drop(parked);
}
