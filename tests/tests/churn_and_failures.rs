//! Failure injection and mid-run reconfiguration: the paths a production
//! deployment exercises that no figure in the paper isolates.

use arv_cgroups::Bytes;
use arv_container::{ContainerSpec, SimHost};
use arv_experiments::driver::Fleet;
use arv_jvm::{HeapPolicy, JavaProfile, Jvm, JvmConfig, JvmOutcome};
use arv_sim_core::SimDuration;
use arv_workloads::dacapo_profile;

fn quick(name: &str, secs: u64) -> JavaProfile {
    let mut p = dacapo_profile(name);
    p.total_work = SimDuration::from_secs(secs);
    p
}

#[test]
fn docker_update_shrinks_the_view_and_the_gc_team() {
    let mut host = SimHost::paper_testbed();
    let id = host.launch(&ContainerSpec::new("c", 20).cpus(16.0));
    let profile = quick("lusearch", 60);
    let mut fleet = Fleet::new();
    let i = fleet.push_jvm(Jvm::launch(
        &mut host,
        id,
        JvmConfig::adaptive().with_heap_policy(HeapPolicy::FixedMax(profile.paper_heap_size())),
        profile,
    ));

    // First stretch: generous quota.
    let start = host.now();
    while host.now().since(start) < SimDuration::from_secs(1) && fleet.jvm(i).is_running() {
        fleet.step(&mut host);
    }
    let before = fleet.jvm(i).metrics().gc_thread_trace.clone();
    assert!(
        before.iter().any(|w| *w > 4),
        "generous quota should allow wide GC teams: {before:?}"
    );

    // `docker update --cpus=2` mid-run.
    host.update_limits(id, &ContainerSpec::new("c", 20).cpus(2.0));
    while fleet.jvm(i).is_running() {
        fleet.step(&mut host);
        assert!(
            host.now().since(start) < SimDuration::from_secs(10_000),
            "did not finish"
        );
    }
    assert_eq!(fleet.jvm(i).outcome(), JvmOutcome::Completed);
    let after = &fleet.jvm(i).metrics().gc_thread_trace[before.len()..];
    assert!(
        !after.is_empty(),
        "collections must continue after the update"
    );
    // Allow the collection in flight at update time to finish wide; all
    // subsequent teams must respect the new 2-CPU bound.
    assert!(
        after[after.len().min(2) - 1..].iter().all(|w| *w <= 2),
        "post-update GC teams must respect the 2-CPU quota: {after:?}"
    );
}

#[test]
fn docker_update_on_memory_reanchors_the_elastic_heap() {
    let mut host = SimHost::paper_testbed();
    let id = host.launch(&ContainerSpec::new("c", 20).memory(Bytes::from_gib(4)));
    let profile = quick("xalan", 60);
    let mut cfg = JvmConfig::adaptive().with_heap_policy(HeapPolicy::Elastic);
    // Poll often enough that the tightened limit lands mid-run.
    cfg.elastic_poll = SimDuration::from_millis(500);
    let mut fleet = Fleet::new();
    let i = fleet.push_jvm(Jvm::launch(&mut host, id, cfg, profile));
    let start = host.now();
    while host.now().since(start) < SimDuration::from_secs(1) && fleet.jvm(i).is_running() {
        fleet.step(&mut host);
    }
    assert!(fleet.jvm(i).is_running(), "update must land mid-run");
    // Tighten the memory limit mid-run; the view, and then VirtualMax,
    // must come down and the run must still complete without swap.
    host.update_limits(id, &ContainerSpec::new("c", 20).memory(Bytes::from_gib(1)));
    while fleet.jvm(i).is_running() {
        fleet.step(&mut host);
        assert!(host.now().since(start) < SimDuration::from_secs(10_000));
    }
    assert_eq!(fleet.jvm(i).outcome(), JvmOutcome::Completed);
    assert!(fleet.jvm(i).heap().limits().virtual_max <= Bytes::from_gib(1));
    // Tightening the hard limit below the committed heap swaps the excess
    // out at the moment of the update (as the kernel does); the elastic
    // shrink then releases it all — nothing stays swapped.
    assert_eq!(host.mem().swapped(id), Bytes::ZERO);
    assert!(host.memory_usage(id) <= Bytes::from_gib(1));
}

#[test]
fn neighbour_termination_mid_run_frees_capacity() {
    let mut host = SimHost::paper_testbed();
    let a = host.launch(&ContainerSpec::new("a", 20));
    let b = host.launch(&ContainerSpec::new("b", 20));
    let profile = quick("sunflow", 6);
    let mut fleet = Fleet::new();
    let i = fleet.push_jvm(Jvm::launch(
        &mut host,
        a,
        JvmConfig::adaptive().with_heap_policy(HeapPolicy::FixedMax(profile.paper_heap_size())),
        profile,
    ));
    // b holds memory and runs threads, then dies.
    assert!(host.charge(b, Bytes::from_gib(32)).is_ok());
    let start = host.now();
    while host.now().since(start) < SimDuration::from_secs(1) {
        let d = host.demand(b, 20);
        let out = host.step(&[d]);
        // Manually advance the JVM alongside the hogging neighbour.
        let granted = out.alloc.granted_to(a);
        // (Fleet would do this; here we drive by hand to interleave.)
        let _ = granted;
    }
    host.terminate(b);
    // Everything b held is back; only a's heap remains charged.
    assert_eq!(
        host.free_memory(),
        host.total_memory() - host.memory_usage(a)
    );
    while fleet.jvm(i).is_running() {
        fleet.step(&mut host);
        assert!(host.now().since(start) < SimDuration::from_secs(10_000));
    }
    assert_eq!(fleet.jvm(i).outcome(), JvmOutcome::Completed);
}

#[test]
fn oom_killed_jvm_leaves_neighbours_unharmed() {
    // Tiny host, no headroom: a greedy JVM gets killed; a frugal one
    // colocated with it finishes untouched.
    let mut host = SimHost::new(8, Bytes::from_mib(900));
    let greedy_c = host.launch(&ContainerSpec::new("greedy", 8));
    let frugal_c = host.launch(&ContainerSpec::new("frugal", 8));

    let mut greedy_profile = JavaProfile::test_profile();
    greedy_profile.alloc_rate = Bytes::from_gib(2);
    greedy_profile.live_growth = 0.6;
    greedy_profile.live_cap = Bytes::from_gib(4);
    greedy_profile.min_heap = Bytes::from_gib(5);
    greedy_profile.total_work = SimDuration::from_secs(60);

    let mut fleet = Fleet::new();
    let gi = fleet.push_jvm(Jvm::launch(
        &mut host,
        greedy_c,
        JvmConfig::vanilla_jdk8().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_gib(8))),
        greedy_profile,
    ));
    let fi = fleet.push_jvm(Jvm::launch(
        &mut host,
        frugal_c,
        JvmConfig::adaptive().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(240))),
        JavaProfile::test_profile(),
    ));
    fleet.run(&mut host, SimDuration::from_secs(100_000));

    assert_eq!(fleet.jvm(gi).outcome(), JvmOutcome::OomKilled);
    assert_eq!(fleet.jvm(fi).outcome(), JvmOutcome::Completed);
    // The kill released everything the greedy JVM had charged.
    assert_eq!(host.memory_usage(greedy_c), Bytes::ZERO);
}

#[test]
fn launch_into_a_full_host_starts_at_the_fair_share() {
    let mut host = SimHost::paper_testbed();
    let ids: Vec<_> = (0..4)
        .map(|i| host.launch(&ContainerSpec::new(format!("c{i}"), 20)))
        .collect();
    for _ in 0..40 {
        let demands: Vec<_> = ids.iter().map(|id| host.demand(*id, 20)).collect();
        host.step(&demands);
    }
    // A fifth container arrives on the saturated host: its view must be
    // born at the (new) five-way fair share, not the machine size.
    let late = host.launch(&ContainerSpec::new("late", 20));
    assert_eq!(host.effective_cpu(late), 4);
    // The incumbents' lower bounds moved too.
    for id in &ids {
        assert_eq!(host.monitor().namespace(*id).unwrap().cpu_bounds().lower, 4);
    }
}

#[test]
fn jvm9_is_blind_to_mid_run_updates_but_adaptive_is_not() {
    // The crux of §4.1: "the JVM cannot launch more GC threads if the
    // container's CPU limit is lifted and more CPUs are available."
    let run = |cfg: JvmConfig| -> Vec<u32> {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20).cpus(2.0));
        let profile = quick("lusearch", 6);
        let mut fleet = Fleet::new();
        let i = fleet.push_jvm(Jvm::launch(
            &mut host,
            id,
            cfg.with_heap_policy(HeapPolicy::FixedMax(profile.paper_heap_size())),
            profile,
        ));
        let start = host.now();
        while host.now().since(start) < SimDuration::from_secs(1) && fleet.jvm(i).is_running() {
            fleet.step(&mut host);
        }
        // The administrator lifts the limit.
        host.update_limits(id, &ContainerSpec::new("c", 20).cpus(16.0));
        while fleet.jvm(i).is_running() {
            fleet.step(&mut host);
            assert!(host.now().since(start) < SimDuration::from_secs(10_000));
        }
        fleet.jvm(i).metrics().gc_thread_trace.clone()
    };
    let jvm9 = run(JvmConfig::jdk9());
    let adaptive = run(JvmConfig::adaptive());
    // JDK 9 snapshotted a 2-CPU limit at launch and never revisits it.
    assert!(jvm9.iter().all(|w| *w <= 2), "{jvm9:?}");
    // The adaptive JVM expands once the limit is lifted.
    assert!(
        adaptive.iter().any(|w| *w > 2),
        "adaptive should exploit the lifted limit: {adaptive:?}"
    );
}
