//! End-to-end tests of the two case studies — dynamic parallelism and
//! the elastic heap — running through the full stack.

use arv_cgroups::Bytes;
use arv_container::{ContainerSpec, SimHost};
use arv_experiments::driver::Fleet;
use arv_jvm::{HeapPolicy, JavaProfile, Jvm, JvmConfig, JvmOutcome};
use arv_omp::{OmpProfile, OmpRuntime, ThreadStrategy};
use arv_sim_core::SimDuration;
use arv_workloads::{dacapo_profile, npb_profile};

fn quick(mut p: JavaProfile) -> JavaProfile {
    p.total_work = SimDuration::from_secs(4);
    p
}

#[test]
fn adaptive_jvm_beats_vanilla_in_shared_cluster() {
    let run = |cfg: JvmConfig| -> f64 {
        let mut host = SimHost::paper_testbed();
        let mut fleet = Fleet::new();
        let mut idxs = Vec::new();
        for i in 0..5 {
            let id = host.launch(&ContainerSpec::new(format!("c{i}"), 20).cpus(10.0));
            let profile = quick(dacapo_profile("xalan"));
            let cfg = cfg
                .clone()
                .with_heap_policy(HeapPolicy::FixedMax(profile.paper_heap_size()));
            idxs.push(fleet.push_jvm(Jvm::launch(&mut host, id, cfg, profile)));
        }
        assert!(fleet.run(&mut host, SimDuration::from_secs(4_000)));
        idxs.iter()
            .map(|i| fleet.jvm(*i).metrics().exec_wall.as_secs_f64())
            .sum::<f64>()
            / idxs.len() as f64
    };
    let vanilla = run(JvmConfig::vanilla_jdk8());
    let adaptive = run(JvmConfig::adaptive());
    assert!(
        adaptive < vanilla * 0.95,
        "adaptive {adaptive:.2}s must beat vanilla {vanilla:.2}s"
    );
}

#[test]
fn adaptive_gc_workers_track_the_view_exactly() {
    let mut host = SimHost::paper_testbed();
    let ids: Vec<_> = (0..5)
        .map(|i| host.launch(&ContainerSpec::new(format!("c{i}"), 20).cpus(10.0)))
        .collect();
    let mut fleet = Fleet::new();
    let profile = quick(dacapo_profile("lusearch"));
    let idxs: Vec<_> = ids
        .iter()
        .map(|id| {
            let cfg = JvmConfig::adaptive()
                .with_heap_policy(HeapPolicy::FixedMax(profile.paper_heap_size()));
            fleet.push_jvm(Jvm::launch(&mut host, *id, cfg, profile.clone()))
        })
        .collect();
    assert!(fleet.run(&mut host, SimDuration::from_secs(4_000)));
    for i in idxs {
        let trace = &fleet.jvm(i).metrics().gc_thread_trace;
        assert!(!trace.is_empty());
        // Under 5-way saturation, every post-warmup collection must use at
        // most the 4-CPU effective share.
        let tail = &trace[trace.len() / 3..];
        assert!(
            tail.iter().all(|w| (1..=4).contains(w)),
            "workers outside the effective share: {tail:?}"
        );
    }
}

#[test]
fn elastic_heap_survives_what_kills_the_static_heap() {
    // One container, 512 MB hard limit, benchmark whose live set fits but
    // whose unconstrained heap would not.
    let scenario = |cfg: JvmConfig| -> (JvmOutcome, Bytes) {
        let mut host = SimHost::new(20, Bytes::from_gib(8));
        let id = host.launch(&ContainerSpec::new("c", 20).memory(Bytes::from_mib(512)));
        let mut profile = quick(dacapo_profile("lusearch"));
        profile.total_work = SimDuration::from_secs(2);
        let mut fleet = Fleet::new();
        let i = fleet.push_jvm(Jvm::launch(&mut host, id, cfg, profile));
        fleet.run(&mut host, SimDuration::from_secs(4_000));
        (fleet.jvm(i).outcome(), host.mem().swap_out_total())
    };
    let (vanilla_outcome, vanilla_swap) = scenario(JvmConfig::vanilla_jdk8());
    let (elastic_outcome, elastic_swap) =
        scenario(JvmConfig::adaptive().with_heap_policy(HeapPolicy::Elastic));
    assert_eq!(vanilla_outcome, JvmOutcome::Completed);
    assert!(
        vanilla_swap > Bytes::ZERO,
        "vanilla must overcommit and swap"
    );
    assert_eq!(elastic_outcome, JvmOutcome::Completed);
    assert_eq!(elastic_swap, Bytes::ZERO, "elastic must never swap");
}

#[test]
fn elastic_heap_virtual_max_never_exceeds_the_view() {
    let mut host = SimHost::paper_testbed();
    let id = host.launch(
        &ContainerSpec::new("c", 20)
            .memory(Bytes::from_gib(2))
            .memory_reservation(Bytes::from_gib(1)),
    );
    let mut profile = quick(dacapo_profile("xalan"));
    profile.total_work = SimDuration::from_secs(3);
    let mut fleet = Fleet::new();
    let i = fleet.push_jvm(Jvm::launch(
        &mut host,
        id,
        JvmConfig::adaptive().with_heap_policy(HeapPolicy::Elastic),
        profile,
    ));
    // Step manually and check the invariant at every elastic poll.
    let deadline = SimDuration::from_secs(4_000);
    let start = host.now();
    while !fleet.primaries_done() && host.now().since(start) < deadline {
        fleet.step(&mut host);
        let vmax = fleet.jvm(i).heap().limits().virtual_max;
        assert!(
            vmax <= Bytes::from_gib(2),
            "VirtualMax {vmax} above the hard limit"
        );
    }
    assert_eq!(fleet.jvm(i).outcome(), JvmOutcome::Completed);
}

#[test]
fn openmp_strategies_rank_correctly_in_quota_container() {
    // Figure 10(b) in miniature: static(20) < adaptive in a 4-CPU quota.
    let run = |strategy: ThreadStrategy| -> f64 {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("omp", 20).cpus(4.0));
        let mut profile = npb_profile("cg");
        profile.regions = 20;
        let mut fleet = Fleet::new();
        let i = fleet.push_omp(OmpRuntime::launch(id, strategy, profile));
        assert!(fleet.run(&mut host, SimDuration::from_secs(4_000)));
        fleet.omp(i).metrics().exec_wall.as_secs_f64()
    };
    let over = run(ThreadStrategy::Static(20));
    let adaptive = run(ThreadStrategy::Adaptive);
    assert!(
        adaptive < over,
        "adaptive {adaptive:.2}s must beat a 20-thread team {over:.2}s"
    );
}

#[test]
fn openmp_adaptive_team_matches_view() {
    let mut host = SimHost::paper_testbed();
    let id = host.launch(&ContainerSpec::new("omp", 20).cpus(4.0));
    let mut profile = OmpProfile::test_profile();
    profile.regions = 10;
    let mut fleet = Fleet::new();
    let i = fleet.push_omp(OmpRuntime::launch(id, ThreadStrategy::Adaptive, profile));
    assert!(fleet.run(&mut host, SimDuration::from_secs(4_000)));
    let trace = &fleet.omp(i).metrics().thread_trace;
    // Quota of 4 CPUs: the view (and so every team) is pinned at ≤ 4.
    assert!(trace.iter().all(|t| (1..=4).contains(t)), "{trace:?}");
}

#[test]
fn mixed_jvm_and_openmp_share_one_host() {
    let mut host = SimHost::paper_testbed();
    let j = host.launch(&ContainerSpec::new("jvm", 20));
    let o = host.launch(&ContainerSpec::new("omp", 20));
    let mut fleet = Fleet::new();
    let profile = quick(dacapo_profile("sunflow"));
    let ji = fleet.push_jvm(Jvm::launch(
        &mut host,
        j,
        JvmConfig::adaptive().with_heap_policy(HeapPolicy::FixedMax(profile.paper_heap_size())),
        profile,
    ));
    let mut omp_profile = OmpProfile::test_profile();
    omp_profile.regions = 10;
    let oi = fleet.push_omp(OmpRuntime::launch(o, ThreadStrategy::Adaptive, omp_profile));
    assert!(fleet.run(&mut host, SimDuration::from_secs(4_000)));
    assert_eq!(fleet.jvm(ji).outcome(), JvmOutcome::Completed);
    assert!(!fleet.omp(oi).is_running());
}
