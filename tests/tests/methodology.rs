//! The paper's §5.1 methodology, reproduced: "Each result was the average
//! of 10 runs." Runs differ through seeded profile jitter; conclusions
//! must hold for every seed, not just the mean.

use arv_container::{ContainerSpec, SimHost};
use arv_experiments::driver::Fleet;
use arv_jvm::{HeapPolicy, Jvm, JvmConfig};
use arv_omp::{OmpRuntime, ThreadStrategy};
use arv_sim_core::{stats, SimDuration, SimRng};
use arv_workloads::{dacapo_profile, npb_profile};

/// Mean exec seconds of 5 colocated xalan copies under `cfg`, with ±3%
/// seeded jitter on the profile.
fn fig6_style_run(cfg: &JvmConfig, seed: u64) -> f64 {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut base = dacapo_profile("xalan");
    base.total_work = SimDuration::from_secs(6);
    let mut host = SimHost::paper_testbed();
    let mut fleet = Fleet::new();
    let idxs: Vec<_> = (0..5)
        .map(|i| {
            let id = host.launch(
                &ContainerSpec::new(format!("c{i}"), 20)
                    .cpus(10.0)
                    .cpu_shares(1024),
            );
            let profile = base.jittered(&mut rng, 0.03);
            let cfg = cfg
                .clone()
                .with_heap_policy(HeapPolicy::FixedMax(profile.paper_heap_size()));
            fleet.push_jvm(Jvm::launch(&mut host, id, cfg, profile))
        })
        .collect();
    assert!(fleet.run(&mut host, SimDuration::from_secs(100_000)));
    idxs.iter()
        .map(|i| fleet.jvm(*i).metrics().exec_wall.as_secs_f64())
        .sum::<f64>()
        / idxs.len() as f64
}

#[test]
fn adaptive_beats_vanilla_across_ten_seeded_runs() {
    let mut vanilla_runs = Vec::new();
    let mut adaptive_runs = Vec::new();
    for seed in 0..10 {
        let v = fig6_style_run(&JvmConfig::vanilla_jdk8(), seed);
        let a = fig6_style_run(&JvmConfig::adaptive(), seed);
        assert!(
            a < v,
            "seed {seed}: adaptive {a:.2}s must beat vanilla {v:.2}s in every run"
        );
        vanilla_runs.push(v);
        adaptive_runs.push(a);
    }
    // Averages show the gain; variance across runs stays small (the
    // jitter is ±3%, so the spread must be of the same order).
    let v_mean = stats::mean(&vanilla_runs);
    let a_mean = stats::mean(&adaptive_runs);
    assert!(a_mean < v_mean * 0.95);
    assert!(stats::stddev(&vanilla_runs) / v_mean < 0.05);
    assert!(stats::stddev(&adaptive_runs) / a_mean < 0.05);
}

#[test]
fn openmp_strategy_ranking_is_seed_stable() {
    let run = |strategy: ThreadStrategy, seed: u64| -> f64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut base = npb_profile("cg");
        base.regions = 20;
        let profile = base.jittered(&mut rng, 0.05);
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("omp", 20).cpus(4.0));
        let mut fleet = Fleet::new();
        let i = fleet.push_omp(OmpRuntime::launch(id, strategy, profile));
        assert!(fleet.run(&mut host, SimDuration::from_secs(100_000)));
        fleet.omp(i).metrics().exec_wall.as_secs_f64()
    };
    for seed in 0..10 {
        let over = run(ThreadStrategy::Static(20), seed);
        let adaptive = run(ThreadStrategy::Adaptive, seed);
        assert!(
            adaptive < over,
            "seed {seed}: adaptive {adaptive:.2}s vs static-20 {over:.2}s"
        );
    }
}

#[test]
fn identical_seeds_reproduce_identical_results() {
    let a = fig6_style_run(&JvmConfig::adaptive(), 42);
    let b = fig6_style_run(&JvmConfig::adaptive(), 42);
    assert_eq!(a, b, "same seed must be bit-for-bit reproducible");
    let c = fig6_style_run(&JvmConfig::adaptive(), 43);
    assert_ne!(a, c, "different seeds must differ");
}
