//! End-to-end tests of the adaptive resource view: cgroups → scheduler →
//! `ns_monitor` → virtual sysfs, on the full simulated host.

use arv_cgroups::{Bytes, CpuSet};
use arv_container::{ContainerSpec, SimHost};
use arv_resview::Sysconf;
use arv_sim_core::SimDuration;

/// Drive `host` for `periods` scheduling periods with the given per-id
/// runnable counts.
fn drive(host: &mut SimHost, load: &[(arv_cgroups::CgroupId, u32)], periods: u32) {
    for _ in 0..periods {
        let demands: Vec<_> = load
            .iter()
            .filter(|(_, r)| *r > 0)
            .map(|(id, r)| host.demand(*id, *r))
            .collect();
        host.step(&demands);
    }
}

#[test]
fn paper_running_example_five_containers_ten_core_limit() {
    // The §2.2 example end to end: 5 containers, 20 cores, 10-core limits,
    // equal shares, all saturated → each container's view reads 4 CPUs
    // while the host keeps reading 20.
    let mut host = SimHost::paper_testbed();
    let ids: Vec<_> = (0..5)
        .map(|i| host.launch(&ContainerSpec::new(format!("c{i}"), 20).cpus(10.0)))
        .collect();
    let load: Vec<_> = ids.iter().map(|id| (*id, 20u32)).collect();
    drive(&mut host, &load, 60);

    for id in &ids {
        assert_eq!(host.sysconf(Some(*id), Sysconf::NprocessorsOnln), 4);
    }
    assert_eq!(host.sysconf(None, Sysconf::NprocessorsOnln), 20);
}

#[test]
fn view_follows_neighbour_churn_up_and_down() {
    let mut host = SimHost::paper_testbed();
    let a = host.launch(&ContainerSpec::new("a", 20).cpus(10.0));
    let b = host.launch(&ContainerSpec::new("b", 20).cpus(10.0));

    // Both saturated: fair split (lower bound is ceil(20/2) = 10 with only
    // two containers, which also equals the quota).
    drive(&mut host, &[(a, 20), (b, 20)], 60);
    assert_eq!(host.effective_cpu(a), 10);

    // Three more arrive and saturate: a's share shrinks to 4.
    let more: Vec<_> = (0..3)
        .map(|i| host.launch(&ContainerSpec::new(format!("m{i}"), 20).cpus(10.0)))
        .collect();
    let mut load = vec![(a, 20), (b, 20)];
    load.extend(more.iter().map(|id| (*id, 20u32)));
    drive(&mut host, &load, 120);
    assert_eq!(host.effective_cpu(a), 4);

    // Everyone else terminates: a expands back to its 10-core quota.
    host.terminate(b);
    for id in more {
        host.terminate(id);
    }
    drive(&mut host, &[(a, 20)], 120);
    assert_eq!(host.effective_cpu(a), 10);
}

#[test]
fn cpuset_bounds_the_view_regardless_of_slack() {
    let mut host = SimHost::paper_testbed();
    let pinned = host.launch(&ContainerSpec::new("pinned", 20).cpuset(CpuSet::range(0, 2)));
    drive(&mut host, &[(pinned, 8)], 120);
    // The host is otherwise idle, but the mask caps the view at 2.
    assert_eq!(host.effective_cpu(pinned), 2);
}

#[test]
fn memory_view_grows_to_hard_limit_without_pressure() {
    let mut host = SimHost::paper_testbed();
    let id = host.launch(
        &ContainerSpec::new("m", 20)
            .memory(Bytes::from_gib(2))
            .memory_reservation(Bytes::from_gib(1)),
    );
    assert_eq!(host.effective_memory(id), Bytes::from_gib(1));

    // Keep usage above 90% of the (growing) view.
    for _ in 0..2_000 {
        let target = host.effective_memory(id).mul_f64(0.95);
        let current = host.memory_usage(id);
        if target > current {
            assert!(host.charge(id, target - current).is_ok());
        }
        let d = host.demand(id, 4);
        host.step(&[d]);
    }
    // With 128 GB free, the view converges to the hard limit.
    assert!(host.effective_memory(id) > Bytes::from_gib(2).mul_f64(0.97));
    assert!(host.effective_memory(id) <= Bytes::from_gib(2));
}

#[test]
fn memory_view_resets_under_host_pressure() {
    let mut host = SimHost::new(20, Bytes::from_gib(8));
    let id = host.launch(
        &ContainerSpec::new("m", 20)
            .memory(Bytes::from_gib(4))
            .memory_reservation(Bytes::from_gib(1)),
    );
    let hog = host.launch(&ContainerSpec::new("hog", 20));

    // Grow the view beyond the soft limit first.
    assert!(host.charge(id, Bytes::from_mib(950)).is_ok());
    for _ in 0..200 {
        let target = host.effective_memory(id).mul_f64(0.95);
        let current = host.memory_usage(id);
        if target > current {
            let _ = host.charge(id, target - current);
        }
        let d = host.demand(id, 4);
        host.step(&[d]);
    }
    assert!(host.effective_memory(id) > Bytes::from_gib(1));

    // The hog eats the rest of the host: free memory collapses below the
    // low watermark, kswapd wakes, and the view snaps back to soft.
    let _ = host.charge(hog, Bytes::from_gib(7));
    for _ in 0..20 {
        let d = host.demand(id, 4);
        host.step(&[d]);
    }
    assert_eq!(host.effective_memory(id), Bytes::from_gib(1));
}

#[test]
fn virtual_sysfs_paths_match_views_end_to_end() {
    let mut host = SimHost::paper_testbed();
    let id = host.launch(
        &ContainerSpec::new("c", 20)
            .cpus(4.0)
            .memory(Bytes::from_gib(1))
            .memory_reservation(Bytes::from_mib(512)),
    );
    drive(&mut host, &[(id, 8)], 30);

    let fs = host.sysfs();
    let e_cpu = host.effective_cpu(id);
    assert_eq!(
        fs.read(Some(id), "/sys/devices/system/cpu/online").unwrap(),
        format!("0-{}", e_cpu - 1)
    );
    let meminfo = fs.read(Some(id), "/proc/meminfo").unwrap();
    let e_mem_kb = host.effective_memory(id).as_u64() / 1024;
    assert!(meminfo.contains(&format!("MemTotal: {e_mem_kb} kB")));

    // Host-side reads stay physical.
    assert_eq!(
        fs.read(None, "/sys/devices/system/cpu/online").unwrap(),
        "0-19"
    );
}

#[test]
fn update_timer_follows_scheduling_period() {
    // With ≤ 8 runnable tasks, the update timer fires every 24 ms: the
    // effective CPU can move at most once per period.
    let mut host = SimHost::paper_testbed();
    let a = host.launch(&ContainerSpec::new("a", 20).cpus(10.0));
    let _b = host.launch(&ContainerSpec::new("b", 20).cpus(10.0));
    let _c = host.launch(&ContainerSpec::new("c", 20).cpus(10.0));
    // Three containers: lower bound ceil(20/3) = 7; only a runs, so it can
    // climb to its 10-core quota — at most +1 per 24 ms.
    let start_cpu = host.effective_cpu(a);
    let mut last = start_cpu;
    let mut changes = Vec::new();
    for _ in 0..40 {
        let d = host.demand(a, 20);
        let out = host.step(&[d]);
        let now_cpu = host.effective_cpu(a);
        if now_cpu != last {
            changes.push((out.now, now_cpu));
            last = now_cpu;
        }
    }
    assert_eq!(last, 10, "view should reach the quota");
    for pair in changes.windows(2) {
        let dt = pair[1].0.since(pair[0].0);
        assert!(
            dt >= SimDuration::from_millis(24),
            "view moved faster than the update timer: {dt}"
        );
        assert_eq!(pair[1].1 - pair[0].1, 1, "one step per firing");
    }
}

#[test]
fn init_handoff_keeps_namespace_owned_by_container_init() {
    let mut host = SimHost::paper_testbed();
    let id = host.launch(&ContainerSpec::new("c", 20));
    let ns_owner = host.monitor().namespace(id).unwrap().owner();
    assert_eq!(Some(ns_owner), host.init_pid(id));
}
