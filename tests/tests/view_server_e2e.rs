//! End-to-end concurrency test for the `arv-viewd` daemon: several query
//! threads hammer file reads while an updater republishes views, and
//! every served image must be untorn — all numbers inside one image
//! belong to one published (cpus, bytes) pair — with per-container
//! generations observed monotonically by every reader.
//!
//! The updater maintains two invariants the readers can check from any
//! single image: `bytes = cpus × 64 MiB` and `avail = bytes / 2`. A torn
//! image (CPU count from one update, memory size from another) would
//! break them.

use arv_cgroups::{Bytes, CgroupId};
use arv_resview::effective_cpu::CpuBounds;
use arv_resview::effective_mem::{EffectiveMemory, EffectiveMemoryConfig};
use arv_resview::{EffectiveCpuConfig, Sysconf, PAGE_SIZE};
use arv_viewd::{HostSpec, ViewServer};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

const MIB: u64 = 1024 * 1024;
const STRIDE: u64 = 64 * MIB;
const MAX_CPUS: u64 = 16;

fn mk_server(ids: &[CgroupId]) -> ViewServer {
    let server = ViewServer::new(HostSpec::paper_testbed(), 8);
    for id in ids {
        server.register(
            *id,
            CpuBounds {
                lower: 1,
                upper: 16,
            },
            EffectiveCpuConfig::default(),
            EffectiveMemory::new(
                Bytes(STRIDE),
                Bytes(MAX_CPUS * STRIDE),
                Bytes::from_mib(1280),
                Bytes::from_mib(2560),
                EffectiveMemoryConfig::default(),
            ),
        );
    }
    // Establish the invariants before any reader runs: the registration
    // state itself doesn't satisfy them.
    for id in ids {
        publish(&server, *id, 1);
    }
    server
}

/// Publish the view for round `k`: `cpus` in `1..=16`, `bytes` derived
/// from it, `avail` half of that.
fn publish(server: &ViewServer, id: CgroupId, k: u64) {
    let cpus = (k % MAX_CPUS) + 1;
    let bytes = cpus * STRIDE;
    assert!(server.mirror(id, cpus as u32, Bytes(bytes), Bytes(bytes / 2)));
}

fn parse_meminfo(image: &str) -> (u64, u64) {
    let field = |name: &str| {
        let line = image
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("meminfo missing {name}: {image:?}"));
        let kb: u64 = line
            .split_whitespace()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("bad meminfo line {line:?}"));
        kb * 1024
    };
    (field("MemTotal:"), field("MemFree:"))
}

#[test]
fn concurrent_readers_never_see_torn_or_regressing_views() {
    let ids = [CgroupId(1), CgroupId(2), CgroupId(3)];
    let server = mk_server(&ids);
    const READERS: usize = 6; // two per container, ≥4 racing the updater
    const MIN_READER_ITERS: u64 = 300;

    let stop = Arc::new(AtomicBool::new(false));
    let iters: Arc<Vec<AtomicU64>> = Arc::new((0..READERS).map(|_| AtomicU64::new(0)).collect());
    let barrier = Arc::new(Barrier::new(READERS + 1));

    let mut readers = Vec::new();
    for r in 0..READERS {
        let client = server.client();
        let stop = Arc::clone(&stop);
        let iters = Arc::clone(&iters);
        let barrier = Arc::clone(&barrier);
        let id = ids[r % ids.len()];
        readers.push(thread::spawn(move || {
            barrier.wait();
            let mut last_generation = 0u64;
            while !stop.load(Ordering::Acquire) {
                // /proc/cpuinfo: stanza count is the published CPU count.
                let cpuinfo = client.read(Some(id), "/proc/cpuinfo").expect("cpuinfo");
                let cpus = cpuinfo.image.matches("processor\t:").count() as u64;
                assert!((1..=MAX_CPUS).contains(&cpus), "cpus {cpus} out of range");
                assert!(
                    cpuinfo.generation >= last_generation,
                    "generation regressed {last_generation} -> {}",
                    cpuinfo.generation
                );
                last_generation = cpuinfo.generation;

                // /proc/meminfo: both lines must come from one publish.
                let meminfo = client.read(Some(id), "/proc/meminfo").expect("meminfo");
                let (total, free) = parse_meminfo(&meminfo.image);
                assert_eq!(total % STRIDE, 0, "torn meminfo: MemTotal {total}");
                assert!((1..=MAX_CPUS).contains(&(total / STRIDE)));
                assert_eq!(free, total / 2, "torn meminfo: {total} vs free {free}");

                // Same generation ⇒ the two images describe one
                // (cpus, bytes) pair and must agree cross-file.
                if meminfo.generation == cpuinfo.generation {
                    assert_eq!(
                        total,
                        cpus * STRIDE,
                        "gen {} images disagree: {cpus} cpus vs {total} bytes",
                        cpuinfo.generation
                    );
                }
                assert!(meminfo.generation >= last_generation);
                last_generation = meminfo.generation;

                // cpu.max: quota must be an exact multiple of the period.
                let cpu_max = client.read(Some(id), "cpu.max").expect("cpu.max");
                let mut parts = cpu_max.image.split_whitespace();
                let quota: u64 = parts.next().unwrap().parse().unwrap();
                let period: u64 = parts.next().unwrap().parse().unwrap();
                assert_eq!(quota % period, 0, "torn cpu.max {:?}", cpu_max.image);
                assert!((1..=MAX_CPUS).contains(&(quota / period)));

                // sysconf pair from one snapshot each.
                let n = client.sysconf(Some(id), Sysconf::NprocessorsOnln);
                assert!((1..=MAX_CPUS).contains(&n));
                let pages = client.sysconf(Some(id), Sysconf::PhysPages);
                assert_eq!((pages * PAGE_SIZE) % STRIDE, 0);

                iters[r].fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    barrier.wait();
    // Updater: republish round-robin until every reader has done enough
    // full iterations against a moving target.
    let mut round = 0u64;
    while iters
        .iter()
        .any(|i| i.load(Ordering::Relaxed) < MIN_READER_ITERS)
    {
        round += 1;
        for id in &ids {
            publish(&server, *id, round);
        }
        if round % 16 == 0 {
            thread::yield_now();
        }
        assert!(round < 200_000_000, "readers starved");
    }
    stop.store(true, Ordering::Release);
    for handle in readers {
        handle.join().expect("reader panicked");
    }

    // Accounting closes: every query either hit the cache or rendered.
    let m = server.metrics();
    assert_eq!(m.failures, 0);
    assert_eq!(m.cache_hits + m.cache_misses, m.queries);
    assert!(m.queries >= READERS as u64 * MIN_READER_ITERS * 5);
    // The updater really raced the readers through many generations.
    let client = server.client();
    for id in &ids {
        assert!(client.generation(*id).unwrap() >= 2 * round.min(1000));
    }
}

#[test]
fn generations_are_monotone_across_unregister_and_reads() {
    let ids = [CgroupId(7)];
    let server = mk_server(&ids);
    let client = server.client();
    let g0 = client.generation(ids[0]).unwrap();
    publish(&server, ids[0], 5);
    let g1 = client.generation(ids[0]).unwrap();
    assert!(g1 > g0);
    let read = client.read(Some(ids[0]), "/proc/cpuinfo").unwrap();
    assert_eq!(read.generation, g1);
    server.unregister(ids[0]);
    // Host fallback serves generation 0 images but never fails.
    let host = client.read(Some(ids[0]), "/proc/cpuinfo").unwrap();
    assert_eq!(host.generation, 0);
    assert_eq!(server.metrics().failures, 0);
}
