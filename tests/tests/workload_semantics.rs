//! Workload-model semantics across crates: profile knobs must translate
//! into the behaviours the figures rely on.

use arv_cgroups::Bytes;
use arv_container::{ContainerSpec, SimHost};
use arv_experiments::driver::{Fleet, MemHog};
use arv_jvm::{HeapPolicy, Jvm, JvmConfig};
use arv_omp::{OmpProfile, OmpRuntime, ThreadStrategy};
use arv_sim_core::SimDuration;
use arv_workloads::{dacapo_profile, specjvm_profile, CpuHog};

#[test]
fn allocation_rate_drives_gc_count() {
    // Twice the allocation rate must collect roughly twice as often under
    // the same fixed heap.
    let run = |alloc_mib: u64| -> u32 {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        let mut profile = dacapo_profile("sunflow");
        profile.total_work = SimDuration::from_secs(6);
        profile.alloc_rate = Bytes::from_mib(alloc_mib);
        let mut fleet = Fleet::new();
        let i = fleet.push_jvm(Jvm::launch(
            &mut host,
            id,
            JvmConfig::vanilla_jdk8().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(480))),
            profile,
        ));
        assert!(fleet.run(&mut host, SimDuration::from_secs(100_000)));
        fleet.jvm(i).metrics().gc_count()
    };
    let slow = run(250);
    let fast = run(500);
    let ratio = f64::from(fast) / f64::from(slow);
    assert!(
        (1.5..=2.6).contains(&ratio),
        "2x allocation rate gave {slow} → {fast} collections ({ratio:.2}x)"
    );
}

#[test]
fn mutator_count_bounds_cpu_consumption() {
    // A 2-mutator benchmark on an idle 20-core host cannot run faster
    // than 2 CPUs' worth of progress.
    let mut host = SimHost::paper_testbed();
    let id = host.launch(&ContainerSpec::new("c", 20));
    let mut profile = dacapo_profile("jython");
    profile.total_work = SimDuration::from_secs(8);
    profile.mutators = 2;
    let mut fleet = Fleet::new();
    let i = fleet.push_jvm(Jvm::launch(
        &mut host,
        id,
        JvmConfig::vanilla_jdk8().with_heap_policy(HeapPolicy::FixedMax(Bytes::from_mib(330))),
        profile,
    ));
    assert!(fleet.run(&mut host, SimDuration::from_secs(100_000)));
    let exec = fleet.jvm(i).metrics().exec_wall.as_secs_f64();
    assert!(
        exec >= 8.0 / 2.0,
        "8 CPU-s over 2 mutators needs ≥4 s, got {exec:.2}"
    );
}

#[test]
fn specjvm_profiles_rank_by_gc_pressure() {
    // mpegaudio (GC-light) must spend a far smaller GC fraction than
    // derby (allocation-heavy) under identical conditions.
    let run = |name: &str| -> f64 {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("c", 20));
        let mut profile = specjvm_profile(name);
        profile.total_work = SimDuration::from_secs(6);
        let mut fleet = Fleet::new();
        let i = fleet.push_jvm(Jvm::launch(
            &mut host,
            id,
            JvmConfig::vanilla_jdk8()
                .with_heap_policy(HeapPolicy::FixedMax(profile.paper_heap_size())),
            profile,
        ));
        assert!(fleet.run(&mut host, SimDuration::from_secs(100_000)));
        let m = fleet.jvm(i).metrics();
        m.gc_wall.as_secs_f64() / m.exec_wall.as_secs_f64()
    };
    let mpeg = run("mpegaudio");
    let derby = run("derby");
    assert!(
        derby > mpeg * 3.0,
        "derby GC fraction {derby:.3} vs mpegaudio {mpeg:.3}"
    );
}

#[test]
fn omp_sync_cost_penalizes_large_teams_on_small_regions() {
    // Tiny regions with heavy per-thread barriers: a 20-thread team on 20
    // free CPUs can lose to 4 threads despite the extra parallelism.
    let run = |team: u32| -> f64 {
        let mut host = SimHost::paper_testbed();
        let id = host.launch(&ContainerSpec::new("omp", 20));
        let profile = OmpProfile {
            name: "tiny".into(),
            regions: 400,
            work_per_region: SimDuration::from_micros(2_000),
            serial_frac: 0.05,
            sync_per_thread: SimDuration::from_micros(500),
        };
        let mut fleet = Fleet::new();
        let i = fleet.push_omp(OmpRuntime::launch(
            id,
            ThreadStrategy::Static(team),
            profile,
        ));
        assert!(fleet.run(&mut host, SimDuration::from_secs(100_000)));
        fleet.omp(i).metrics().exec_wall.as_secs_f64()
    };
    let small = run(4);
    let large = run(20);
    assert!(
        large > small,
        "20-thread barriers ({large:.3}s) should lose to 4 threads ({small:.3}s) on 2 ms regions"
    );
}

#[test]
fn cpu_hog_wall_scales_with_contention() {
    // The same hog takes ~2x the wall time when a same-share twin runs.
    let run = |twins: u32| -> f64 {
        let mut host = SimHost::paper_testbed();
        let ids: Vec<_> = (0..twins)
            .map(|i| host.launch(&ContainerSpec::new(format!("hog{i}"), 20)))
            .collect();
        let mut hogs: Vec<CpuHog> = ids
            .iter()
            .map(|id| CpuHog::new(*id, 20, SimDuration::from_secs(40)))
            .collect();
        while hogs[0].is_running() {
            let demands: Vec<_> = hogs
                .iter()
                .filter(|h| h.is_running())
                .map(|h| host.demand(h.id(), h.runnable()))
                .collect();
            let out = host.step(&demands);
            for h in hogs.iter_mut() {
                h.on_period(out.alloc.granted_to(h.id()), out.period);
            }
        }
        hogs[0].wall().as_secs_f64()
    };
    // 40 CPU-s over 20 free cores ≈ 2 s solo; ~4 s against a twin.
    let solo = run(1);
    let shared = run(2);
    assert!((1.8..=2.4).contains(&solo), "solo hog wall {solo:.2}s");
    assert!(
        (shared / solo - 2.0).abs() < 0.2,
        "twin contention should double the wall: {solo:.2}s → {shared:.2}s"
    );
}

#[test]
fn mem_hog_stops_at_host_refusal_and_holds() {
    // On a tiny host the hog cannot reach its target; it must hold what it
    // got instead of erroring or spinning.
    let mut host = SimHost::new(4, Bytes::from_mib(256));
    let id = host.launch(&ContainerSpec::new("hog", 4));
    let mut fleet = Fleet::new();
    fleet.push_mem_hog(MemHog::new(id, Bytes::from_gib(1), Bytes::from_gib(4)));
    // MemHogs are background workloads: fleet.run returns immediately;
    // drive steps manually until the hog stalls.
    for _ in 0..2_000 {
        fleet.step(&mut host);
    }
    let held = host.memory_usage(id);
    assert!(held > Bytes::ZERO);
    assert!(held <= Bytes::from_mib(256));
    // Stable: further steps change nothing.
    let before = held;
    for _ in 0..50 {
        fleet.step(&mut host);
    }
    assert_eq!(host.memory_usage(id), before);
}
