//! Fleet failover end-to-end: a replicated controller pair on real Unix
//! sockets, the primary killed mid-stream.
//!
//! Four [`arv_container::SimHost`]s ship deltas through
//! [`arv_fleet::FleetFailoverClient`]s configured with both controller
//! sockets. The primary streams accepted records to the hot standby over
//! REPL (also on the real wire) while both contend on one shared lease.
//! Mid-storm the primary's server is killed; peripheries walk to the
//! standby, bounce off `not_leader` ACKs until the lease expires, and
//! converge back to Fresh on the promoted leader — whose totals must
//! equal per-host ground truth exactly. Racing rollup readers hammer
//! both sockets throughout: every rollup they accept must carry a
//! monotone non-decreasing controller epoch (stale-epoch rollups are
//! fenced, exactly like periphery ACK fencing) and must never be torn.
//!
//! The standby's observability plane is armed throughout: after the
//! failover the test scrapes the Prometheus exposition and retrieves
//! the promotion's flight dump over the same wire (`QUERY_STATS` /
//! `QUERY_FLIGHT`), proving the black box survives a real crash and is
//! readable by a plain socket client.

use arv_container::{ContainerSpec, SimHost};
use arv_fleet::{
    decode_frame, encode_query, AckDisposition, FailoverPolicy, FleetClient, FleetController,
    FleetFailoverClient, FleetPolicy, Frame, Periphery, Query, Rollup, SharedLease, QUERY_CLUSTER,
    QUERY_FLIGHT, QUERY_STATS,
};
use arv_persist::{FaultyStore, StoreFaults};
use arv_telemetry::{FlightDump, FlightRecorder, FlightTrigger, Tracer};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const HOSTS: u32 = 4;
const CONTAINERS_PER_HOST: u32 = 3;
const ROUNDS: u32 = 24;
const KILL_ROUND: u32 = 8;
const LEASE_TTL: u64 = 3;

fn sock_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("arv-fleet-failover-{}-{name}", std::process::id()));
    p
}

/// One reader's life: accepted-rollup count, fenced-rollup count, and
/// the highest controller epoch it accepted.
fn run_reader(paths: [PathBuf; 2], seed: u64, stop: &AtomicBool) -> (u64, u64, u64) {
    let mut client = FleetFailoverClient::new(
        paths,
        FailoverPolicy {
            jitter_seed: seed,
            ..FailoverPolicy::fast_test()
        },
    );
    let query = encode_query(&Query {
        kind: QUERY_CLUSTER,
        arg: 0,
    });
    let (mut accepted, mut fenced, mut max_epoch) = (0u64, 0u64, 0u64);
    while !stop.load(Ordering::Acquire) {
        // Mid-failover both sockets can be cold; an exhausted request is
        // the reader's partition, not a test failure.
        let Ok(resp) = client.request(&query) else {
            continue;
        };
        let Some(Frame::Rollup(frame)) = decode_frame(&resp) else {
            continue;
        };
        // Reader-side fencing: a rollup stamped with a lower epoch than
        // one already seen is stale output from a deposed controller.
        if frame.ctl_epoch < max_epoch {
            fenced += 1;
            client.advance_controller();
            continue;
        }
        max_epoch = frame.ctl_epoch;
        let Rollup::Cluster { rollup, .. } = frame.body else {
            panic!("cluster query answered with a non-cluster rollup");
        };
        // Torn-rollup checks: these hold on every answer or the
        // controller published a half-applied aggregate.
        assert!(rollup.hosts <= HOSTS, "rollup invented hosts");
        assert!(
            rollup.containers <= u64::from(HOSTS) * u64::from(CONTAINERS_PER_HOST),
            "rollup invented containers"
        );
        assert!(rollup.partitioned <= rollup.hosts, "torn partition count");
        assert!(rollup.avail <= rollup.mem, "available exceeds total memory");
        accepted += 1;
    }
    (accepted, fenced, max_epoch)
}

#[test]
fn fleet_failover_over_the_wire() {
    let lease = SharedLease::new();
    let primary = Arc::new(FleetController::new(8, FleetPolicy::default()));
    primary.attach_lease(lease.clone(), 1, LEASE_TTL);
    primary.enable_replication();
    let mut standby = FleetController::new(8, FleetPolicy::default());
    // Arm the black box on the survivor: the promotion mid-test must
    // freeze a dump retrievable over the wire afterwards.
    standby.set_tracer(Tracer::bounded(4096));
    standby.set_flight_recorder(FlightRecorder::bounded(8));
    let standby = Arc::new(standby);
    standby.attach_lease(lease, 2, LEASE_TTL);
    assert!(primary.is_leader() && !standby.is_leader());

    let path_a = sock_path("primary");
    let path_b = sock_path("standby");
    let mut primary_srv =
        arv_fleet::FleetWireServer::spawn(Arc::clone(&primary), &path_a).expect("spawn primary");
    let mut standby_srv =
        arv_fleet::FleetWireServer::spawn(Arc::clone(&standby), &path_b).expect("spawn standby");

    let mut hosts: Vec<SimHost> = Vec::new();
    let mut ids = Vec::new();
    for h in 0..HOSTS {
        let mut host = SimHost::paper_testbed();
        let launched: Vec<_> = (0..CONTAINERS_PER_HOST)
            .map(|i| {
                host.launch(
                    &ContainerSpec::new(format!("fo-{h}-{i}"), 20)
                        .cpus(10.0)
                        .cpu_shares(1024),
                )
            })
            .collect();
        let mut p = Periphery::new(h);
        for (i, _) in launched.iter().enumerate() {
            p.set_tenant(i as u32 + 1, h % 2);
        }
        host.attach_periphery(p);
        ids.push(launched);
        hosts.push(host);
    }

    let stop = AtomicBool::new(false);
    let reader_results = std::thread::scope(|s| {
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let paths = [path_a.clone(), path_b.clone()];
                let stop = &stop;
                s.spawn(move || run_reader(paths, 0xBEEF + r, stop))
            })
            .collect();

        // Each periphery walks the ordered controller list on failure;
        // distinct jitter seeds decorrelate their backoff.
        let mut conns: Vec<FleetFailoverClient> = (0..HOSTS)
            .map(|h| {
                FleetFailoverClient::new(
                    [path_a.clone(), path_b.clone()],
                    FailoverPolicy {
                        jitter_seed: 0xFA11 + u64::from(h),
                        ..FailoverPolicy::fast_test()
                    },
                )
            })
            .collect();
        // Replication rides the same wire: the primary's REPL frames go
        // to the standby's socket, its ACKs come back to the primary.
        let mut repl_conn: Option<FleetClient> =
            Some(FleetClient::connect(&path_b).expect("repl connect"));

        let mut primary_alive = true;
        for round in 0..ROUNDS {
            if round == KILL_ROUND {
                // Mid-storm crash: the wire dies and the controller
                // stops ticking (no more lease renewals).
                primary_srv.shutdown();
                primary_alive = false;
                repl_conn = None;
            }
            for (h, host) in hosts.iter_mut().enumerate() {
                let busy = usize::try_from(round % CONTAINERS_PER_HOST).unwrap();
                let demands = vec![host.demand(ids[h][busy], 20)];
                host.step(&demands);
                for frame in host.take_fleet_frames() {
                    let Ok(resp) = conns[h].request(&frame) else {
                        // Every attempt exhausted mid-failover: the
                        // frame is lost, the next resync heals the gap.
                        continue;
                    };
                    if conns[h].take_reconnected() {
                        if let Some(p) = host.periphery_mut() {
                            p.on_reconnect();
                        }
                    }
                    let Some(Frame::Ack(ack)) = decode_frame(&resp) else {
                        continue;
                    };
                    let disp = host
                        .periphery_mut()
                        .map(|p| p.handle_ack(&ack))
                        .unwrap_or(AckDisposition::Ignored);
                    if disp == AckDisposition::NotLeader {
                        // The peer answered but is not the leader: walk
                        // on at the protocol level and re-HELLO.
                        conns[h].advance_controller();
                        if let Some(p) = host.periphery_mut() {
                            p.on_reconnect();
                        }
                    }
                }
            }
            if primary_alive {
                if let Some(conn) = repl_conn.as_mut() {
                    for frame in primary.take_repl_frames() {
                        if let Ok(Some(resp)) = conn.request(&frame) {
                            if let Some(Frame::Ack(ack)) = decode_frame(&resp) {
                                primary.handle_repl_ack(&ack);
                            }
                        }
                    }
                }
                primary.advance_tick();
            }
            standby.advance_tick();
        }
        stop.store(true, Ordering::Release);
        readers
            .into_iter()
            .map(|r| r.join().expect("reader thread"))
            .collect::<Vec<_>>()
    });

    // The standby must have taken the lease exactly once, at epoch 2.
    // The dead primary still *believes* it leads — it stopped ticking
    // with the lease held — but its epoch is forever 1, so everything
    // it could ever say again is fenceable.
    assert!(standby.is_leader(), "the standby never promoted");
    assert!(primary.ctl_epoch() < standby.ctl_epoch());
    assert_eq!(standby.ctl_epoch(), 2);
    assert_eq!(standby.metrics().snapshot().promotions, 1);

    // Every host walked to the standby and converged back to Fresh; the
    // promoted leader's totals equal per-host ground truth exactly.
    let r = standby.cluster_capacity();
    let (mut cpu, mut containers) = (0u64, 0u64);
    for host in &hosts {
        let snap = host.monitor().snapshot();
        cpu += snap.entries.iter().map(|e| u64::from(e.e_cpu)).sum::<u64>();
        containers += snap.entries.len() as u64;
        let p = host.periphery().expect("periphery attached");
        assert!(p.stats().failovers >= 1, "periphery never failed over");
        assert_eq!(p.ctl_epoch_seen(), 2, "periphery missed the new epoch");
    }
    assert_eq!(r.cpu, cpu, "promoted rollup equals ground truth");
    assert_eq!(r.containers, containers);
    assert_eq!(u64::from(r.hosts), u64::from(HOSTS));
    assert_eq!(r.partitioned, 0, "a host never healed after promotion");
    assert!(
        standby.metrics().snapshot().not_leader_rejects >= 1,
        "nobody ever bounced off the pre-promotion standby"
    );

    // Readers raced the whole failover: they accepted rollups, every
    // accepted epoch was monotone (enforced inline), and whoever saw the
    // new epoch ended at exactly 2.
    let mut accepted_total = 0u64;
    for (accepted, _fenced, max_epoch) in &reader_results {
        accepted_total += accepted;
        assert!(
            *max_epoch == 2 || *max_epoch == 1,
            "reader accepted an impossible epoch {max_epoch}"
        );
    }
    assert!(accepted_total > 0, "readers must actually race the ingest");
    assert!(
        reader_results.iter().any(|(_, _, e)| *e == 2),
        "no reader ever reached the promoted leader"
    );

    // Scrape the exposition over the wire (the primary's socket is
    // dead; the survivor's answers): every host's freshness lag and
    // agent summary must be published as labelled gauges.
    let mut scraper = FleetClient::connect(&path_b).expect("scrape connect");
    let resp = scraper
        .request(&encode_query(&Query {
            kind: QUERY_STATS,
            arg: 0,
        }))
        .expect("stats request")
        .expect("stats answered");
    let Some(Frame::Rollup(frame)) = decode_frame(&resp) else {
        panic!("expected ROLLUP");
    };
    let Rollup::Stats(text) = frame.body else {
        panic!("stats query answered with a non-stats rollup");
    };
    for h in 0..HOSTS {
        assert!(
            text.contains(&format!(
                "arv_fleet_host_freshness_lag_ticks{{host=\"{h}\"}}"
            )),
            "exposition is missing host {h}'s freshness lag"
        );
        assert!(
            text.contains(&format!(
                "arv_fleet_host_e2e_lag_ticks_count{{host=\"{h}\"}}"
            )),
            "exposition is missing host {h}'s waterfall"
        );
    }
    assert!(
        text.contains("arv_fleet_flight_dumps"),
        "exposition is missing the flight-dump gauge"
    );

    // Retrieve the black box over the same wire: among the frozen
    // dumps there must be the promotion, with a non-empty causal
    // event ring.
    let mut saw_promotion = false;
    for back in 0..16u32 {
        let resp = scraper
            .request(&encode_query(&Query {
                kind: QUERY_FLIGHT,
                arg: back,
            }))
            .expect("flight request")
            .expect("flight answered");
        let Some(Frame::Rollup(frame)) = decode_frame(&resp) else {
            panic!("expected ROLLUP");
        };
        let Rollup::Flight(bytes) = frame.body else {
            panic!("flight query answered with a non-flight rollup");
        };
        if bytes.is_empty() {
            break;
        }
        let dump = FlightDump::decode(&bytes).expect("retrieved dump decodes");
        if dump.trigger == FlightTrigger::Promotion {
            assert!(
                !dump.events.is_empty(),
                "promotion dump froze an empty ring"
            );
            saw_promotion = true;
        }
    }
    assert!(
        saw_promotion,
        "the mid-stream promotion never produced a retrievable flight dump"
    );

    standby_srv.shutdown();
}

/// The primary's lease store runs out of space mid-stream: the tick
/// the first renewal fails to persist, the primary steps down —
/// strictly before the TTL of its last durable renewal — and keeps
/// serving only `not_leader` refusals at its fenced epoch. The standby
/// takes the lease the moment the store recovers, every periphery
/// walks over the real wire, and the deposed primary — whose own
/// journal store hit a disk-full window of its own — ends the test
/// healed: `DurabilityLost` cleared, fleet totals mirroring ground
/// truth on the new leader.
#[test]
fn lease_store_outage_steps_primary_down_before_ttl() {
    const ROUNDS: u32 = 24;
    /// The lease store's disk-full window `[at, at+len)` in ticks.
    const FULL_AT: u64 = 10;
    const FULL_LEN: u64 = 4;

    let lease = SharedLease::with_store(Box::new(FaultyStore::new(
        0x1EA5E,
        StoreFaults {
            full_at: Some((FULL_AT, FULL_LEN)),
            ..StoreFaults::default()
        },
    )));
    let mut primary = FleetController::new(8, FleetPolicy::default());
    primary.enable_journal_with_store(
        Box::new(FaultyStore::new(
            0xD15C,
            StoreFaults {
                full_at: Some((FULL_AT, 3)),
                ..StoreFaults::default()
            },
        )),
        2,
    );
    let primary = Arc::new(primary);
    primary.attach_lease(lease.clone(), 1, LEASE_TTL);
    primary.enable_replication();
    let standby = Arc::new(FleetController::new(8, FleetPolicy::default()));
    standby.attach_lease(lease, 2, LEASE_TTL);
    assert!(primary.is_leader() && !standby.is_leader());

    let path_a = sock_path("lease-primary");
    let path_b = sock_path("lease-standby");
    let mut primary_srv =
        arv_fleet::FleetWireServer::spawn(Arc::clone(&primary), &path_a).expect("spawn primary");
    let mut standby_srv =
        arv_fleet::FleetWireServer::spawn(Arc::clone(&standby), &path_b).expect("spawn standby");

    let mut hosts: Vec<SimHost> = Vec::new();
    let mut ids = Vec::new();
    for h in 0..HOSTS {
        let mut host = SimHost::paper_testbed();
        let launched: Vec<_> = (0..CONTAINERS_PER_HOST)
            .map(|i| {
                host.launch(
                    &ContainerSpec::new(format!("lf-{h}-{i}"), 20)
                        .cpus(10.0)
                        .cpu_shares(1024),
                )
            })
            .collect();
        let mut p = Periphery::new(h);
        for (i, _) in launched.iter().enumerate() {
            p.set_tenant(i as u32 + 1, h % 2);
        }
        host.attach_periphery(p);
        ids.push(launched);
        hosts.push(host);
    }

    let mut conns: Vec<FleetFailoverClient> = (0..HOSTS)
        .map(|h| {
            FleetFailoverClient::new(
                [path_a.clone(), path_b.clone()],
                FailoverPolicy {
                    jitter_seed: 0x1EA5 + u64::from(h),
                    ..FailoverPolicy::fast_test()
                },
            )
        })
        .collect();
    let mut repl_conn = FleetClient::connect(&path_b).expect("repl connect");

    let mut last_ok_renew_tick = 0u64;
    let mut step_down_tick = u64::MAX;
    let mut promote_tick = u64::MAX;
    let mut primary_degraded_seen = false;
    for round in 0..ROUNDS {
        for (h, host) in hosts.iter_mut().enumerate() {
            let busy = usize::try_from(round % CONTAINERS_PER_HOST).unwrap();
            let demands = vec![host.demand(ids[h][busy], 20)];
            host.step(&demands);
            for frame in host.take_fleet_frames() {
                let Ok(resp) = conns[h].request(&frame) else {
                    continue;
                };
                if conns[h].take_reconnected() {
                    if let Some(p) = host.periphery_mut() {
                        p.on_reconnect();
                    }
                }
                let Some(Frame::Ack(ack)) = decode_frame(&resp) else {
                    continue;
                };
                if step_down_tick != u64::MAX && !ack.not_leader {
                    // Anything the deposed primary still acks
                    // positively would be un-fenceable.
                    assert!(
                        ack.ctl_epoch >= 2,
                        "a stepped-down primary acked a frame at its old epoch"
                    );
                }
                let disp = host
                    .periphery_mut()
                    .map(|p| p.handle_ack(&ack))
                    .unwrap_or(AckDisposition::Ignored);
                if disp == AckDisposition::NotLeader {
                    conns[h].advance_controller();
                    if let Some(p) = host.periphery_mut() {
                        p.on_reconnect();
                    }
                }
            }
        }
        if primary.is_leader() {
            for frame in primary.take_repl_frames() {
                if let Ok(Some(resp)) = repl_conn.request(&frame) {
                    if let Some(Frame::Ack(ack)) = decode_frame(&resp) {
                        primary.handle_repl_ack(&ack);
                    }
                }
            }
        }
        // The standby contends first each tick: once the deposed
        // primary's lease expires it must not win the re-acquire race
        // against the standby that is taking over.
        standby.advance_tick();
        let was_leader = primary.is_leader();
        primary.advance_tick();
        let tick = u64::from(round) + 1;
        if was_leader && primary.is_leader() {
            last_ok_renew_tick = tick;
        }
        if was_leader && !primary.is_leader() && step_down_tick == u64::MAX {
            step_down_tick = tick;
        }
        if promote_tick == u64::MAX && standby.is_leader() {
            promote_tick = tick;
        }
        primary_degraded_seen |= primary.journal_degraded();
    }

    // Ground-truth lease arithmetic: the last renewal that actually
    // persisted (tick FULL_AT - 1) keeps the lease alive through
    // FULL_AT - 1 + TTL. The primary must step down strictly before
    // that expiry — at its first unpersistable renewal, not its last
    // legal tick.
    assert_eq!(
        step_down_tick, FULL_AT,
        "the primary must step down the tick the store refuses a renewal"
    );
    assert_eq!(last_ok_renew_tick, FULL_AT - 1);
    assert!(
        step_down_tick < last_ok_renew_tick + LEASE_TTL,
        "step-down at {step_down_tick} is not before the TTL expiry {}",
        last_ok_renew_tick + LEASE_TTL
    );
    // The standby takes over the moment the store recovers — within
    // the lease budget, not after it.
    assert_eq!(
        promote_tick,
        FULL_AT + FULL_LEN,
        "the standby must take the lease the first tick the store recovers"
    );
    assert!(standby.is_leader() && !primary.is_leader());
    assert_eq!(standby.ctl_epoch(), 2);
    assert_eq!(standby.metrics().snapshot().promotions, 1);
    assert!(
        primary.metrics().snapshot().demotions >= 1,
        "the step-down must register as a demotion"
    );
    assert!(
        primary.metrics().snapshot().journal_io_errors >= 1,
        "the refused renewals and journal writes must surface in metrics"
    );

    // The deposed primary's own journal store hit a disk-full window:
    // it must have walked the durability ladder down and back up.
    assert!(
        primary_degraded_seen,
        "the primary's journal never degraded through its disk-full window"
    );
    assert!(
        !primary.journal_degraded(),
        "the primary must heal once its journal store recovers"
    );

    // Every periphery walked to the standby and the promoted leader's
    // totals equal per-host ground truth exactly.
    let r = standby.cluster_capacity();
    let (mut cpu, mut containers) = (0u64, 0u64);
    for host in &hosts {
        let snap = host.monitor().snapshot();
        cpu += snap.entries.iter().map(|e| u64::from(e.e_cpu)).sum::<u64>();
        containers += snap.entries.len() as u64;
        let p = host.periphery().expect("periphery attached");
        assert!(p.stats().failovers >= 1, "periphery never failed over");
        assert_eq!(p.ctl_epoch_seen(), 2, "periphery missed the new epoch");
    }
    assert_eq!(r.cpu, cpu, "promoted rollup equals ground truth");
    assert_eq!(r.containers, containers);
    assert_eq!(r.partitioned, 0, "a host never healed after promotion");

    primary_srv.shutdown();
    standby_srv.shutdown();
}
