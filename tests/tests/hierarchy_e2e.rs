//! The adaptive view over a Kubernetes-style cgroup hierarchy: tree-aware
//! Algorithm 1 bounds driven by the hierarchical CFS allocator.

use arv_cfs::{allocate_tree, CfsSim, LeafDemand};
use arv_cgroups::hierarchy::{CgroupTree, ROOT};
use arv_cgroups::{CgroupId, CgroupSpec, CpuController, MemController};
use arv_resview::effective_cpu::{CpuBounds, CpuSample, EffectiveCpu, EffectiveCpuConfig};
use arv_sim_core::SimDuration;
use std::collections::BTreeMap;

fn spec(shares: u64, quota: Option<f64>) -> CgroupSpec {
    let mut cpu = CpuController::unlimited(20).with_shares(shares);
    if let Some(q) = quota {
        cpu = cpu.with_quota_cpus(q);
    }
    CgroupSpec::new(cpu, MemController::unlimited())
}

/// root → kubepods(8192){pod-a(2048, 8cpu){web, sidecar}, pod-b(1024){batch}},
///        system(1024){journald}
struct Cluster {
    tree: CgroupTree,
    web: CgroupId,
    sidecar: CgroupId,
    batch: CgroupId,
    journald: CgroupId,
}

fn cluster() -> Cluster {
    let mut tree = CgroupTree::new();
    let kubepods = tree.create(ROOT, spec(8192, None));
    let system = tree.create(ROOT, spec(1024, None));
    let pod_a = tree.create(kubepods, spec(2048, Some(8.0)));
    let pod_b = tree.create(kubepods, spec(1024, None));
    let web = tree.create(pod_a, spec(2048, None));
    let sidecar = tree.create(pod_a, spec(512, None));
    let batch = tree.create(pod_b, spec(1024, None));
    let journald = tree.create(system, spec(1024, None));
    Cluster {
        tree,
        web,
        sidecar,
        batch,
        journald,
    }
}

#[test]
fn adaptive_view_converges_over_the_hierarchy() {
    let c = cluster();
    let cfs = CfsSim::with_cpus(20);
    let period = SimDuration::from_millis(24);

    // One Algorithm-1 machine per container, bounded by the tree.
    let mut views: BTreeMap<CgroupId, EffectiveCpu> = [c.web, c.sidecar, c.batch, c.journald]
        .into_iter()
        .map(|id| {
            let bounds = CpuBounds::compute_in_tree(&c.tree, id, cfs.online());
            (id, EffectiveCpu::new(bounds, EffectiveCpuConfig::default()))
        })
        .collect();

    let drive =
        |views: &mut BTreeMap<CgroupId, EffectiveCpu>, active: &[(CgroupId, u32)], periods: u32| {
            for _ in 0..periods {
                let mut demands = BTreeMap::new();
                for (id, runnable) in active {
                    demands.insert(*id, LeafDemand::cpu_bound(*runnable));
                }
                let alloc = allocate_tree(&cfs, period, &c.tree, &demands);
                for (id, view) in views.iter_mut() {
                    view.update(CpuSample {
                        usage: alloc.granted_to(*id),
                        period,
                        slack: alloc.slack,
                    });
                }
            }
        };

    // Phase 1: only web runs — pod-a's nested 8-CPU quota caps its view
    // even though the machine is idle.
    drive(&mut views, &[(c.web, 20)], 40);
    assert_eq!(views[&c.web].value(), 8);

    // Phase 2: everyone saturates — no slack, views decay to the
    // tree-composed guarantees.
    drive(
        &mut views,
        &[
            (c.web, 20),
            (c.sidecar, 20),
            (c.batch, 20),
            (c.journald, 20),
        ],
        60,
    );
    for (id, name) in [
        (c.web, "web"),
        (c.sidecar, "sidecar"),
        (c.batch, "batch"),
        (c.journald, "journald"),
    ] {
        let view = &views[&id];
        let b = view.bounds();
        assert_eq!(
            view.value(),
            b.lower,
            "{name} should sit at its guaranteed share under full load"
        );
    }

    // Phase 3: the whole of kubepods goes idle; journald (wanting 16
    // CPUs, so slack stays observable — Algorithm 1 only grows into
    // measured slack) expands far beyond its guaranteed share.
    drive(&mut views, &[(c.journald, 16)], 60);
    let grown = views[&c.journald].value();
    assert!(
        (16..=17).contains(&grown),
        "journald should expand to its demand: {grown}"
    );
}

#[test]
fn tree_bounds_always_contain_tree_grants() {
    // For every subset of active containers, the grant a saturated leaf
    // receives under hierarchical allocation never exceeds its tree upper
    // bound (the bound is a true cap).
    let c = cluster();
    let cfs = CfsSim::with_cpus(20);
    let period = SimDuration::from_millis(24);
    let leaves = [c.web, c.sidecar, c.batch, c.journald];

    for mask in 1u32..16 {
        let active: Vec<CgroupId> = leaves
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, id)| *id)
            .collect();
        let mut demands = BTreeMap::new();
        for id in &active {
            demands.insert(*id, LeafDemand::cpu_bound(20));
        }
        let alloc = allocate_tree(&cfs, period, &c.tree, &demands);
        for id in &active {
            let b = CpuBounds::compute_in_tree(&c.tree, *id, cfs.online());
            let granted = alloc.granted_cpus(*id);
            assert!(
                granted <= f64::from(b.upper) + 1e-6,
                "mask {mask:04b}: leaf {id:?} granted {granted} above upper {}",
                b.upper
            );
        }
    }
}
