//! Property-based invariants over the full stack: whatever the container
//! mix and load pattern, the views stay inside their bounds, accounting
//! balances, and physical memory is never oversubscribed.

use arv_cgroups::Bytes;
use arv_container::{ContainerSpec, SimHost};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ContainerPlan {
    quota: Option<f64>,
    shares: u64,
    hard_mib: Option<u64>,
    runnable: Vec<u32>,
    charge_mib: Vec<u16>,
}

fn plan_strategy() -> impl Strategy<Value = ContainerPlan> {
    (
        prop::option::of(1.0f64..16.0),
        2u64..4096,
        prop::option::of(256u64..4096),
        prop::collection::vec(0u32..32, 8..24),
        prop::collection::vec(0u16..200, 8..24),
    )
        .prop_map(
            |(quota, shares, hard_mib, runnable, charge_mib)| ContainerPlan {
                quota,
                shares,
                hard_mib,
                runnable,
                charge_mib,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn views_and_accounting_hold_for_arbitrary_mixes(
        plans in prop::collection::vec(plan_strategy(), 1..6)
    ) {
        let mut host = SimHost::paper_testbed();
        let ids: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut spec = ContainerSpec::new(format!("c{i}"), 20).cpu_shares(p.shares);
                if let Some(q) = p.quota {
                    spec = spec.cpus(q);
                }
                if let Some(h) = p.hard_mib {
                    spec = spec.memory(Bytes::from_mib(h));
                }
                host.launch(&spec)
            })
            .collect();

        let steps = plans.iter().map(|p| p.runnable.len()).max().unwrap();
        for step in 0..steps {
            let mut demands = Vec::new();
            for (id, p) in ids.iter().zip(&plans) {
                let runnable = *p.runnable.get(step % p.runnable.len()).unwrap();
                if runnable > 0 {
                    demands.push(host.demand(*id, runnable));
                }
                let charge = *p.charge_mib.get(step % p.charge_mib.len()).unwrap();
                let _ = host.charge(*id, Bytes::from_mib(u64::from(charge)));
            }
            host.step(&demands);

            let mut resident_total = Bytes::ZERO;
            for (id, p) in ids.iter().zip(&plans) {
                // 1. Effective CPU within its namespace bounds.
                let ns = host.monitor().namespace(*id).unwrap();
                let e = ns.effective_cpu();
                let b = ns.cpu_bounds();
                prop_assert!(e >= b.lower && e <= b.upper, "E_CPU {e} outside {b:?}");

                // 2. Effective memory within [soft, hard].
                let e_mem = host.effective_memory(*id);
                let hard = p
                    .hard_mib
                    .map(Bytes::from_mib)
                    .unwrap_or_else(|| host.total_memory());
                prop_assert!(e_mem <= hard, "E_MEM {e_mem} above hard {hard}");

                // 3. Hard limit enforced on resident memory.
                let resident = host.memory_usage(*id);
                prop_assert!(resident <= hard, "resident {resident} above hard {hard}");
                resident_total += resident;
            }
            // 4. Physical memory never oversubscribed.
            prop_assert!(resident_total <= host.total_memory());
            prop_assert_eq!(
                host.free_memory(),
                host.total_memory() - resident_total
            );
        }

        // 5. Termination releases everything.
        for id in ids {
            host.terminate(id);
        }
        prop_assert_eq!(host.free_memory(), host.total_memory());
        prop_assert_eq!(host.container_count(), 0);
    }

    #[test]
    fn sysconf_is_always_consistent_with_the_namespace(
        n in 1u32..8,
        loads in prop::collection::vec(0u32..24, 4..16),
    ) {
        let mut host = SimHost::paper_testbed();
        let ids: Vec<_> = (0..n)
            .map(|i| host.launch(&ContainerSpec::new(format!("c{i}"), 20)))
            .collect();
        for (step, load) in loads.iter().enumerate() {
            let id = ids[step % ids.len()];
            if *load > 0 {
                let d = host.demand(id, *load);
                host.step(&[d]);
            } else {
                host.step(&[]);
            }
            for id in &ids {
                let via_sysconf =
                    host.sysconf(Some(*id), arv_resview::Sysconf::NprocessorsOnln) as u32;
                prop_assert_eq!(via_sysconf, host.effective_cpu(*id));
                let mem_pages = host.sysconf(Some(*id), arv_resview::Sysconf::PhysPages);
                prop_assert_eq!(
                    mem_pages * arv_resview::PAGE_SIZE,
                    host.effective_memory(*id).as_u64() / arv_resview::PAGE_SIZE
                        * arv_resview::PAGE_SIZE
                );
            }
        }
    }
}
