//! End-to-end fault test for the wire pipeline: robust clients race an
//! updater over a Unix socket while the daemon is killed and restarted
//! mid-stream. No reader may panic; every live image must be untorn
//! (`bytes = cpus × 64 MiB`, `avail = bytes / 2`); live generations must
//! be monotone per reader; during the outage every reader must be served
//! its last-good answer flagged degraded; and after the restart every
//! reader must get live answers again through its own reconnect.

use arv_cgroups::{Bytes, CgroupId};
use arv_resview::effective_cpu::CpuBounds;
use arv_resview::effective_mem::{EffectiveMemory, EffectiveMemoryConfig};
use arv_resview::EffectiveCpuConfig;
use arv_viewd::{HostSpec, RetryPolicy, RobustWireClient, ViewServer, WireServer};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

const MIB: u64 = 1024 * 1024;
const STRIDE: u64 = 64 * MIB;
const MAX_CPUS: u64 = 16;

fn test_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("arv-fault-e2e-{}-{tag}.sock", std::process::id()))
}

fn mk_server(ids: &[CgroupId]) -> ViewServer {
    let server = ViewServer::new(HostSpec::paper_testbed(), 8);
    for id in ids {
        server.register(
            *id,
            CpuBounds {
                lower: 1,
                upper: 16,
            },
            EffectiveCpuConfig::default(),
            EffectiveMemory::new(
                Bytes(STRIDE),
                Bytes(MAX_CPUS * STRIDE),
                Bytes::from_mib(1280),
                Bytes::from_mib(2560),
                EffectiveMemoryConfig::default(),
            ),
        );
    }
    for id in ids {
        publish(&server, *id, 1);
    }
    server
}

/// Publish the view for round `k`: `cpus` in `1..=16`, `bytes` derived
/// from it, `avail` half of that — the invariants readers check.
fn publish(server: &ViewServer, id: CgroupId, k: u64) {
    let cpus = (k % MAX_CPUS) + 1;
    let bytes = cpus * STRIDE;
    assert!(server.mirror(id, cpus as u32, Bytes(bytes), Bytes(bytes / 2)));
}

fn parse_meminfo(image: &str) -> (u64, u64) {
    let field = |name: &str| {
        let line = image
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("meminfo missing {name}: {image:?}"));
        let kb: u64 = line
            .split_whitespace()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("bad meminfo line {line:?}"));
        kb * 1024
    };
    (field("MemTotal:"), field("MemFree:"))
}

/// Check one served meminfo image is internally consistent.
fn assert_untorn(image: &str) {
    let (total, free) = parse_meminfo(image);
    assert_eq!(total % STRIDE, 0, "torn meminfo: MemTotal {total}");
    assert!((1..=MAX_CPUS).contains(&(total / STRIDE)));
    assert_eq!(free, total / 2, "torn meminfo: {total} vs free {free}");
}

struct ReaderResult {
    live_reads: u64,
    degraded_reads: u64,
    reconnects: u64,
    fallback_serves: u64,
    retries: u64,
}

#[test]
fn readers_ride_through_wire_server_restart() {
    const READERS: usize = 4;
    const WARMUP_ITERS: u64 = 30;
    const POST_RESTART_LIVE: u64 = 30;

    let ids = [CgroupId(1), CgroupId(2)];
    let view = mk_server(&ids);
    let socket = test_socket("restart");
    let _ = std::fs::remove_file(&socket);
    let wire = WireServer::spawn(view.clone(), &socket).expect("spawn wire server");

    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(READERS + 1));
    let iters: Arc<Vec<AtomicU64>> = Arc::new((0..READERS).map(|_| AtomicU64::new(0)).collect());
    let degraded: Arc<Vec<AtomicU64>> = Arc::new((0..READERS).map(|_| AtomicU64::new(0)).collect());
    let live_after: Arc<Vec<AtomicU64>> =
        Arc::new((0..READERS).map(|_| AtomicU64::new(0)).collect());
    let restarted = Arc::new(AtomicBool::new(false));

    // In-process updater keeps the views moving the whole time, so the
    // wire outage happens against a moving target. It sleeps between
    // rounds instead of spinning — on a small machine a hot publisher
    // would starve the reader and server threads it is racing.
    let updater = {
        let view = view.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut round = 1u64;
            while !stop.load(Ordering::Acquire) {
                round += 1;
                for id in &ids {
                    publish(&view, *id, round);
                }
                thread::sleep(Duration::from_micros(200));
            }
        })
    };

    let mut readers = Vec::new();
    for r in 0..READERS {
        let socket = socket.clone();
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let iters = Arc::clone(&iters);
        let degraded = Arc::clone(&degraded);
        let live_after = Arc::clone(&live_after);
        let restarted = Arc::clone(&restarted);
        let id = ids[r % ids.len()];
        readers.push(thread::spawn(move || -> ReaderResult {
            let policy = RetryPolicy {
                jitter_seed: 0xE2E + r as u64,
                ..RetryPolicy::fast_test()
            };
            let mut client = RobustWireClient::new(&socket, policy);
            let mut last_live_generation = 0u64;
            let mut live_reads = 0u64;
            let mut degraded_reads = 0u64;
            barrier.wait();
            while !stop.load(Ordering::Acquire) {
                let resp = client
                    .read(Some(id), "/proc/meminfo")
                    .expect("either a live answer or the last-good fallback")
                    .expect("container is registered");
                let image = String::from_utf8(resp.body.clone()).expect("utf8 image");
                // Degraded or live, a served image is never torn.
                assert_untorn(&image);
                if resp.degraded {
                    degraded_reads += 1;
                    degraded[r].fetch_add(1, Ordering::Relaxed);
                } else {
                    // Live generations are monotone per reader; the
                    // degraded fallback may legitimately replay an older
                    // one, so only live answers advance the watermark.
                    assert!(
                        resp.generation >= last_live_generation,
                        "live generation regressed {last_live_generation} -> {}",
                        resp.generation
                    );
                    last_live_generation = resp.generation;
                    live_reads += 1;
                    if restarted.load(Ordering::Acquire) {
                        live_after[r].fetch_add(1, Ordering::Relaxed);
                    }
                }
                iters[r].fetch_add(1, Ordering::Relaxed);
            }
            let stats = client.stats();
            ReaderResult {
                live_reads,
                degraded_reads,
                reconnects: stats.reconnects,
                fallback_serves: stats.fallback_serves,
                retries: stats.retries,
            }
        }));
    }

    barrier.wait();
    let wait_until = |cond: &dyn Fn() -> bool, what: &str| {
        for _ in 0..20_000 {
            if cond() {
                return;
            }
            thread::sleep(Duration::from_millis(1));
        }
        panic!("timed out waiting for {what}");
    };

    // Phase 1: everyone reads live answers.
    wait_until(
        &|| {
            iters
                .iter()
                .all(|i| i.load(Ordering::Relaxed) >= WARMUP_ITERS)
        },
        "warmup reads",
    );

    // Phase 2: kill the daemon mid-stream. Readers must degrade to their
    // last-good answers instead of panicking or erroring out.
    wire.shutdown();
    wait_until(
        &|| degraded.iter().all(|d| d.load(Ordering::Relaxed) >= 1),
        "degraded serving during the outage",
    );

    // Phase 3: restart on the same socket. Every reader must reconnect
    // by itself and see live answers again.
    let wire2 = WireServer::spawn(view.clone(), &socket).expect("respawn wire server");
    restarted.store(true, Ordering::Release);
    wait_until(
        &|| {
            live_after
                .iter()
                .all(|l| l.load(Ordering::Relaxed) >= POST_RESTART_LIVE)
        },
        "live reads after restart",
    );

    stop.store(true, Ordering::Release);
    let results: Vec<ReaderResult> = readers
        .into_iter()
        .map(|h| h.join().expect("reader panicked"))
        .collect();
    updater.join().expect("updater panicked");
    wire2.shutdown();
    let _ = std::fs::remove_file(&socket);

    for (r, res) in results.iter().enumerate() {
        assert!(res.live_reads >= WARMUP_ITERS, "reader {r}");
        assert!(
            res.degraded_reads >= 1 && res.fallback_serves >= 1,
            "reader {r} never served the fallback during the outage"
        );
        assert!(
            res.reconnects >= 1,
            "reader {r} never re-established its connection"
        );
        assert!(
            res.retries >= 1,
            "reader {r} rode through the outage without retrying"
        );
    }
    // The daemon never counted a reader as a failure.
    assert_eq!(view.metrics().failures, 0);
}

#[test]
fn hostile_connection_does_not_disturb_other_clients() {
    use std::io::{Read as _, Write as _};

    let ids = [CgroupId(9)];
    let view = mk_server(&ids);
    let socket = test_socket("hostile");
    let _ = std::fs::remove_file(&socket);
    let wire = WireServer::spawn(view.clone(), &socket).expect("spawn wire server");

    let mut client = RobustWireClient::new(&socket, RetryPolicy::fast_test());
    let before = client
        .read(Some(ids[0]), "/proc/meminfo")
        .expect("wire up")
        .expect("registered");
    assert!(!before.degraded);
    assert_untorn(&String::from_utf8(before.body).expect("utf8"));

    // An oversized frame, a torn frame, and raw garbage, each on its own
    // connection.
    for hostile in [
        (1_000_000u32).to_le_bytes().to_vec(),
        {
            let mut torn = 64u32.to_le_bytes().to_vec();
            torn.extend_from_slice(b"short");
            torn
        },
        b"\xff\xfe\xfd\xfc garbage".to_vec(),
    ] {
        let mut s = std::os::unix::net::UnixStream::connect(&socket).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let _ = s.write_all(&hostile);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink);
    }

    // The well-behaved client still gets live, untorn answers on the
    // same connection, and the server accounted for the rejects.
    let after = client
        .read(Some(ids[0]), "/proc/meminfo")
        .expect("daemon survived")
        .expect("registered");
    assert!(!after.degraded);
    assert_untorn(&String::from_utf8(after.body).expect("utf8"));
    assert!(view.metrics().wire_rejected >= 2);
    assert_eq!(client.stats().failures, 0);

    wire.shutdown();
    let _ = std::fs::remove_file(&socket);
}
