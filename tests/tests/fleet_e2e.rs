//! Fleet control-plane end-to-end: real hosts, the real wire, racing
//! rollup readers.
//!
//! Several [`arv_container::SimHost`]s with attached peripheries ship
//! their view deltas to one [`arv_fleet::FleetController`] over the
//! Unix-socket transport while reader threads hammer the same socket
//! with cluster/tenant/top-k/stats queries. The rollups every reader
//! sees must be internally consistent at all times, and once the fleet
//! quiesces the controller's totals must equal the per-host ground
//! truth exactly. A garbage frame from a broken client must cost that
//! client its connection — and nothing else.

use arv_container::{ContainerSpec, SimHost};
use arv_fleet::{
    decode_frame, encode_query, FleetClient, FleetController, FleetPolicy, Frame, Periphery, Query,
    Rollup, QUERY_CLUSTER, QUERY_STATS, QUERY_TENANT, QUERY_TOPK,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const HOSTS: u32 = 4;
const CONTAINERS_PER_HOST: u32 = 3;
const ROUNDS: u32 = 40;

fn sock_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("arv-fleet-e2e-{}-{name}", std::process::id()));
    p
}

fn query(client: &mut FleetClient, kind: u8, arg: u32) -> Option<Rollup> {
    let resp = client
        .request(&encode_query(&Query { kind, arg }))
        .expect("wire up")?;
    match decode_frame(&resp) {
        Some(Frame::Rollup(r)) => Some(r.body),
        _ => None,
    }
}

#[test]
fn fleet_over_the_wire_with_racing_readers() {
    let controller = Arc::new(FleetController::new(8, FleetPolicy::default()));
    let path = sock_path("race");
    let mut server =
        arv_fleet::FleetWireServer::spawn(Arc::clone(&controller), &path).expect("spawn fleet");

    // Real hosts, each with an attached periphery and its own client
    // connection (one conversation per periphery, frames in order).
    let mut hosts: Vec<SimHost> = Vec::new();
    let mut ids = Vec::new();
    for h in 0..HOSTS {
        let mut host = SimHost::paper_testbed();
        let launched: Vec<_> = (0..CONTAINERS_PER_HOST)
            .map(|i| {
                host.launch(
                    &ContainerSpec::new(format!("e2e-{h}-{i}"), 20)
                        .cpus(10.0)
                        .cpu_shares(1024),
                )
            })
            .collect();
        let mut p = Periphery::new(h);
        for (i, _) in launched.iter().enumerate() {
            p.set_tenant(i as u32 + 1, h % 2);
        }
        host.attach_periphery(p);
        ids.push(launched);
        hosts.push(host);
    }

    let stop = AtomicBool::new(false);
    let reader_rounds = std::thread::scope(|s| {
        // Racing rollup readers: each holds its own connection and
        // checks invariants that must hold mid-ingest, on every answer.
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let path = path.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut client = FleetClient::connect(&path).expect("reader connect");
                    let mut rounds = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        if let Some(Rollup::Cluster { rollup, .. }) =
                            query(&mut client, QUERY_CLUSTER, 0)
                        {
                            assert!(rollup.hosts <= HOSTS);
                            assert!(
                                rollup.containers
                                    <= u64::from(HOSTS) * u64::from(CONTAINERS_PER_HOST)
                            );
                            assert!(rollup.partitioned <= rollup.hosts);
                        }
                        if let Some(Rollup::Tenant { rollup, .. }) =
                            query(&mut client, QUERY_TENANT, r % 2)
                        {
                            assert!(
                                rollup.containers
                                    <= u64::from(HOSTS) * u64::from(CONTAINERS_PER_HOST)
                            );
                        }
                        if let Some(Rollup::TopK(points)) = query(&mut client, QUERY_TOPK, 5) {
                            assert!(points.len() <= 5);
                            for w in points.windows(2) {
                                assert!(
                                    w[0].pressure_milli >= w[1].pressure_milli,
                                    "top-k must be sorted most-pressured first"
                                );
                            }
                        }
                        rounds += 1;
                    }
                    rounds
                })
            })
            .collect();

        // A broken client: garbage costs it the connection, nobody else.
        let broken = s.spawn(|| {
            let mut c = FleetClient::connect(&path).expect("broken connect");
            let answer = c.request(&[0xDE, 0xAD, 0xBE, 0xEF]).expect("wire up");
            assert!(answer.is_none(), "garbage must drop the conversation");
        });

        // The ingest loop: step every host, ship its frames, feed ACKs
        // back, advance the controller clock.
        let mut conns: Vec<FleetClient> = (0..HOSTS)
            .map(|_| FleetClient::connect(&path).expect("periphery connect"))
            .collect();
        for round in 0..ROUNDS {
            for (h, host) in hosts.iter_mut().enumerate() {
                let busy = usize::try_from(round % CONTAINERS_PER_HOST).unwrap();
                let demands = vec![host.demand(ids[h][busy], 20)];
                host.step(&demands);
                for frame in host.take_fleet_frames() {
                    if let Some(resp) = conns[h].request(&frame).expect("periphery wire") {
                        host.deliver_fleet_ack(&resp);
                    }
                }
            }
            controller.advance_tick();
        }
        broken.join().expect("broken client");
        stop.store(true, Ordering::Release);
        readers
            .into_iter()
            .map(|r| r.join().expect("reader thread"))
            .sum::<u64>()
    });
    assert!(reader_rounds > 0, "readers must actually race the ingest");

    // Quiesced: the controller's totals equal per-host ground truth.
    let r = controller.cluster_capacity();
    let (mut cpu, mut containers) = (0u64, 0u64);
    for host in &hosts {
        let snap = host.monitor().snapshot();
        cpu += snap.entries.iter().map(|e| u64::from(e.e_cpu)).sum::<u64>();
        containers += snap.entries.len() as u64;
    }
    assert_eq!(r.cpu, cpu, "cluster CPU rollup equals ground truth");
    assert_eq!(r.containers, containers);
    assert_eq!(u64::from(r.hosts), u64::from(HOSTS));
    assert_eq!(r.partitioned, 0);

    // The stats query serves the fleet counters over the same socket.
    let mut client = FleetClient::connect(&path).expect("stats connect");
    let Some(Rollup::Stats(text)) = query(&mut client, QUERY_STATS, 0) else {
        panic!("expected stats exposition");
    };
    for name in [
        "arv_fleet_deltas_ingested_total",
        "arv_fleet_rollup_queries_total",
        "arv_fleet_hosts",
    ] {
        assert!(text.contains(name), "exposition missing {name}");
    }
    let m = controller.metrics().snapshot();
    assert!(m.deltas_ingested >= u64::from(HOSTS));
    assert!(m.malformed_frames >= 1, "the broken client was counted");
    assert_eq!(m.deltas_gap_resyncs, 0, "an ordered wire never gaps");

    server.shutdown();
}
