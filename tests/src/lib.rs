//! Integration-test crate: see the `tests/` directory.
//!
//! The library target is intentionally empty; every test here spans
//! multiple workspace crates end-to-end.
